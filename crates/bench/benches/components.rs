//! Criterion micro-benches of the core components: the water-filling
//! allocator, the fluid PFS engine, the region sweep (Eq. 3), strategy
//! updates, and the end-to-end interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfsim::alloc::{water_fill, water_fill_into, Demand, WaterFillScratch};
use pfsim::{Channel, FlowSpec, Pfs, PfsConfig};
use simcore::{EventQueue, SimTime};
use std::hint::black_box;
use tmio::regions::{sweep, Interval};
use tmio::{Strategy, StrategyState};

fn bench_water_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("water_fill");
    for n in [4usize, 64, 1024] {
        let demands: Vec<Demand> = (0..n)
            .map(|i| Demand {
                count: 1 + i % 3,
                weight: 1.0 + (i % 5) as f64,
                cap: if i % 2 == 0 {
                    Some(10.0 + i as f64)
                } else {
                    None
                },
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, d| {
            b.iter(|| water_fill(black_box(5_000.0), black_box(d)))
        });
    }
    g.finish();
}

fn bench_water_fill_into(c: &mut Criterion) {
    let mut g = c.benchmark_group("water_fill_into");
    for n in [4usize, 64, 1024] {
        let demands: Vec<Demand> = (0..n)
            .map(|i| Demand {
                count: 1 + i % 3,
                weight: 1.0 + (i % 5) as f64,
                cap: if i % 2 == 0 {
                    Some(10.0 + i as f64)
                } else {
                    None
                },
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, d| {
            let mut scratch = WaterFillScratch::default();
            let mut rates = Vec::new();
            b.iter(|| {
                black_box(water_fill_into(
                    black_box(5_000.0),
                    black_box(d),
                    &mut scratch,
                    &mut rates,
                ))
            })
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    // Steady-state churn at a fixed pending-set size: schedule, occasionally
    // cancel, pop — the interpreter's inner-loop mix.
    g.bench_function("churn_64pending_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(128);
            let mut t = 0.0f64;
            let mut held = Vec::with_capacity(16);
            for i in 0..10_000u32 {
                t += 0.001;
                let k = q.schedule(SimTime::from_secs(t), i);
                if i % 4 == 0 {
                    held.push(k);
                }
                if q.len() >= 64 {
                    if let Some(k) = held.pop() {
                        q.cancel(k);
                    }
                    black_box(q.pop());
                }
            }
            while q.pop().is_some() {}
            black_box(q.now())
        })
    });
    // Pure ordered drain: heap throughput without cancellation noise.
    g.bench_function("fill_then_drain_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u32 {
                // Shuffled-ish times exercise real sift costs.
                let t = ((i.wrapping_mul(2654435761)) % 10_000) as f64 * 0.01;
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut n = 0u32;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_pfs_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfs_engine");
    for flows in [16usize, 256] {
        g.bench_with_input(BenchmarkId::new("burst", flows), &flows, |b, &n| {
            b.iter(|| {
                let mut p = Pfs::new(PfsConfig {
                    write_capacity: 1e9,
                    read_capacity: 1e9,
                });
                p.set_recording(false);
                for i in 0..n {
                    p.submit(
                        SimTime::ZERO,
                        Channel::Write,
                        FlowSpec::simple(1e6 * (1.0 + (i % 7) as f64)),
                    );
                }
                black_box(p.advance_to(SimTime::from_secs(1e6)).len())
            })
        });
    }
    g.finish();
}

fn bench_region_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_sweep");
    for n in [100usize, 10_000] {
        let intervals: Vec<Interval> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.01;
                Interval {
                    ts: t,
                    te: t + 0.5 + (i % 9) as f64 * 0.1,
                    value: 1.0 + (i % 4) as f64,
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &intervals, |b, iv| {
            b.iter(|| sweep(black_box(iv)))
        });
    }
    g.finish();
}

fn bench_strategy(c: &mut Criterion) {
    c.bench_function("strategy_updates_1k", |b| {
        let strategies = [
            Strategy::Direct { tol: 1.1 },
            Strategy::UpOnly { tol: 1.1 },
            Strategy::Adaptive {
                tol: 1.1,
                tol_i: 0.5,
            },
            Strategy::Mfu { tol: 1.1, bins: 32 },
        ];
        b.iter(|| {
            let mut acc = 0.0f64;
            for s in strategies {
                let mut st = StrategyState::default();
                for i in 0..250 {
                    let bw = 1e6 * (1.0 + (i % 13) as f64);
                    acc += st.next_limit(s, black_box(bw)).unwrap_or(0.0);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    use mpisim::{FileId, NoHooks, Op, Program, ReqTag, World, WorldConfig};
    c.bench_function("interpreter_64ranks_10phases", |b| {
        b.iter(|| {
            let mut ops = Vec::new();
            for k in 0..10u32 {
                ops.push(Op::IWrite {
                    file: FileId(0),
                    bytes: 1e6,
                    tag: ReqTag(k),
                });
                ops.push(Op::Compute { seconds: 0.01 });
                ops.push(Op::Wait { tag: ReqTag(k) });
            }
            let mut cfg = WorldConfig::new(64);
            cfg.record_pfs = false;
            let mut w = World::new(cfg, vec![Program::from_ops(ops); 64], NoHooks);
            w.create_file("f");
            black_box(w.run().makespan())
        })
    });
}

fn bench_ftio(c: &mut Criterion) {
    use simcore::StepSeries;
    use tmio::ftio::detect_period;
    c.bench_function("ftio_detect_period_2048", |b| {
        let mut s = StepSeries::new();
        let mut t = 0.0;
        while t < 500.0 {
            s.push(SimTime::from_secs(t), 1e9);
            s.push(SimTime::from_secs(t + 0.4), 0.0);
            t += 5.0;
        }
        b.iter(|| black_box(detect_period(black_box(&s), 0.0, 500.0, 2048)))
    });
}

fn bench_online_aggregator(c: &mut Criterion) {
    use tmio::online::OnlineAggregator;
    c.bench_function("online_aggregator_10k_inserts", |b| {
        b.iter(|| {
            let mut agg = OnlineAggregator::new();
            for i in 0..10_000u64 {
                let a = (i % 997) as f64 * 0.01;
                agg.insert(a, a + 0.5, 1.0 + (i % 7) as f64);
            }
            black_box(agg.peak())
        })
    });
}

criterion_group!(
    benches,
    bench_water_fill,
    bench_water_fill_into,
    bench_event_queue,
    bench_pfs_engine,
    bench_region_sweep,
    bench_strategy,
    bench_interpreter,
    bench_ftio,
    bench_online_aggregator
);
criterion_main!(benches);

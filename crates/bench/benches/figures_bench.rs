//! One criterion bench per paper figure, timing the figure's scenario at a
//! reduced (CI-friendly) scale. The full-scale series themselves are
//! produced by the `figures` binary; these benches keep every experiment
//! path exercised and performance-tracked by `cargo bench`.

use bench::scenarios;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tmio::Strategy;

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn fig01_cluster(c: &mut Criterion) {
    cfg(c).bench_function("fig01_02_motivation", |b| {
        b.iter(|| {
            let out = scenarios::motivation();
            black_box(out.limited.makespan)
        })
    });
}

fn fig03_timeline(c: &mut Criterion) {
    cfg(c).bench_function("fig03_rank_timeline", |b| {
        b.iter(|| black_box(scenarios::rank_timeline().app_time()))
    });
}

fn fig04_regions(c: &mut Criterion) {
    use tmio::regions::{max_region, Interval};
    cfg(c).bench_function("fig04_region_example", |b| {
        let intervals = [
            Interval {
                ts: 0.0,
                te: 4.0,
                value: 1.0,
            },
            Interval {
                ts: 1.0,
                te: 6.0,
                value: 2.0,
            },
            Interval {
                ts: 2.0,
                te: 8.0,
                value: 4.0,
            },
        ];
        b.iter(|| black_box(max_region(black_box(&intervals))))
    });
}

fn fig05_hacc_runtime(c: &mut Criterion) {
    cfg(c).bench_function("fig05_06_hacc_overheads", |b| {
        b.iter(|| black_box(scenarios::hacc_overheads(&[1, 16], 20_000).len()))
    });
}

fn fig07_wacomm_dist(c: &mut Criterion) {
    cfg(c).bench_function("fig07_wacomm_distribution", |b| {
        b.iter(|| black_box(scenarios::wacomm_distribution(&[24]).len()))
    });
}

fn fig08_09_10_series(c: &mut Criterion) {
    cfg(c).bench_function("fig08_wacomm_none", |b| {
        b.iter(|| black_box(scenarios::wacomm_series(24, Strategy::None, 0.0).app_time()))
    });
    cfg(c).bench_function("fig09_wacomm_uponly", |b| {
        b.iter(|| {
            black_box(scenarios::wacomm_series(24, Strategy::UpOnly { tol: 1.1 }, 0.0).app_time())
        })
    });
    cfg(c).bench_function("fig10_wacomm_scale", |b| {
        b.iter(|| {
            black_box(scenarios::wacomm_series(48, Strategy::UpOnly { tol: 1.1 }, 1.2).app_time())
        })
    });
}

fn fig11_hacc_dist(c: &mut Criterion) {
    cfg(c).bench_function("fig11_hacc_distribution", |b| {
        b.iter(|| black_box(scenarios::hacc_distribution(&[16], 20_000).len()))
    });
}

fn fig12_structure(c: &mut Criterion) {
    use hpcwl::hacc::HaccConfig;
    cfg(c).bench_function("fig12_hacc_program_build", |b| {
        let cfg = HaccConfig::default();
        b.iter(|| black_box(cfg.program(mpisim::FileId(0)).len()))
    });
}

fn fig13_14_series(c: &mut Criterion) {
    cfg(c).bench_function("fig13_hacc_strategies", |b| {
        b.iter(|| {
            black_box(
                scenarios::hacc_series(32, 20_000, Strategy::Direct { tol: 1.1 }, false).app_time(),
            )
        })
    });
    cfg(c).bench_function("fig14_hacc_capacity_noise", |b| {
        b.iter(|| {
            black_box(
                scenarios::hacc_series(32, 20_000, Strategy::Direct { tol: 1.1 }, true).app_time(),
            )
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig01_cluster, fig03_timeline, fig04_regions, fig05_hacc_runtime,
              fig07_wacomm_dist, fig08_09_10_series, fig11_hacc_dist,
              fig12_structure, fig13_14_series
}
criterion_main!(figures);

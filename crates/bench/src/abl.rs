//! Registry entries for the ablation studies DESIGN.md calls out:
//!
//! * `tol`        — tolerance sweep for the direct strategy (risk/exploit),
//! * `subreq`     — ADIO sub-request size (pacing granularity),
//! * `semantics`  — te-mode (first/last wait) × aggregation (sum/mean),
//! * `limitsync`  — pacing blocking calls too (paper) vs async-only,
//! * `interference` — the \[33\] I/O↔compute competition model,
//! * `mfu`        — the future-work MFU-table strategy vs the paper's three,
//! * `bb`         — the burst-buffer future-work extension for sync I/O.
//!
//! Every run goes through the [`Session`] pipeline; every config knob is
//! set through the [`ExpConfig`] builder surface.

use crate::registry::ScenarioCtx;
use crate::write_csv;
use hpcwl::hacc::HaccConfig;
use hpcwl::wacomm::WacommConfig;
use iobts::session::{ExpConfig, HaccIo, RawWorkload, RunOutput, Session, Wacomm};
use simcore::Invariant;
use tmio::{Aggregation, Strategy, TeMode};

fn hacc() -> HaccConfig {
    HaccConfig {
        particles_per_rank: 100_000,
        loops: 8,
        ..Default::default()
    }
}

fn hacc_session(cfg: ExpConfig, hc: HaccConfig) -> RunOutput {
    Session::builder(cfg)
        .workload(HaccIo::new(hc))
        .build()
        .run()
}

fn wacomm_session(cfg: ExpConfig) -> RunOutput {
    Session::builder(cfg)
        .workload(Wacomm::new(WacommConfig::default()))
        .build()
        .run()
}

fn header(t: &str) {
    println!("\n=== ablation: {t} ===");
}

fn stats(out: &RunOutput) -> (f64, f64, f64) {
    let d = out.report.decomposition();
    (
        out.app_time(),
        100.0 * (d.async_write_lost + d.async_read_lost) / d.total.max(1e-12),
        100.0 * d.exploit() / d.total.max(1e-12),
    )
}

/// Peak PFS write rate over any 100 ms window after `start`.
fn sustained_peak(out: &RunOutput, start: f64) -> f64 {
    let mut peak = 0.0f64;
    let mut x = start;
    while x + 0.1 <= out.app_time() {
        let r = out.pfs_write.integral(
            simcore::SimTime::from_secs(x),
            simcore::SimTime::from_secs(x + 0.1),
        ) / 0.1;
        peak = peak.max(r);
        x += 0.05;
    }
    peak
}

/// Tolerance sweep: low tol = aggressive (waits appear), high tol = safe
/// but less exploitation (the trade-off of Sec. IV-B).
pub fn tol_sweep(ctx: &ScenarioCtx) -> Result<(), String> {
    if ctx.emit {
        header("direct-strategy tolerance (HACC-IO, 16 ranks)");
        println!(
            "{:>6} {:>10} {:>8} {:>9}",
            "tol", "time [s]", "lost %", "exploit %"
        );
    }
    let mut rows = Vec::new();
    for tol in [0.8, 0.9, 1.0, 1.1, 1.3, 1.5, 2.0] {
        let out = hacc_session(ExpConfig::new(16, Strategy::Direct { tol }), hacc());
        let (t, lost, exploit) = stats(&out);
        if ctx.emit {
            println!("{tol:>6.1} {t:>10.2} {lost:>8.1} {exploit:>9.1}");
        }
        rows.push(format!("{tol},{t:.4},{lost:.2},{exploit:.2}"));
    }
    if ctx.emit {
        write_csv("ablation_tol", "tol,time_s,lost_pct,exploit_pct", &rows)
            .map_err(|e| e.to_string())?;
        println!("(lower tol -> more waiting; higher tol -> less exploitation)");
    }
    Ok(())
}

/// Sub-request size: smaller sub-requests pace more smoothly but cost more
/// I/O-thread round trips; larger ones burst.
pub fn subreq_sweep(ctx: &ScenarioCtx) -> Result<(), String> {
    if ctx.emit {
        header("ADIO sub-request size (HACC-IO, 16 ranks, up-only)");
        println!(
            "{:>12} {:>10} {:>9} {:>22}",
            "subreq", "time [s]", "lost %", "sustained peak [MB/s]"
        );
    }
    let mut rows = Vec::new();
    for kib in [256.0, 1024.0, 4096.0, 16384.0] {
        let cfg = ExpConfig::new(16, Strategy::UpOnly { tol: 1.1 }).with_subreq_bytes(kib * 1024.0);
        let out = hacc_session(cfg, hacc());
        let (t, lost, _) = stats(&out);
        // Peak bytes in any 100 ms window after the limiter engages.
        let peak = sustained_peak(&out, out.report.limit_start_time().unwrap_or(0.0));
        if ctx.emit {
            println!(
                "{:>9} KiB {:>10.2} {:>9.1} {:>22.1}",
                kib,
                t,
                lost,
                peak / 1e6
            );
        }
        rows.push(format!("{kib},{t:.4},{lost:.2},{:.1}", peak / 1e6));
    }
    if ctx.emit {
        write_csv(
            "ablation_subreq",
            "subreq_kib,time_s,lost_pct,peak_mbs",
            &rows,
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Window-end and aggregation semantics (the TMIO options of Sec. IV-A).
/// Needs multiple requests per phase with separated waits — a pattern of
/// two iwrites whose waits close 1.0 s and 1.5 s after submission, run as a
/// [`RawWorkload`] through the same session pipeline as everything else.
pub fn semantics(ctx: &ScenarioCtx) -> Result<(), String> {
    use mpisim::{FileId, Op, Program, ReqTag};
    if ctx.emit {
        header("B window semantics: te-mode × aggregation (2 requests per phase)");
        println!(
            "{:<10} {:<5} {:>14} {:>14}",
            "te", "agg", "rank B [MB/s]", "app B [MB/s]"
        );
    }
    let mut rows = Vec::new();
    for te in [TeMode::FirstWait, TeMode::LastWait] {
        for agg in [Aggregation::Sum, Aggregation::Mean] {
            let b = 10e6;
            let mut ops = Vec::new();
            for k in 0..4u32 {
                ops.push(Op::IWrite {
                    file: FileId(0),
                    bytes: b,
                    tag: ReqTag(2 * k),
                });
                ops.push(Op::IWrite {
                    file: FileId(0),
                    bytes: b,
                    tag: ReqTag(2 * k + 1),
                });
                ops.push(Op::Compute { seconds: 1.0 });
                ops.push(Op::Wait { tag: ReqTag(2 * k) });
                ops.push(Op::Compute { seconds: 0.5 });
                ops.push(Op::Wait {
                    tag: ReqTag(2 * k + 1),
                });
            }
            let cfg = ExpConfig::new(4, Strategy::None)
                .exact()
                .with_te_mode(te)
                .with_aggregation(agg)
                .with_peri_call_overhead(0.0);
            let workload =
                RawWorkload::new("semantics", vec![Program::from_ops(ops); 4], vec!["f"]);
            let out = Session::builder(cfg).workload(workload).build().run();
            let rank_b = out.report.phases[0].b_required / 1e6;
            let app_b = out.report.required_bandwidth() / 1e6;
            if ctx.emit {
                println!("{te:<10?} {agg:<5?} {rank_b:>14.1} {app_b:>14.1}");
            }
            rows.push(format!("{te:?},{agg:?},{rank_b:.2},{app_b:.2}"));
        }
    }
    if ctx.emit {
        write_csv("ablation_semantics", "te,agg,rank_B_mbs,app_B_mbs", &rows)
            .map_err(|e| e.to_string())?;
        println!("(the paper picks FirstWait+Sum — the highest, most conservative B)");
    }
    Ok(())
}

/// Pacing the trailing sync writes vs leaving them unthrottled.
pub fn limit_sync(ctx: &ScenarioCtx) -> Result<(), String> {
    if ctx.emit {
        header("limit applies to blocking I/O too? (WaComM, 96 ranks, up-only)");
        println!(
            "{:<12} {:>10} {:>12}",
            "limit sync", "time [s]", "final tail [s]"
        );
    }
    let mut rows = Vec::new();
    for on in [true, false] {
        let cfg = ExpConfig::new(96, Strategy::UpOnly { tol: 1.1 }).with_limit_sync(on);
        let out = wacomm_session(cfg);
        let d = out.report.decomposition();
        if ctx.emit {
            println!(
                "{:<12} {:>10.2} {:>12.3}",
                if on { "yes (paper)" } else { "no" },
                out.app_time(),
                d.sync_write / 96.0
            );
        }
        rows.push(format!(
            "{on},{:.4},{:.4}",
            out.app_time(),
            d.sync_write / 96.0
        ));
    }
    if ctx.emit {
        write_csv(
            "ablation_limitsync",
            "limit_sync,time_s,sync_write_mean_s",
            &rows,
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The \[33\] interference model — an honestly negative ablation. The toll is
/// charged per transferred sub-request byte at burst concurrency, and the
/// limiter's pacing (transfer fast, then sleep) preserves exactly that burst
/// microstructure: both runs pay the same toll and the paper's ≈11.6 %
/// speedup does NOT emerge. The mechanism the paper suspects (I/O threads
/// competing with compute threads for cores) lives below this substrate's
/// abstraction level; see EXPERIMENTS.md.
pub fn interference(ctx: &ScenarioCtx) -> Result<(), String> {
    if ctx.emit {
        header("I/O↔compute interference alpha (WaComM, 96 ranks) — negative result");
        println!(
            "{:>8} {:>14} {:>14} {:>10}",
            "alpha", "none [s]", "up-only [s]", "limit gain"
        );
    }
    let mut rows = Vec::new();
    for alpha in [0.0, 1e3, 1e4, 4e4] {
        let time = |strategy| {
            wacomm_session(ExpConfig::new(96, strategy).with_interference(alpha)).app_time()
        };
        let none = time(Strategy::None);
        let up = time(Strategy::UpOnly { tol: 1.1 });
        let gain = 100.0 * (none - up) / none;
        if ctx.emit {
            println!("{alpha:>8.0} {none:>14.2} {up:>14.2} {gain:>+9.1}%");
        }
        rows.push(format!("{alpha},{none:.4},{up:.4},{gain:.2}"));
    }
    if ctx.emit {
        write_csv(
            "ablation_interference",
            "alpha,none_s,uponly_s,gain_pct",
            &rows,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "(both runs slow equally: pacing preserves the burst microstructure, so\n\
             the paper's thread-competition speedup is not reproducible in a fluid\n\
             model — documented as a substrate limitation in EXPERIMENTS.md)"
        );
    }
    Ok(())
}

/// MFU-table strategy (the paper's future-work idea) against the three
/// published strategies on a workload with a recurring phase pattern.
pub fn mfu(ctx: &ScenarioCtx) -> Result<(), String> {
    if ctx.emit {
        header("MFU-table strategy vs the paper's three (HACC-IO, 16 ranks)");
        println!(
            "{:<10} {:>10} {:>8} {:>9}",
            "strategy", "time [s]", "lost %", "exploit %"
        );
    }
    let mut rows = Vec::new();
    for strategy in [
        Strategy::Direct { tol: 1.1 },
        Strategy::UpOnly { tol: 1.1 },
        Strategy::Adaptive {
            tol: 1.1,
            tol_i: 0.5,
        },
        Strategy::Mfu { tol: 1.3, bins: 32 },
        Strategy::None,
    ] {
        let out = hacc_session(ExpConfig::new(16, strategy), hacc());
        let (t, lost, exploit) = stats(&out);
        if ctx.emit {
            println!(
                "{:<10} {t:>10.2} {lost:>8.1} {exploit:>9.1}",
                strategy.name()
            );
        }
        rows.push(format!("{},{t:.4},{lost:.2},{exploit:.2}", strategy.name()));
    }
    if ctx.emit {
        write_csv(
            "ablation_mfu",
            "strategy,time_s,lost_pct,exploit_pct",
            &rows,
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Burst buffer for synchronous I/O: the future-work extension.
pub fn burst_buffer(ctx: &ScenarioCtx) -> Result<(), String> {
    use pfsim::burstbuffer::required_drain_bandwidth;
    use pfsim::BurstBufferConfig;
    let hc = HaccConfig {
        particles_per_rank: 1_000_000,
        loops: 8,
        ..Default::default()
    };
    let period = hc.compute_seconds() + hc.verify_seconds();
    let bb = BurstBufferConfig {
        size_bytes: 4e9,
        absorb_rate: 5e9,
        drain_rate: 1e9,
    };
    if ctx.emit {
        header("burst buffer for synchronous HACC-IO (16 ranks, sync baseline)");
        println!(
            "per-rank burst {:.1} MB every {:.2} s -> required drain {:.1} MB/s (drain cap {:.0} MB/s)",
            hc.data_bytes() / 1e6,
            period,
            required_drain_bandwidth(hc.data_bytes(), period, &bb).invariant("drainable config") / 1e6,
            bb.drain_rate / 1e6,
        );
        println!(
            "{:<10} {:>10} {:>12} {:>22}",
            "tier", "time [s]", "syncW [s]", "sustained peak [MB/s]"
        );
    }
    let mut rows = Vec::new();
    for with_bb in [false, true] {
        // A modest mid-range PFS (1 GB/s) where checkpoint bursts hurt —
        // the tier is pointless on an idle 106 GB/s system.
        let mut cfg = ExpConfig::new(16, Strategy::None).with_pfs(pfsim::PfsConfig {
            write_capacity: 1e9,
            read_capacity: 1e9,
        });
        if with_bb {
            cfg = cfg.with_burst_buffer(bb);
        }
        let out = Session::builder(cfg)
            .workload(HaccIo::sync(hc))
            .build()
            .run();
        let d = out.report.decomposition();
        let peak = sustained_peak(&out, 0.0);
        if ctx.emit {
            println!(
                "{:<10} {:>10.2} {:>12.2} {:>22.1}",
                if with_bb { "bb" } else { "pfs-direct" },
                out.app_time(),
                d.sync_write / 16.0,
                peak / 1e6
            );
        }
        rows.push(format!(
            "{with_bb},{:.4},{:.4},{:.1}",
            out.app_time(),
            d.sync_write / 16.0,
            peak / 1e6
        ));
    }
    if ctx.emit {
        write_csv(
            "ablation_bb",
            "with_bb,time_s,sync_write_mean_s,peak_mbs",
            &rows,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "(the buffer absorbs the bursts: visible sync-write time collapses and the\n\
             runtime improves; the same bytes still cross the PFS, so its saturation\n\
             episodes merely spread out — the drain is where the paper's future-work\n\
             required-bandwidth definition applies)"
        );
    }
    Ok(())
}

//! Ablation studies over the design choices DESIGN.md calls out — a thin
//! frontend over the scenario registry ([`bench::registry`]).
//!
//! ```text
//! cargo run -p bench --release --bin ablations                # everything
//! cargo run -p bench --release --bin ablations -- --list      # enumerate
//! cargo run -p bench --release --bin ablations -- tol bb      # a subset
//! cargo run -p bench --release --bin ablations -- --only 'ablation.*'
//! ```

fn main() -> std::process::ExitCode {
    bench::registry::cli_main("ablation", "ablations")
}

//! Chaos harness: replays fig07/fig11-class scenarios under seeded fault
//! plans and asserts graceful degradation end to end — a thin frontend
//! over the scenario registry ([`bench::registry`]); the checks live in
//! [`bench::chaosrun`].
//!
//! ```text
//! cargo run -p bench --release --bin chaos            # full sweep
//! cargo run -p bench --release --bin chaos -- --quick # CI smoke
//! cargo run -p bench --release --bin chaos -- --list  # enumerate plans
//! cargo run -p bench --release --bin chaos -- outage  # one plan
//! ```

fn main() -> std::process::ExitCode {
    bench::registry::cli_main("chaos", "chaos")
}

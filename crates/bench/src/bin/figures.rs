//! Figure-regeneration harness: a thin frontend over the scenario
//! registry ([`bench::registry`]).
//!
//! ```text
//! cargo run -p bench --release --bin figures                   # everything
//! cargo run -p bench --release --bin figures -- --list         # enumerate
//! cargo run -p bench --release --bin figures -- fig09          # one figure
//! cargo run -p bench --release --bin figures -- --only 'fig1*' # glob
//! cargo run -p bench --release --bin figures -- --full         # paper scale
//! cargo run -p bench --release --bin figures -- --jobs 1       # force serial
//! ```
//!
//! Each figure prints the series/rows the paper plots and writes a CSV to
//! `results/`. Independent sweep points run on a bounded thread pool
//! (`--jobs N` or `$IOBTS_JOBS` override the width; output is byte-identical
//! at any width). Paper-vs-measured notes live in EXPERIMENTS.md.

fn main() -> std::process::ExitCode {
    bench::registry::cli_main("figure", "figures")
}

//! Figure-regeneration harness: one sub-command per figure in the paper.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all          # everything
//! cargo run -p bench --release --bin figures -- fig09        # one figure
//! cargo run -p bench --release --bin figures -- --full all   # paper scale
//! cargo run -p bench --release --bin figures -- --jobs 1 all # force serial
//! ```
//!
//! Each figure prints the series/rows the paper plots and writes a CSV to
//! `results/`. Independent sweep points run on a bounded thread pool
//! (`--jobs N` or `$IOBTS_JOBS` override the width; output is byte-identical
//! at any width). Paper-vs-measured notes live in EXPERIMENTS.md.

use bench::scenarios;
use bench::{multi_series_rows, sweeps, write_csv};

use tmio::Strategy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut wanted: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let n = it
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .expect("--jobs needs a positive integer");
            bench::par::set_jobs(n.max(1));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            bench::par::set_jobs(v.parse::<usize>().expect("--jobs needs an integer").max(1));
        } else if !a.starts_with("--") {
            wanted.push(a.as_str());
        }
    }
    let all = wanted.is_empty() || wanted.contains(&"all");
    let want = |id: &str| all || wanted.contains(&id);

    let t0 = std::time::Instant::now();
    if want("fig01") || want("fig02") {
        fig01_02();
    }
    if want("fig03") {
        fig03();
    }
    if want("fig04") {
        fig04();
    }
    if want("fig05") || want("fig06") {
        fig05_06(full);
    }
    if want("fig07") {
        fig07(full);
    }
    if want("fig08") {
        fig08();
    }
    if want("fig09") {
        fig09();
    }
    if want("fig10") {
        fig10(full);
    }
    if want("fig11") {
        fig11(full);
    }
    if want("fig12") {
        fig12();
    }
    if want("fig13") {
        fig13(full);
    }
    if want("fig14") {
        fig14(full);
    }
    eprintln!("\n[figures done in {:.1} s]", t0.elapsed().as_secs_f64());
}

fn header(id: &str, what: &str) {
    println!("\n================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}

/// Figs. 1 & 2: motivation — 8 jobs, job 4 async, limited during contention.
fn fig01_02() {
    header(
        "fig01",
        "job runtimes with/without limiting job 4 (ElastiSim study)",
    );
    let out = scenarios::motivation();
    let mut rows = Vec::new();
    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>8}",
        "job", "nodes", "w/o [s]", "with [s]", "delta"
    );
    for (a, b) in out.free.jobs.iter().zip(&out.limited.jobs) {
        let d = b.runtime() - a.runtime();
        println!(
            "{:<6} {:>6} {:>12.1} {:>12.1} {:>+8.1}",
            a.name,
            a.nodes,
            a.runtime(),
            b.runtime(),
            d
        );
        rows.push(format!(
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            a.name,
            a.nodes,
            a.start,
            a.end,
            b.start,
            b.end,
            a.runtime(),
            b.runtime()
        ));
    }
    let p = write_csv(
        "fig01_jobs",
        "job,nodes,start_free,end_free,start_lim,end_lim,runtime_free,runtime_lim",
        &rows,
    );
    println!("-> {}", p.display());

    header("fig02", "total PFS bandwidth over time for both cases");
    let horizon = out.free.makespan.max(out.limited.makespan);
    let rows = multi_series_rows(
        &[&out.free.total_bandwidth, &out.limited.total_bandwidth],
        0.0,
        horizon,
        240,
    );
    for r in rows.iter().step_by(24) {
        println!("{r}");
    }
    println!(
        "  w/o  {}",
        bench::sparkline(&out.free.total_bandwidth, 0.0, horizon, 72)
    );
    println!(
        "  with {}",
        bench::sparkline(&out.limited.total_bandwidth, 0.0, horizon, 72)
    );
    let p = write_csv(
        "fig02_bandwidth",
        "t,without_limit_Bps,with_limit_Bps",
        &rows,
    );
    println!("-> {}", p.display());
    // Job-4 band for the stacked view.
    let rows4 = multi_series_rows(
        &[&out.free.job_bandwidth[4], &out.limited.job_bandwidth[4]],
        0.0,
        horizon,
        240,
    );
    let p = write_csv("fig02_job4", "t,job4_free_Bps,job4_limited_Bps", &rows4);
    println!("-> {}", p.display());
}

/// Fig. 3: rank-0 timeline — Δt (available window) vs Δtᵃ (actual I/O).
fn fig03() {
    header("fig03", "rank 0 async I/O during compute phases: Δt vs Δtᵃ");
    let out = scenarios::rank_timeline();
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "phase", "submit", "complete", "wait@", "Δt", "Δtᵃ"
    );
    let mut rows = Vec::new();
    let mut spans: Vec<_> = out.report.spans.iter().filter(|s| s.rank == 0).collect();
    spans.sort_by(|a, b| a.submit.partial_cmp(&b.submit).unwrap());
    for (j, s) in spans.iter().enumerate() {
        let dt = s.wait_enter - s.submit;
        let dta = s.complete - s.submit;
        println!(
            "{:>5} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12.4}",
            j, s.submit, s.complete, s.wait_enter, dt, dta
        );
        rows.push(format!(
            "{j},{},{},{},{dt},{dta}",
            s.submit, s.complete, s.wait_enter
        ));
    }
    let p = write_csv(
        "fig03_timeline",
        "phase,submit,complete,wait_enter,dt,dta",
        &rows,
    );
    println!("-> {}", p.display());
    println!("(Δtᵃ < Δt on every phase: the I/O is fully hidden, as in Fig. 3)");
}

/// Fig. 4: the worked region example — B_r over five regions.
fn fig04() {
    header("fig04", "region sweep worked example (Eq. 3)");
    use tmio::regions::{sweep, Interval};
    let intervals = [
        Interval {
            ts: 0.0,
            te: 4.0,
            value: 1.0,
        },
        Interval {
            ts: 1.0,
            te: 6.0,
            value: 2.0,
        },
        Interval {
            ts: 2.0,
            te: 8.0,
            value: 4.0,
        },
    ];
    println!("inputs: B1 over [0,4)=1, B2 over [1,6)=2, B0 over [2,8)=4");
    let s = sweep(&intervals);
    let mut rows = Vec::new();
    for &(t, v) in s.points() {
        println!("  region starts at t={t}: B_r = {v}");
        rows.push(format!("{t},{v}"));
    }
    let p = write_csv("fig04_regions", "ts_r,B_r", &rows);
    println!("-> {}", p.display());
}

/// Figs. 5 & 6: HACC-IO runtime and overhead split vs ranks.
fn fig05_06(full: bool) {
    header("fig05", "HACC-IO runtime (Total/App/Overhead) vs ranks");
    let particles = if full { 1_000_000 } else { 100_000 };
    let ranks = sweeps::hacc_ranks(full);
    let rows = scenarios::hacc_overheads(&ranks, particles);
    println!(
        "{:>6} {:<7} {:>10} {:>10} {:>10} {:>10}",
        "ranks", "run", "app [s]", "peri [s]", "post [s]", "total [s]"
    );
    for r in &rows {
        println!(
            "{:>6} {:<7} {:>10.2} {:>10.4} {:>10.3} {:>10.2}",
            r.ranks, r.run, r.app, r.peri, r.post, r.total
        );
    }
    let csv = bench::overhead_csv_rows(&rows);
    let p = write_csv(
        "fig05_06_overheads",
        "ranks,run,app_s,peri_s,post_s,total_s,visible_io_pct,compute_pct",
        &csv,
    );
    println!("-> {}", p.display());

    header("fig06", "HACC-IO total-time distribution (direct vs none)");
    println!(
        "{:>6} {:<7} {:>10} {:>10} {:>12} {:>10}",
        "ranks", "run", "post %", "peri %", "visible I/O %", "compute %"
    );
    for r in &rows {
        let total_ranktime = r.app * r.ranks as f64 + r.post * r.ranks as f64;
        let post_pct = 100.0 * r.post * r.ranks as f64 / total_ranktime.max(1e-12);
        let peri_pct = 100.0 * r.peri / total_ranktime.max(1e-12);
        println!(
            "{:>6} {:<7} {:>10.2} {:>10.4} {:>12.2} {:>10.2}",
            r.ranks, r.run, post_pct, peri_pct, r.visible_pct, r.compute_pct
        );
    }
    println!("(peri-runtime < 0.1 %, post-runtime grows with ranks — the Fig. 6 shape)");
}

fn print_dist(rows: &[scenarios::DistRow]) -> Vec<String> {
    println!(
        "{:>6} {:>4} {:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "ranks",
        "run",
        "strategy",
        "syncW%",
        "syncR%",
        "lostW%",
        "lostR%",
        "explW%",
        "explR%",
        "compute%",
        "app [s]"
    );
    for r in rows {
        println!(
            "{:>6} {:>4} {:<9} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>9.2}",
            r.ranks,
            r.run,
            r.strategy,
            r.pct[0],
            r.pct[1],
            r.pct[2],
            r.pct[3],
            r.pct[4],
            r.pct[5],
            r.pct[6],
            r.app
        );
    }
    bench::dist_csv_rows(rows)
}

/// Fig. 7: WaComM time distribution across ranks and strategies.
fn fig07(full: bool) {
    header(
        "fig07",
        "WaComM time distribution (direct tol=2 / up-only tol=1.1 / none)",
    );
    let rows = scenarios::wacomm_distribution(&sweeps::wacomm_ranks(full));
    let csv = print_dist(&rows);
    let p = write_csv(
        "fig07_wacomm_dist",
        "ranks,run,strategy,sync_w,sync_r,lost_w,lost_r,expl_w,expl_r,compute,app_s",
        &csv,
    );
    println!("-> {}", p.display());
}

fn dump_series(out: &iobts::experiments::RunOutput, name: &str) {
    let horizon = out.app_time();
    let t_series = out.report.throughput_series();
    let b_series = out.report.required_series();
    let l_series = out.report.limit_series();
    println!("  T   {}", bench::sparkline(&t_series, 0.0, horizon, 72));
    println!("  B_L {}", bench::sparkline(&l_series, 0.0, horizon, 72));
    println!("  B   {}", bench::sparkline(&b_series, 0.0, horizon, 72));
    let rows = multi_series_rows(&[&t_series, &l_series, &b_series], 0.0, horizon, 400);
    let p = write_csv(name, "t,T_Bps,B_L_Bps,B_Bps", &rows);
    println!(
        "series: peak T = {:.1} MB/s, max B = {:.1} MB/s, max B_L = {:.1} MB/s, \
         physical PFS peak = {:.1} MB/s{}",
        t_series.max_value() / 1e6,
        b_series.max_value() / 1e6,
        l_series.max_value() / 1e6,
        out.pfs_write.max_value().max(out.pfs_read.max_value()) / 1e6,
        out.report
            .limit_start_time()
            .map(|t| format!(", limit starts at {t:.2} s"))
            .unwrap_or_default()
    );
    println!("-> {}", p.display());
}

/// Fig. 8: WaComM 96 ranks without limit.
fn fig08() {
    header("fig08", "WaComM 96 ranks, no limit: T and B over time");
    let out = scenarios::wacomm_series(96, Strategy::None, 0.0);
    println!("runtime {:.2} s", out.app_time());
    dump_series(&out, "fig08_series");
}

/// Fig. 9: WaComM 96 ranks, up-only.
fn fig09() {
    header("fig09", "WaComM 96 ranks, up-only tol=1.1: T follows B_L");
    let out = scenarios::wacomm_series(96, Strategy::UpOnly { tol: 1.1 }, 0.0);
    println!("runtime {:.2} s", out.app_time());
    dump_series(&out, "fig09_series");
    // Check each rank's T tracks that rank's in-effect limit: match every
    // throughput window to the phase of the same rank containing its start.
    let mut track = 0usize;
    let mut total = 0usize;
    for w in &out.report.windows {
        let phase = out
            .report
            .phases
            .iter()
            .find(|p| p.rank == w.rank && p.ts <= w.start && w.start < p.te);
        if let Some(limit) = phase.and_then(|p| p.limit_during) {
            total += 1;
            if (w.throughput() - limit).abs() / limit < 0.25 {
                track += 1;
            }
        }
    }
    println!(
        "{track}/{total} throttled windows within 25 % of the rank's B_L (T follows the limit)"
    );
}

/// Fig. 10: WaComM at scale — up-only vs none.
fn fig10(full: bool) {
    let ranks = if full { 9216 } else { 384 };
    header(
        "fig10",
        "WaComM at scale: up-only vs no limit (exploit & runtime)",
    );
    // The paper attributes its ≈11.6 % speedup to reduced resource
    // competition of the I/O threads [33] — an effect it defers to future
    // work; the virtual-time substrate reproduces runtime *parity* and the
    // exploitation gap. Set alpha > 0 to model the competition synthetically
    // (ablation `interference` in the benches).
    let alpha = 0.0;
    let strategies = [Strategy::None, Strategy::UpOnly { tol: 1.1 }];
    let mut outs = bench::par::par_map(&strategies, |&strategy| {
        scenarios::wacomm_series(ranks, strategy, alpha)
    });
    let uponly = outs.pop().unwrap();
    let none = outs.pop().unwrap();
    let d_none = none.report.decomposition();
    let d_up = uponly.report.decomposition();
    let e_none = 100.0 * d_none.exploit() / d_none.total.max(1e-12);
    let e_up = 100.0 * d_up.exploit() / d_up.total.max(1e-12);
    println!("{:<10} {:>10} {:>10}", "run", "time [s]", "exploit %");
    println!(
        "{:<10} {:>10.2} {:>10.1}",
        "up-only",
        uponly.app_time(),
        e_up
    );
    println!("{:<10} {:>10.2} {:>10.1}", "none", none.app_time(), e_none);
    let speedup = 100.0 * (none.app_time() - uponly.app_time()) / none.app_time();
    println!(
        "runtime change with limiting: {speedup:+.1} % (paper: ≈11.6 % speedup at 9216 ranks,\n\
         attributed to I/O-thread resource competition [33] that the paper defers; see\n\
         EXPERIMENTS.md — the exploitation gap above is the reproduced headline)"
    );
    dump_series(&uponly, "fig10_uponly");
    dump_series(&none, "fig10_none");
}

/// Fig. 11: HACC-IO time distribution across ranks, four strategies.
fn fig11(full: bool) {
    header(
        "fig11",
        "HACC-IO time distribution (direct/up-only/adaptive/none, tol=1.1)",
    );
    let particles = if full { 100_000 } else { 50_000 };
    let rows = scenarios::hacc_distribution(&sweeps::hacc_ranks(full), particles);
    let csv = print_dist(&rows);
    let p = write_csv(
        "fig11_hacc_dist",
        "ranks,run,strategy,sync_w,sync_r,lost_w,lost_r,expl_w,expl_r,compute,app_s",
        &csv,
    );
    println!("-> {}", p.display());
}

/// Fig. 12: the modified HACC-IO structure.
fn fig12() {
    header(
        "fig12",
        "modified HACC-IO benchmark structure (op schedule)",
    );
    use hpcwl::hacc::HaccConfig;
    let cfg = HaccConfig {
        loops: 2,
        ..Default::default()
    };
    let p = cfg.program(mpisim::FileId(0));
    for (i, op) in p.ops().iter().enumerate() {
        println!("{i:>3}: {op:?}");
    }
    println!(
        "(write overlaps the compute block, read overlaps the verify block,\n\
         waits close each block, memcpy precedes the read wait — Fig. 12)"
    );
}

/// Fig. 13: HACC-IO at scale under all four strategies.
fn fig13(full: bool) {
    let ranks = if full { 9216 } else { 384 };
    let particles = 100_000;
    header("fig13", "HACC-IO at scale: T/B_L/B series per strategy");
    let runs = [
        ("direct", Strategy::Direct { tol: 1.1 }),
        ("uponly", Strategy::UpOnly { tol: 1.1 }),
        (
            "adaptive",
            Strategy::Adaptive {
                tol: 1.1,
                tol_i: 0.5,
            },
        ),
        ("none", Strategy::None),
    ];
    let outs = bench::par::par_map(&runs, |&(_, strategy)| {
        scenarios::hacc_series(ranks, particles, strategy, false)
    });
    for ((name, _), out) in runs.iter().zip(&outs) {
        let d = out.report.decomposition();
        println!(
            "\n[{name}] runtime {:.2} s, exploit {:.1} %, lost {:.1} %",
            out.app_time(),
            100.0 * d.exploit() / d.total.max(1e-12),
            100.0 * (d.async_write_lost + d.async_read_lost) / d.total.max(1e-12)
        );
        dump_series(out, &format!("fig13_{name}"));
    }
}

/// Fig. 14: HACC-IO 1536 ranks, direct strategy, I/O variability.
fn fig14(full: bool) {
    let ranks = if full { 1536 } else { 192 };
    header(
        "fig14",
        "HACC-IO direct strategy under PFS capacity noise: waits appear",
    );
    let mut outs = bench::par::par_map(&[true, false], |&noise| {
        scenarios::hacc_series(ranks, 100_000, Strategy::Direct { tol: 1.1 }, noise)
    });
    let clean = outs.pop().unwrap();
    let noisy = outs.pop().unwrap();
    let d_noisy = noisy.report.decomposition();
    let d_clean = clean.report.decomposition();
    println!(
        "{:<18} {:>10} {:>12} {:>10}",
        "run", "time [s]", "lost [s]", "exploit %"
    );
    for (name, out, d) in [
        ("with I/O noise", &noisy, &d_noisy),
        ("without noise", &clean, &d_clean),
    ] {
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>10.1}",
            name,
            out.app_time(),
            d.async_write_lost + d.async_read_lost,
            100.0 * d.exploit() / d.total.max(1e-12)
        );
    }
    println!(
        "I/O variability makes the limited transfers miss the window (T falls\n\
         outside the green B region of Fig. 14), prolonging the runtime slightly."
    );
    dump_series(&noisy, "fig14_noisy");
}

//! Performance gate for the figure harness and the simulation hot loops.
//!
//! ```text
//! cargo run -p bench --release --bin perfgate            # quick scale
//! cargo run -p bench --release --bin perfgate -- --check BENCH_pr5.json
//! IOBTS_BENCH_OUT=path.json cargo run -p bench --release --bin perfgate
//! ```
//!
//! Times the sweep-style scenarios straight off the registry (emission
//! disabled, so pure computation is measured) twice — forced single-thread
//! and at the host's full worker count — plus the micro-kernels behind them
//! (water-filling allocator, PFS completion harvesting, event-queue churn,
//! tracer request matching, incremental region sweep), and writes the
//! measurements to `BENCH_pr5.json`. On a single-core host the jobs-N column
//! degenerates to jobs-1 and the parallel speedup claim is meaningless; the
//! gate warns loudly and records `parallel_meaningful: false` (CI pins
//! `IOBTS_JOBS=2` so the column stays informative there).
//!
//! With `--check <baseline.json>` the gate re-reads a checked-in baseline
//! and fails (exit 1) if any time-like metric regressed by more than 10 %.

use bench::par::{jobs, with_jobs};
use bench::registry::{select, ScenarioCtx};
use mpisim::{IoHooks, Limits, ReqTag};
use pfsim::alloc::{water_fill, water_fill_into, Demand, WaterFillScratch};
use pfsim::{Channel, FlowSpec, Pfs, PfsConfig};
use simcore::{EventQueue, SimTime};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;
use tmio::{sweep, IncrementalSweep, Interval, Strategy, Tracer, TracerConfig};

/// The registry entries the gate times — the sweep-shaped scenarios whose
/// wall time dominates figure regeneration — with the descriptive labels
/// used in the emitted JSON (registry names are terse).
const GATED: &[(&str, &str)] = &[
    ("fig05_06", "fig05_06_haccio_overhead"),
    ("fig07", "fig07_wacomm_distribution"),
    ("fig11", "fig11_haccio_distribution"),
    ("fig13", "fig13_haccio_series"),
];

/// Regression tolerance of `--check`: fail when a time-like metric exceeds
/// the baseline by more than this factor.
const CHECK_TOLERANCE: f64 = 1.10;

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Entry {
    name: &'static str,
    jobs1_s: f64,
    jobs_n_s: f64,
}

fn gate_figures(entries: &mut Vec<Entry>, reps: usize) {
    // Quick scale, no printing/CSV: identical computation to what the
    // `figures` bin runs, minus presentation.
    let ctx = ScenarioCtx {
        full: false,
        quick: false,
        emit: false,
    };
    let patterns: Vec<String> = GATED.iter().map(|(s, _)| s.to_string()).collect();
    let scenarios = select("figure", &patterns).expect("gated scenarios exist");

    let n = jobs();
    for s in &scenarios {
        eprintln!("[perfgate] {} ...", s.name);
        let run = || {
            black_box((s.run)(&ctx)).expect("gated scenario fails");
        };
        let jobs1_s = best_secs(reps, || with_jobs(1, run));
        let jobs_n_s = if n > 1 {
            best_secs(reps, || with_jobs(n, run))
        } else {
            jobs1_s
        };
        let label = GATED
            .iter()
            .find(|(name, _)| *name == s.name)
            .map(|(_, label)| *label)
            .expect("gated scenario has a label");
        entries.push(Entry {
            name: label,
            jobs1_s,
            jobs_n_s,
        });
    }
}

/// ns/op of a from-scratch `water_fill` vs the buffer-reusing
/// `water_fill_into` at a representative group count.
fn gate_water_fill() -> (f64, f64) {
    let n = 1024usize;
    let demands: Vec<Demand> = (0..n)
        .map(|i| Demand {
            count: 1 + i % 3,
            weight: 1.0 + (i % 5) as f64,
            cap: if i % 2 == 0 {
                Some(10.0 + i as f64)
            } else {
                None
            },
        })
        .collect();
    let iters = 2_000u32;
    let alloc_ns = best_secs(5, || {
        for _ in 0..iters {
            black_box(water_fill(black_box(5_000.0), black_box(&demands)));
        }
    }) * 1e9
        / iters as f64;
    let mut scratch = WaterFillScratch::default();
    let mut rates = Vec::new();
    let into_ns = best_secs(5, || {
        for _ in 0..iters {
            black_box(water_fill_into(
                black_box(5_000.0),
                black_box(&demands),
                &mut scratch,
                &mut rates,
            ));
        }
    }) * 1e9
        / iters as f64;
    (alloc_ns, into_ns)
}

/// ns per completed flow for a staggered PFS burst. Distinct sizes defeat
/// group merging, so group count equals flow count — this is the regime where
/// the completion-time index (O(1) `next_completion` instead of an O(groups)
/// scan per harvest step) and the allocation-free reallocation pay off.
fn gate_pfs_burst() -> f64 {
    let flows = 2048usize;
    best_secs(3, || {
        let mut p = Pfs::new(PfsConfig {
            write_capacity: 1e9,
            read_capacity: 1e9,
        });
        p.set_recording(false);
        for i in 0..flows {
            p.submit(
                SimTime::ZERO,
                Channel::Write,
                FlowSpec::simple(1e6 + (i as f64) * 137.0),
            );
        }
        assert_eq!(p.advance_to(SimTime::from_secs(1e6)).len(), flows);
    }) * 1e9
        / flows as f64
}

/// ns/event for schedule→(cancel 1/4)→pop churn on the slot-map event queue.
fn gate_queue_churn() -> f64 {
    let events = 200_000usize;
    best_secs(3, || {
        let mut q = EventQueue::with_capacity(1024);
        let mut t = 0.0f64;
        let mut pending = Vec::with_capacity(64);
        for i in 0..events {
            t += 0.001;
            let k = q.schedule(SimTime::from_secs(t), i);
            if i % 4 == 0 {
                pending.push(k);
            }
            if q.len() >= 64 {
                if let Some(k) = pending.pop() {
                    q.cancel(k);
                }
                black_box(q.pop());
            }
        }
        while q.pop().is_some() {}
    }) * 1e9
        / events as f64
}

// ---------------------------------------------------------------------
// Tracer request-matching kernel

/// Shape of the matching workload: submit/complete/wait cycles per phase.
const TM_RANKS: usize = 16;
const TM_PHASES: usize = 32;
const TM_REQS: usize = 64;

/// Replica of the pre-slot-map tracer's matching engine: open spans in a
/// `HashMap<(rank, tag), _>` probed on every hook call, AoS record vectors
/// grown without capacity, and the Eq. 3 series recomputed from scratch
/// (collect + sort) at the end of the run.
mod legacy_match {
    use super::*;

    struct OpenSpan {
        submit: SimTime,
        complete: Option<SimTime>,
        wait_enter: Option<SimTime>,
        bytes: f64,
    }

    struct Pending {
        tag: ReqTag,
        bytes: f64,
        ts: SimTime,
    }

    #[derive(Default)]
    struct RankTrace {
        phase: usize,
        queue: Vec<Pending>,
        tq_outstanding: usize,
        tq_start: f64,
        tq_bytes: f64,
    }

    pub struct LegacyTracer {
        ranks: Vec<RankTrace>,
        open_spans: HashMap<(usize, u32), OpenSpan>,
        phases: Vec<(usize, usize, f64, f64, f64)>,
        windows: Vec<(usize, f64, f64, f64)>,
        spans: Vec<(usize, f64, f64, f64, f64)>,
    }

    impl LegacyTracer {
        pub fn new(n_ranks: usize) -> Self {
            LegacyTracer {
                ranks: (0..n_ranks).map(|_| RankTrace::default()).collect(),
                open_spans: HashMap::new(),
                phases: Vec::new(),
                windows: Vec::new(),
                spans: Vec::new(),
            }
        }

        pub fn submit(&mut self, t: SimTime, rank: usize, tag: ReqTag, bytes: f64) {
            let rt = &mut self.ranks[rank];
            rt.queue.push(Pending { tag, bytes, ts: t });
            if rt.tq_outstanding == 0 {
                rt.tq_start = t.as_secs();
                rt.tq_bytes = 0.0;
            }
            rt.tq_outstanding += 1;
            rt.tq_bytes += bytes;
            self.open_spans.insert(
                (rank, tag.0),
                OpenSpan {
                    submit: t,
                    complete: None,
                    wait_enter: None,
                    bytes,
                },
            );
        }

        pub fn complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
            if let Some(span) = self.open_spans.get_mut(&(rank, tag.0)) {
                span.complete = Some(t);
            }
            self.try_close_span(rank, tag);
            let rt = &mut self.ranks[rank];
            rt.tq_outstanding -= 1;
            if rt.tq_outstanding == 0 {
                self.windows
                    .push((rank, rt.tq_start, t.as_secs(), rt.tq_bytes));
            }
        }

        pub fn wait_enter(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
            if let Some(span) = self.open_spans.get_mut(&(rank, tag.0)) {
                span.wait_enter = Some(t);
            }
            self.try_close_span(rank, tag);
            let rt = &mut self.ranks[rank];
            if rt.queue.first().is_some_and(|p| p.tag == tag) {
                // Close the phase: aggregate B_{i,j} over the queue.
                let ts = rt.queue.first().map(|p| p.ts.as_secs()).unwrap_or(0.0);
                let bytes: f64 = rt.queue.iter().map(|p| p.bytes).sum();
                let b = bytes / (t.as_secs() - ts).max(1e-12);
                let phase = rt.phase;
                rt.phase += 1;
                rt.queue.clear();
                self.phases.push((rank, phase, ts, t.as_secs(), b));
            }
        }

        fn try_close_span(&mut self, rank: usize, tag: ReqTag) {
            let key = (rank, tag.0);
            let ready = self
                .open_spans
                .get(&key)
                .is_some_and(|s| s.complete.is_some() && s.wait_enter.is_some());
            if ready {
                let s = self.open_spans.remove(&key).expect("span present");
                self.spans.push((
                    rank,
                    s.submit.as_secs(),
                    s.complete.expect("set").as_secs(),
                    s.wait_enter.expect("set").as_secs(),
                    s.bytes,
                ));
            }
        }

        /// The end-of-run Eq. 3 aggregation the old engine performed:
        /// collect phase intervals, then sort-sweep them from scratch.
        pub fn required_series(&self) -> simcore::StepSeries {
            let intervals: Vec<Interval> = self
                .phases
                .iter()
                .map(|&(_, _, ts, te, b)| Interval { ts, te, value: b })
                .collect();
            sweep(&intervals)
        }
    }
}

/// Target of the matching workload: one submit→complete→wait request cycle.
trait MatchSink {
    fn submit(&mut self, t: SimTime, rank: usize, tag: ReqTag, bytes: f64);
    fn complete(&mut self, t: SimTime, rank: usize, tag: ReqTag);
    fn wait(&mut self, t: SimTime, rank: usize, tag: ReqTag);
}

impl MatchSink for legacy_match::LegacyTracer {
    fn submit(&mut self, t: SimTime, rank: usize, tag: ReqTag, bytes: f64) {
        legacy_match::LegacyTracer::submit(self, t, rank, tag, bytes);
    }
    fn complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        legacy_match::LegacyTracer::complete(self, t, rank, tag);
    }
    fn wait(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        self.wait_enter(t, rank, tag);
    }
}

/// Adapter feeding the hook-call cycle into the real tracer.
struct TracerSink {
    tracer: Tracer,
    limits: Limits,
}

impl MatchSink for TracerSink {
    fn submit(&mut self, t: SimTime, rank: usize, tag: ReqTag, bytes: f64) {
        self.tracer
            .on_async_submit(t, rank, tag, bytes, Channel::Write, &mut self.limits);
    }
    fn complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        self.tracer.on_request_complete(t, rank, tag);
    }
    fn wait(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        self.tracer
            .on_wait_enter(t, rank, tag, true, &mut self.limits);
        self.tracer.on_wait_exit(t, rank, tag, &mut self.limits);
    }
}

/// Drives the submit→complete→wait cycle workload through `sink`.
fn drive_match_workload(sink: &mut impl MatchSink) {
    let mut t = 0.0f64;
    for _ in 0..TM_PHASES {
        for rank in 0..TM_RANKS {
            for r in 0..TM_REQS {
                t += 1e-5;
                sink.submit(SimTime::from_secs(t), rank, ReqTag(r as u32), 1e6);
            }
            for r in 0..TM_REQS {
                t += 1e-5;
                sink.complete(SimTime::from_secs(t), rank, ReqTag(r as u32));
            }
            for r in 0..TM_REQS {
                t += 1e-5;
                sink.wait(SimTime::from_secs(t), rank, ReqTag(r as u32));
            }
        }
    }
}

/// ns per request through the legacy HashMap matcher vs the slot-map
/// tracer, both ending with the Eq. 3 required-bandwidth series (scratch
/// sort-sweep vs the incremental sweep-line kept live during the run).
fn gate_tracer_match() -> (f64, f64) {
    let reqs = (TM_PHASES * TM_RANKS * TM_REQS) as f64;
    let legacy_ns = best_secs(5, || {
        let mut tr = legacy_match::LegacyTracer::new(TM_RANKS);
        drive_match_workload(&mut tr);
        black_box(tr.required_series());
    }) * 1e9
        / reqs;
    let new_ns = best_secs(5, || {
        let mut sink = TracerSink {
            tracer: Tracer::new(TM_RANKS, TracerConfig::with_strategy(Strategy::None)),
            limits: Limits::new(TM_RANKS, false),
        };
        drive_match_workload(&mut sink);
        black_box(sink.tracer.live_required_series());
    }) * 1e9
        / reqs;
    (legacy_ns, new_ns)
}

/// ns per operation (insert or query) for the Eq. 3 sweep under interleaved
/// appends and series queries — the monitoring access pattern. The scratch
/// path re-sorts every interval on each query; the incremental sweep-line
/// inserts edges in place and re-accumulates without sorting.
fn gate_sweep_incremental() -> (f64, f64) {
    let n = 4_000usize;
    let query_every = 100usize;
    let iv = |i: usize| Interval {
        ts: ((i * 7919) % 1000) as f64 * 0.01,
        te: ((i * 7919) % 1000) as f64 * 0.01 + 0.5 + (i % 7) as f64 * 0.1,
        value: 1.0 + (i % 13) as f64,
    };
    let ops = (n + n / query_every) as f64;
    let scratch_ns = best_secs(3, || {
        let mut ivs: Vec<Interval> = Vec::new();
        for i in 0..n {
            ivs.push(iv(i));
            if (i + 1) % query_every == 0 {
                black_box(sweep(&ivs));
            }
        }
    }) * 1e9
        / ops;
    let incr_ns = best_secs(3, || {
        let mut inc = IncrementalSweep::new();
        for i in 0..n {
            inc.push(iv(i));
            if (i + 1) % query_every == 0 {
                black_box(inc.series());
            }
        }
    }) * 1e9
        / ops;
    (scratch_ns, incr_ns)
}

// ---------------------------------------------------------------------
// Baseline regression check

/// Wrapper capturing the raw JSON tree (the shim's `Value` itself does not
/// implement `Deserialize`).
struct RawJson(serde::Value);

impl serde::Deserialize for RawJson {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(RawJson(v.clone()))
    }
}

/// Flattens every time-like metric (lower is better) of a bench JSON tree
/// into `path -> value`. Speedup ratios are deliberately excluded.
fn time_metrics(v: &serde::Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let serde::Value::Map(top) = v else {
        return out;
    };
    for (section, val) in top {
        let serde::Value::Map(entries) = val else {
            continue;
        };
        match section.as_str() {
            "figures" => {
                for (name, fig) in entries {
                    if let serde::Value::Map(fields) = fig {
                        for (k, fv) in fields {
                            if let (true, serde::Value::Num(n)) = (k.ends_with("_s"), fv) {
                                out.push((format!("figures.{name}.{k}"), *n));
                            }
                        }
                    }
                }
            }
            "micro" => {
                for (k, mv) in entries {
                    if let (true, serde::Value::Num(n)) = (k.contains("_ns"), mv) {
                        out.push((format!("micro.{k}"), *n));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Compares the current run against a checked-in baseline; returns the list
/// of metrics that regressed beyond [`CHECK_TOLERANCE`].
fn regressions(baseline: &serde::Value, current: &serde::Value) -> Vec<String> {
    let base: HashMap<String, f64> = time_metrics(baseline).into_iter().collect();
    let mut bad = Vec::new();
    for (name, cur) in time_metrics(current) {
        if let Some(&b) = base.get(&name) {
            if b > 0.0 && cur > b * CHECK_TOLERANCE {
                bad.push(format!(
                    "{name}: {cur:.4} vs baseline {b:.4} (+{:.0}%)",
                    (cur / b - 1.0) * 100.0
                ));
            }
        }
    }
    bad
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .expect("--check needs a baseline path")
            .clone()
    });

    let reps = 2;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t0 = Instant::now();

    let mut entries = Vec::new();
    gate_figures(&mut entries, reps);
    eprintln!("[perfgate] micro kernels ...");
    let (wf_alloc_ns, wf_into_ns) = gate_water_fill();
    let pfs_ns = gate_pfs_burst();
    let queue_ns = gate_queue_churn();
    let (tm_legacy_ns, tm_new_ns) = gate_tracer_match();
    let (sw_scratch_ns, sw_incr_ns) = gate_sweep_incremental();

    let parallel_meaningful = cores > 1 && entries.iter().any(|e| e.jobs_n_s != e.jobs1_s);
    if !parallel_meaningful {
        eprintln!(
            "[perfgate] WARNING: jobs-N column degenerated to jobs-1 \
             (cores={cores}, jobs={}); the parallel speedup numbers are \
             meaningless on this host — set IOBTS_JOBS>=2 on a multi-core \
             machine to measure them",
            jobs()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"default_jobs\": {},\n", jobs()));
    json.push_str(&format!(
        "  \"parallel_meaningful\": {parallel_meaningful},\n"
    ));
    json.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    json.push_str("  \"figures\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.jobs1_s / e.jobs_n_s.max(1e-12);
        json.push_str(&format!(
            "    \"{}\": {{\"jobs1_s\": {:.4}, \"jobsN_s\": {:.4}, \"speedup\": {:.2}}}{}\n",
            e.name,
            e.jobs1_s,
            e.jobs_n_s,
            speedup,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"micro\": {\n");
    json.push_str(&format!(
        "    \"water_fill_1024_alloc_ns\": {wf_alloc_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"water_fill_1024_into_ns\": {wf_into_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"water_fill_into_speedup\": {:.2},\n",
        wf_alloc_ns / wf_into_ns.max(1e-12)
    ));
    json.push_str(&format!("    \"pfs_burst_ns_per_flow\": {pfs_ns:.1},\n"));
    json.push_str(&format!(
        "    \"queue_churn_ns_per_event\": {queue_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"tracer_match_legacy_ns_per_req\": {tm_legacy_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"tracer_match_ns_per_req\": {tm_new_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"tracer_match_speedup\": {:.2},\n",
        tm_legacy_ns / tm_new_ns.max(1e-12)
    ));
    json.push_str(&format!(
        "    \"sweep_scratch_ns_per_op\": {sw_scratch_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"sweep_incremental_ns_per_op\": {sw_incr_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"sweep_incremental_speedup\": {:.2}\n",
        sw_scratch_ns / sw_incr_ns.max(1e-12)
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"gate_wall_s\": {:.1}\n",
        t0.elapsed().as_secs_f64()
    ));
    json.push_str("}\n");

    let out = std::env::var("IOBTS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr5.json".to_string());
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("-> {out}");

    if let Some(path) = check_path {
        let base_text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base: RawJson = serde_json::from_str(&base_text).expect("parse baseline json");
        let cur: RawJson = serde_json::from_str(&json).expect("parse current json");
        let bad = regressions(&base.0, &cur.0);
        if bad.is_empty() {
            eprintln!(
                "[perfgate] OK: no metric regressed >{:.0}% vs {path}",
                (CHECK_TOLERANCE - 1.0) * 100.0
            );
        } else {
            eprintln!("[perfgate] FAIL: regressions vs {path}:");
            for b in &bad {
                eprintln!("  {b}");
            }
            std::process::exit(1);
        }
    }
}

//! Performance gate for the figure harness and the simulation hot loops.
//!
//! ```text
//! cargo run -p bench --release --bin perfgate            # quick scale
//! IOBTS_BENCH_OUT=path.json cargo run -p bench --release --bin perfgate
//! ```
//!
//! Times the sweep-style scenarios straight off the registry (emission
//! disabled, so pure computation is measured) twice — forced single-thread
//! and at the host's full worker count — plus the micro-kernels behind them
//! (water-filling allocator, PFS completion harvesting, event-queue churn),
//! and writes the measurements to `BENCH_pr1.json`. On a single-core host the
//! jobs-N column degenerates to jobs-1; the parallel speedup claim is only
//! meaningful where `cores > 1` (recorded in the JSON).

use bench::par::{jobs, with_jobs};
use bench::registry::{select, ScenarioCtx};
use pfsim::alloc::{water_fill, water_fill_into, Demand, WaterFillScratch};
use pfsim::{Channel, FlowSpec, Pfs, PfsConfig};
use simcore::{EventQueue, SimTime};
use std::hint::black_box;
use std::time::Instant;

/// The registry entries the gate times — the sweep-shaped scenarios whose
/// wall time dominates figure regeneration.
const GATED: &[&str] = &["fig05_06", "fig07", "fig11", "fig13"];

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Entry {
    name: String,
    jobs1_s: f64,
    jobs_n_s: f64,
}

fn gate_figures(entries: &mut Vec<Entry>, reps: usize) {
    // Quick scale, no printing/CSV: identical computation to what the
    // `figures` bin runs, minus presentation.
    let ctx = ScenarioCtx {
        full: false,
        quick: false,
        emit: false,
    };
    let patterns: Vec<String> = GATED.iter().map(|s| s.to_string()).collect();
    let scenarios = select("figure", &patterns).expect("gated scenarios exist");

    let n = jobs();
    for s in &scenarios {
        eprintln!("[perfgate] {} ...", s.name);
        let run = || {
            black_box((s.run)(&ctx)).expect("gated scenario fails");
        };
        let jobs1_s = best_secs(reps, || with_jobs(1, run));
        let jobs_n_s = if n > 1 {
            best_secs(reps, || with_jobs(n, run))
        } else {
            jobs1_s
        };
        entries.push(Entry {
            name: s.name.to_string(),
            jobs1_s,
            jobs_n_s,
        });
    }
}

/// ns/op of a from-scratch `water_fill` vs the buffer-reusing
/// `water_fill_into` at a representative group count.
fn gate_water_fill() -> (f64, f64) {
    let n = 1024usize;
    let demands: Vec<Demand> = (0..n)
        .map(|i| Demand {
            count: 1 + i % 3,
            weight: 1.0 + (i % 5) as f64,
            cap: if i % 2 == 0 {
                Some(10.0 + i as f64)
            } else {
                None
            },
        })
        .collect();
    let iters = 2_000u32;
    let alloc_ns = best_secs(5, || {
        for _ in 0..iters {
            black_box(water_fill(black_box(5_000.0), black_box(&demands)));
        }
    }) * 1e9
        / iters as f64;
    let mut scratch = WaterFillScratch::default();
    let mut rates = Vec::new();
    let into_ns = best_secs(5, || {
        for _ in 0..iters {
            black_box(water_fill_into(
                black_box(5_000.0),
                black_box(&demands),
                &mut scratch,
                &mut rates,
            ));
        }
    }) * 1e9
        / iters as f64;
    (alloc_ns, into_ns)
}

/// ns per completed flow for a staggered PFS burst. Distinct sizes defeat
/// group merging, so group count equals flow count — this is the regime where
/// the completion-time index (O(1) `next_completion` instead of an O(groups)
/// scan per harvest step) and the allocation-free reallocation pay off.
fn gate_pfs_burst() -> f64 {
    let flows = 2048usize;
    best_secs(3, || {
        let mut p = Pfs::new(PfsConfig {
            write_capacity: 1e9,
            read_capacity: 1e9,
        });
        p.set_recording(false);
        for i in 0..flows {
            p.submit(
                SimTime::ZERO,
                Channel::Write,
                FlowSpec::simple(1e6 + (i as f64) * 137.0),
            );
        }
        assert_eq!(p.advance_to(SimTime::from_secs(1e6)).len(), flows);
    }) * 1e9
        / flows as f64
}

/// ns/event for schedule→(cancel 1/4)→pop churn on the slot-map event queue.
fn gate_queue_churn() -> f64 {
    let events = 200_000usize;
    best_secs(3, || {
        let mut q = EventQueue::with_capacity(1024);
        let mut t = 0.0f64;
        let mut pending = Vec::with_capacity(64);
        for i in 0..events {
            t += 0.001;
            let k = q.schedule(SimTime::from_secs(t), i);
            if i % 4 == 0 {
                pending.push(k);
            }
            if q.len() >= 64 {
                if let Some(k) = pending.pop() {
                    q.cancel(k);
                }
                black_box(q.pop());
            }
        }
        while q.pop().is_some() {}
    }) * 1e9
        / events as f64
}

fn main() {
    let reps = 2;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t0 = Instant::now();

    let mut entries = Vec::new();
    gate_figures(&mut entries, reps);
    eprintln!("[perfgate] micro kernels ...");
    let (wf_alloc_ns, wf_into_ns) = gate_water_fill();
    let pfs_ns = gate_pfs_burst();
    let queue_ns = gate_queue_churn();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"default_jobs\": {},\n", jobs()));
    json.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    json.push_str("  \"figures\": {\n");
    for (i, e) in entries.iter().enumerate() {
        let speedup = e.jobs1_s / e.jobs_n_s.max(1e-12);
        json.push_str(&format!(
            "    \"{}\": {{\"jobs1_s\": {:.4}, \"jobsN_s\": {:.4}, \"speedup\": {:.2}}}{}\n",
            e.name,
            e.jobs1_s,
            e.jobs_n_s,
            speedup,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"micro\": {\n");
    json.push_str(&format!(
        "    \"water_fill_1024_alloc_ns\": {wf_alloc_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"water_fill_1024_into_ns\": {wf_into_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"water_fill_into_speedup\": {:.2},\n",
        wf_alloc_ns / wf_into_ns.max(1e-12)
    ));
    json.push_str(&format!("    \"pfs_burst_ns_per_flow\": {pfs_ns:.1},\n"));
    json.push_str(&format!(
        "    \"queue_churn_ns_per_event\": {queue_ns:.1}\n"
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"gate_wall_s\": {:.1}\n",
        t0.elapsed().as_secs_f64()
    ));
    json.push_str("}\n");

    let out = std::env::var("IOBTS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr1.json".to_string());
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
    eprintln!("-> {out}");
}

//! Registry entries for the chaos harness: each fault plan replays the
//! fig07/fig11-class scenarios (WaComM and HACC-IO time distributions)
//! under seeded faults and asserts graceful degradation end to end:
//!
//! * every strategy completes every plan — no deadlock, `Wait`/`Test`
//!   return even when requests fail,
//! * makespan inflation stays within a per-plan bound,
//! * replaying the same plan + seed is bit-identical (makespan, retry
//!   accounting, surfaced op errors),
//! * the **empty** plan reproduces the fault-free run bit-for-bit, so the
//!   figure CSVs cannot drift when fault injection is compiled in.
//!
//! Fault-free base runs are computed once per (workload, strategy, scale)
//! and shared across all plan entries in the process.

use crate::csv::CsvRow;
use crate::par::par_map;
use crate::registry::ScenarioCtx;
use hpcwl::hacc::HaccConfig;
use hpcwl::wacomm::WacommConfig;
use iobts::session::{ExpConfig, HaccIo, RunOutput, Session, Wacomm};
use simcore::{
    CancelSpec, ChannelFaultWindow, FaultChannel, FaultPlan, Invariant, IoErrorKind, IoErrorModel,
    StragglerSpec,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tmio::Strategy;

/// One scheduled fault plan plus its acceptance envelope.
struct PlannedFault {
    name: &'static str,
    plan: FaultPlan,
    /// Makespan must stay below `base * bound + outage_slack`.
    bound: f64,
    /// Extra absolute seconds granted for hard-outage stalls.
    outage_slack: f64,
    /// Whether the plan is expected to surface fault records in the report.
    expect_faults: bool,
    /// Whether the plan can only slow the run down (monotone plans must
    /// not finish *earlier* than the fault-free run).
    monotone: bool,
}

/// Which fig-class workload a case replays.
#[derive(Clone, Copy)]
enum Case {
    /// Fig. 7 class: WaComM pollutant transport.
    Wacomm { ranks: usize },
    /// Fig. 11 class: modified HACC-IO.
    Hacc { ranks: usize, particles: u64 },
}

impl Case {
    fn label(self) -> &'static str {
        match self {
            Case::Wacomm { .. } => "wacomm",
            Case::Hacc { .. } => "hacc",
        }
    }

    fn run(self, cfg: ExpConfig) -> RunOutput {
        let builder = Session::builder(cfg);
        match self {
            Case::Wacomm { .. } => builder.workload(Wacomm::new(WacommConfig::default())),
            Case::Hacc { particles, .. } => builder.workload(HaccIo::new(HaccConfig {
                particles_per_rank: particles,
                ..Default::default()
            })),
        }
        .build()
        .run()
    }

    fn ranks(self) -> usize {
        match self {
            Case::Wacomm { ranks } => ranks,
            Case::Hacc { ranks, .. } => ranks,
        }
    }
}

/// Builds the named fault plan against one base run of makespan `t`.
/// `combined` only exists at full scale (`quick` skips it).
fn plan_spec(name: &str, t: f64) -> PlannedFault {
    let outage = 0.2 * t;
    match name {
        "empty" => PlannedFault {
            name: "empty",
            plan: FaultPlan::empty(),
            bound: 1.0 + 1e-12,
            outage_slack: 0.0,
            expect_faults: false,
            monotone: true,
        },
        "outage" => PlannedFault {
            name: "outage",
            plan: FaultPlan {
                channel_faults: vec![ChannelFaultWindow {
                    channel: FaultChannel::Both,
                    start: 0.35 * t,
                    end: 0.35 * t + outage,
                    factor: 0.0,
                }],
                ..FaultPlan::default()
            },
            bound: 2.0,
            outage_slack: 3.0 * outage,
            expect_faults: false,
            monotone: true,
        },
        "brownout" => PlannedFault {
            name: "brownout",
            plan: FaultPlan {
                channel_faults: vec![ChannelFaultWindow {
                    channel: FaultChannel::Write,
                    start: 0.2 * t,
                    end: 0.8 * t,
                    factor: 0.4,
                }],
                ..FaultPlan::default()
            },
            bound: 3.0,
            outage_slack: 0.0,
            expect_faults: false,
            monotone: true,
        },
        "flaky" => PlannedFault {
            name: "flaky",
            plan: FaultPlan {
                seed: 7,
                io_errors: Some(IoErrorModel {
                    prob: 0.05,
                    kinds: vec![IoErrorKind::Io, IoErrorKind::Timeout, IoErrorKind::Stale],
                }),
                ..FaultPlan::default()
            },
            bound: 2.0,
            outage_slack: 1.0,
            expect_faults: true,
            monotone: false,
        },
        "straggler" => PlannedFault {
            name: "straggler",
            plan: FaultPlan {
                stragglers: vec![StragglerSpec {
                    rank: 1,
                    factor: 1.5,
                }],
                ..FaultPlan::default()
            },
            bound: 1.8,
            outage_slack: 0.0,
            expect_faults: false,
            monotone: true,
        },
        "cancel" => PlannedFault {
            name: "cancel",
            plan: FaultPlan {
                cancellations: vec![CancelSpec {
                    rank: 0,
                    op_index: 1,
                }],
                ..FaultPlan::default()
            },
            bound: 1.5,
            outage_slack: 0.0,
            expect_faults: true,
            monotone: false,
        },
        "combined" => PlannedFault {
            name: "combined",
            plan: FaultPlan {
                seed: 13,
                channel_faults: vec![ChannelFaultWindow {
                    channel: FaultChannel::Both,
                    start: 0.4 * t,
                    end: 0.4 * t + 0.5 * outage,
                    factor: 0.1,
                }],
                io_errors: Some(IoErrorModel::with_prob(0.02)),
                stragglers: vec![StragglerSpec {
                    rank: 0,
                    factor: 1.2,
                }],
                ..FaultPlan::default()
            },
            bound: 2.5,
            outage_slack: 3.0 * outage,
            expect_faults: false, // probabilistic; reported but not asserted
            monotone: false,
        },
        other => unreachable!("unknown chaos plan `{other}`"),
    }
}

/// Exact (bit-level) fingerprint of everything the figure CSVs read off a
/// run. Two runs with equal fingerprints produce byte-identical CSV rows.
fn fingerprint(out: &RunOutput) -> String {
    let d = out.report.decomposition();
    format!(
        "makespan={:016x} pct={:?} pct8={:?} B={:016x} retry={:016x} errors={:?}",
        out.app_time().to_bits(),
        d.percentages().map(f64::to_bits),
        d.percentages_with_faults().map(f64::to_bits),
        out.report.required_bandwidth().to_bits(),
        out.report.retry_time.to_bits(),
        out.summary.op_errors,
    )
}

/// One result row of a plan's sweep.
pub struct ChaosRow {
    workload: &'static str,
    strategy: &'static str,
    plan: &'static str,
    app: f64,
    inflation: f64,
    retry_s: f64,
    op_errors: usize,
    fault_events: usize,
    exploited_pct: f64,
    lost_pct: f64,
    violations: Vec<String>,
}

impl CsvRow for ChaosRow {
    const HEADER: &'static str =
        "workload,strategy,plan,app_s,inflation,retry_s,op_errors,fault_events,expl_pct,lost_pct,violations";

    fn row(&self) -> String {
        format!(
            "{},{},{},{:.4},{:.4},{:.4},{},{},{:.2},{:.2},{}",
            self.workload,
            self.strategy,
            self.plan,
            self.app,
            self.inflation,
            self.retry_s,
            self.op_errors,
            self.fault_events,
            self.exploited_pct,
            self.lost_pct,
            self.violations.len()
        )
    }
}

fn check_plan(
    case: Case,
    strategy_name: &'static str,
    strategy: Strategy,
    base: &RunOutput,
    pf: &PlannedFault,
) -> ChaosRow {
    let cfg = ExpConfig::new(case.ranks(), strategy).with_faults(pf.plan.clone());
    let out = case.run(cfg.clone());
    let mut violations = Vec::new();

    // Bounded makespan inflation (and completion itself: reaching this point
    // means no deadlock — failed waits returned, the outage ended).
    let limit = base.app_time() * pf.bound + pf.outage_slack;
    if out.app_time() > limit {
        violations.push(format!(
            "makespan {:.3} s exceeds bound {:.3} s",
            out.app_time(),
            limit
        ));
    }
    if pf.monotone && out.app_time() < base.app_time() - 1e-9 {
        violations.push(format!(
            "slow-only plan finished early: {:.6} < {:.6}",
            out.app_time(),
            base.app_time()
        ));
    }

    // The empty plan must be indistinguishable from no plan at all.
    if pf.name == "empty" && fingerprint(&out) != fingerprint(base) {
        violations.push("empty plan diverged from fault-free run".into());
    }

    // Replay determinism: same plan + seed -> bit-identical outcome.
    let replay = case.run(cfg);
    if fingerprint(&replay) != fingerprint(&out) {
        violations.push("replay diverged (non-deterministic fault path)".into());
    }

    if pf.expect_faults && out.report.faults.is_empty() && out.summary.op_errors.is_empty() {
        violations.push("expected fault records, found none".into());
    }

    let pct = out.report.decomposition().percentages();
    ChaosRow {
        workload: case.label(),
        strategy: strategy_name,
        plan: pf.name,
        app: out.app_time(),
        inflation: out.app_time() / base.app_time(),
        retry_s: out.report.retry_time,
        op_errors: out.summary.op_errors.len(),
        fault_events: out.report.faults.len(),
        exploited_pct: pct[4] + pct[5],
        lost_pct: pct[2] + pct[3],
        violations,
    }
}

fn cases(quick: bool) -> Vec<(Case, &'static str, Strategy)> {
    let (wacomm_ranks, hacc_ranks, particles) = if quick {
        (8, 8, 20_000)
    } else {
        (16, 16, 50_000)
    };
    let workloads = [
        Case::Wacomm {
            ranks: wacomm_ranks,
        },
        Case::Hacc {
            ranks: hacc_ranks,
            particles,
        },
    ];
    let strategies: [(&'static str, Strategy); 4] = [
        ("direct", Strategy::Direct { tol: 1.1 }),
        ("up-only", Strategy::UpOnly { tol: 1.1 }),
        (
            "adaptive",
            Strategy::Adaptive {
                tol: 1.1,
                tol_i: 0.5,
            },
        ),
        ("none", Strategy::None),
    ];
    workloads
        .iter()
        .flat_map(|&w| strategies.iter().map(move |&(n, s)| (w, n, s)))
        .collect()
}

/// Fault-free base runs, computed once per (workload, strategy, scale) and
/// shared by every plan entry in the process.
fn base_run(case: Case, strategy_name: &str, strategy: Strategy, quick: bool) -> Arc<RunOutput> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<RunOutput>>>> = OnceLock::new();
    let key = format!("{}/{}/{}", case.label(), strategy_name, quick);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().invariant("chaos cache lock").get(&key) {
        return Arc::clone(hit);
    }
    let cfg = ExpConfig::new(case.ranks(), strategy).with_record_pfs(false);
    let base = Arc::new(case.run(cfg));
    cache
        .lock()
        .invariant("chaos cache lock")
        .entry(key)
        .or_insert(base)
        .clone()
}

/// Runs one named fault plan over all (workload, strategy) cases; the
/// registry's `chaos.<plan>` entries call this.
pub fn run_plan(plan: &'static str, ctx: &ScenarioCtx) -> Result<(), String> {
    if plan == "combined" && ctx.quick {
        if ctx.emit {
            println!("chaos.combined: skipped in --quick mode (full sweep only)");
        }
        return Ok(());
    }
    let cases = cases(ctx.quick);
    let t0 = std::time::Instant::now();
    let rows: Vec<ChaosRow> = par_map(&cases, |&(case, name, strategy)| {
        let base = base_run(case, name, strategy, ctx.quick);
        let pf = plan_spec(plan, base.app_time());
        check_plan(case, name, strategy, &base, &pf)
    });

    if ctx.emit {
        println!(
            "{:<8} {:<9} {:<10} {:>8} {:>7} {:>8} {:>6} {:>7} {:>7} {:>6}",
            "workload",
            "strategy",
            "plan",
            "app [s]",
            "x base",
            "retry[s]",
            "opErr",
            "events",
            "expl%",
            "lost%"
        );
    }
    let mut failures = 0usize;
    for row in &rows {
        if ctx.emit {
            println!(
                "{:<8} {:<9} {:<10} {:>8.2} {:>7.2} {:>8.4} {:>6} {:>7} {:>7.1} {:>6.1}",
                row.workload,
                row.strategy,
                row.plan,
                row.app,
                row.inflation,
                row.retry_s,
                row.op_errors,
                row.fault_events,
                row.exploited_pct,
                row.lost_pct
            );
        }
        for v in &row.violations {
            failures += 1;
            eprintln!(
                "  VIOLATION [{}/{}/{}]: {v}",
                row.workload, row.strategy, row.plan
            );
        }
    }
    if ctx.emit {
        crate::csv::write_rows(&format!("chaos_{plan}"), &rows).map_err(|e| e.to_string())?;
        println!(
            "chaos.{plan}: {} fault runs x2 (replay) in {:.1} s, {failures} violation(s)",
            rows.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    if failures > 0 {
        return Err(format!("{failures} violation(s) under plan `{plan}`"));
    }
    Ok(())
}

//! Shared CSV emission for every bench bin: one row trait, one writer.
//!
//! Row structs ([`crate::scenarios::OverheadRow`],
//! [`crate::scenarios::DistRow`], [`crate::chaosrun::ChaosRow`], …)
//! implement [`CsvRow`]; [`write_rows`] dumps them and [`rows`] formats
//! them for byte-identity tests. Free-form tables go through
//! [`write_csv`]. All file writing is backed by the streaming
//! [`CsvSink`](iobts::session::CsvSink) of the session layer.

use iobts::session::CsvSink;
use simcore::{SimTime, StepSeries};
use std::path::PathBuf;

/// A struct that knows its CSV header and how to format itself as a row.
pub trait CsvRow {
    /// Header line (no trailing newline).
    const HEADER: &'static str;

    /// One formatted CSV row.
    fn row(&self) -> String;
}

/// Formats `items` as CSV rows (no header) — shared between the bins and
/// the determinism/golden tests so both compare identical bytes.
pub fn rows<R: CsvRow>(items: &[R]) -> Vec<String> {
    items.iter().map(CsvRow::row).collect()
}

/// Writes typed rows (header from the type) to `results/<name>.csv`
/// atomically (temp file + rename; see [`write_csv`]).
pub fn write_rows<R: CsvRow>(name: &str, items: &[R]) -> std::io::Result<PathBuf> {
    write_csv(name, R::HEADER, &rows(items))
}

/// Where figure CSVs are written (`results/` under the workspace root, or
/// `$IOBTS_RESULTS_DIR`). Creation is attempted but not required here —
/// the writer surfaces the error with the actual path if the directory
/// cannot exist.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("IOBTS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Writes CSV rows (with a header) to `results/<name>.csv`, returning the
/// path. The rows land in a temp sibling first and are renamed into place
/// on success, so an interrupted run never leaves a truncated CSV.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let path = results_dir().join(format!("{name}.csv"));
    let mut sink = CsvSink::create(&path, header)?;
    sink.rows(rows)?;
    sink.finish()
}

/// Resamples a step series into `(t, value)` CSV rows.
pub fn series_rows(series: &StepSeries, from: f64, to: f64, n: usize) -> Vec<String> {
    series
        .resample(SimTime::from_secs(from), SimTime::from_secs(to), n)
        .into_iter()
        .map(|(t, v)| format!("{t:.4},{v:.1}"))
        .collect()
}

/// Merges several same-horizon series into multi-column CSV rows.
pub fn multi_series_rows(series: &[&StepSeries], from: f64, to: f64, n: usize) -> Vec<String> {
    assert!(n >= 2);
    (0..n)
        .map(|k| {
            let t = from + (to - from) * k as f64 / (n - 1) as f64;
            let mut row = format!("{t:.4}");
            for s in series {
                row.push_str(&format!(",{:.1}", s.value_at(SimTime::from_secs(t))));
            }
            row
        })
        .collect()
}

//! Registry entries for the paper's figures. Each function computes its
//! scenario (always) and prints/writes CSVs only when `ctx.emit` — the
//! perf gate times the same entries with emission disabled.
//!
//! The CSV bytes are the repo's golden artifacts (`results/`): formatting
//! here must stay byte-stable across refactors.

use crate::csv::CsvRow;
use crate::registry::ScenarioCtx;
use crate::scenarios;
use crate::{multi_series_rows, sweeps, write_csv};
use iobts::session::RunOutput;
use simcore::Invariant;
use tmio::Strategy;

fn header(id: &str, what: &str) {
    println!("\n================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}

/// Figs. 1 & 2: motivation — 8 jobs, job 4 async, limited during contention.
pub fn fig01_02(ctx: &ScenarioCtx) -> Result<(), String> {
    let out = scenarios::motivation();
    if !ctx.emit {
        return Ok(());
    }
    header(
        "fig01",
        "job runtimes with/without limiting job 4 (ElastiSim study)",
    );
    let mut rows = Vec::new();
    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>8}",
        "job", "nodes", "w/o [s]", "with [s]", "delta"
    );
    for (a, b) in out.free.jobs.iter().zip(&out.limited.jobs) {
        let d = b.runtime() - a.runtime();
        println!(
            "{:<6} {:>6} {:>12.1} {:>12.1} {:>+8.1}",
            a.name,
            a.nodes,
            a.runtime(),
            b.runtime(),
            d
        );
        rows.push(format!(
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
            a.name,
            a.nodes,
            a.start,
            a.end,
            b.start,
            b.end,
            a.runtime(),
            b.runtime()
        ));
    }
    let p = write_csv(
        "fig01_jobs",
        "job,nodes,start_free,end_free,start_lim,end_lim,runtime_free,runtime_lim",
        &rows,
    )
    .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());

    header("fig02", "total PFS bandwidth over time for both cases");
    let horizon = out.free.makespan.max(out.limited.makespan);
    let rows = multi_series_rows(
        &[&out.free.total_bandwidth, &out.limited.total_bandwidth],
        0.0,
        horizon,
        240,
    );
    for r in rows.iter().step_by(24) {
        println!("{r}");
    }
    println!(
        "  w/o  {}",
        crate::sparkline(&out.free.total_bandwidth, 0.0, horizon, 72)
    );
    println!(
        "  with {}",
        crate::sparkline(&out.limited.total_bandwidth, 0.0, horizon, 72)
    );
    let p = write_csv(
        "fig02_bandwidth",
        "t,without_limit_Bps,with_limit_Bps",
        &rows,
    )
    .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());
    // Job-4 band for the stacked view.
    let rows4 = multi_series_rows(
        &[&out.free.job_bandwidth[4], &out.limited.job_bandwidth[4]],
        0.0,
        horizon,
        240,
    );
    let p = write_csv("fig02_job4", "t,job4_free_Bps,job4_limited_Bps", &rows4)
        .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());
    Ok(())
}

/// Fig. 3: rank-0 timeline — Δt (available window) vs Δtᵃ (actual I/O).
pub fn fig03(ctx: &ScenarioCtx) -> Result<(), String> {
    let out = scenarios::rank_timeline();
    if !ctx.emit {
        return Ok(());
    }
    header("fig03", "rank 0 async I/O during compute phases: Δt vs Δtᵃ");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "phase", "submit", "complete", "wait@", "Δt", "Δtᵃ"
    );
    let mut rows = Vec::new();
    let mut spans: Vec<_> = out.report.spans.iter().filter(|s| s.rank == 0).collect();
    spans.sort_by(|a, b| a.submit.total_cmp(&b.submit));
    for (j, s) in spans.iter().enumerate() {
        let dt = s.wait_enter - s.submit;
        let dta = s.complete - s.submit;
        println!(
            "{:>5} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>12.4}",
            j, s.submit, s.complete, s.wait_enter, dt, dta
        );
        rows.push(format!(
            "{j},{},{},{},{dt},{dta}",
            s.submit, s.complete, s.wait_enter
        ));
    }
    let p = write_csv(
        "fig03_timeline",
        "phase,submit,complete,wait_enter,dt,dta",
        &rows,
    )
    .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());
    println!("(Δtᵃ < Δt on every phase: the I/O is fully hidden, as in Fig. 3)");
    Ok(())
}

/// Fig. 4: the worked region example — B_r over five regions.
pub fn fig04(ctx: &ScenarioCtx) -> Result<(), String> {
    use tmio::regions::{sweep, Interval};
    let intervals = [
        Interval {
            ts: 0.0,
            te: 4.0,
            value: 1.0,
        },
        Interval {
            ts: 1.0,
            te: 6.0,
            value: 2.0,
        },
        Interval {
            ts: 2.0,
            te: 8.0,
            value: 4.0,
        },
    ];
    let s = sweep(&intervals);
    if !ctx.emit {
        return Ok(());
    }
    header("fig04", "region sweep worked example (Eq. 3)");
    println!("inputs: B1 over [0,4)=1, B2 over [1,6)=2, B0 over [2,8)=4");
    let mut rows = Vec::new();
    for &(t, v) in s.points() {
        println!("  region starts at t={t}: B_r = {v}");
        rows.push(format!("{t},{v}"));
    }
    let p = write_csv("fig04_regions", "ts_r,B_r", &rows).map_err(|e| e.to_string())?;
    println!("-> {}", p.display());
    Ok(())
}

/// Figs. 5 & 6: HACC-IO runtime and overhead split vs ranks.
pub fn fig05_06(ctx: &ScenarioCtx) -> Result<(), String> {
    let particles = if ctx.full { 1_000_000 } else { 100_000 };
    let ranks = sweeps::hacc_ranks(ctx.full);
    let rows = scenarios::hacc_overheads(&ranks, particles);
    if !ctx.emit {
        return Ok(());
    }
    header("fig05", "HACC-IO runtime (Total/App/Overhead) vs ranks");
    println!(
        "{:>6} {:<7} {:>10} {:>10} {:>10} {:>10}",
        "ranks", "run", "app [s]", "peri [s]", "post [s]", "total [s]"
    );
    for r in &rows {
        println!(
            "{:>6} {:<7} {:>10.2} {:>10.4} {:>10.3} {:>10.2}",
            r.ranks, r.run, r.app, r.peri, r.post, r.total
        );
    }
    let csv = crate::csv::rows(&rows);
    let p = write_csv("fig05_06_overheads", scenarios::OverheadRow::HEADER, &csv)
        .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());

    header("fig06", "HACC-IO total-time distribution (direct vs none)");
    println!(
        "{:>6} {:<7} {:>10} {:>10} {:>12} {:>10}",
        "ranks", "run", "post %", "peri %", "visible I/O %", "compute %"
    );
    for r in &rows {
        let total_ranktime = r.app * r.ranks as f64 + r.post * r.ranks as f64;
        let post_pct = 100.0 * r.post * r.ranks as f64 / total_ranktime.max(1e-12);
        let peri_pct = 100.0 * r.peri / total_ranktime.max(1e-12);
        println!(
            "{:>6} {:<7} {:>10.2} {:>10.4} {:>12.2} {:>10.2}",
            r.ranks, r.run, post_pct, peri_pct, r.visible_pct, r.compute_pct
        );
    }
    println!("(peri-runtime < 0.1 %, post-runtime grows with ranks — the Fig. 6 shape)");
    Ok(())
}

fn print_dist(rows: &[scenarios::DistRow]) -> Vec<String> {
    println!(
        "{:>6} {:>4} {:<9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "ranks",
        "run",
        "strategy",
        "syncW%",
        "syncR%",
        "lostW%",
        "lostR%",
        "explW%",
        "explR%",
        "compute%",
        "app [s]"
    );
    for r in rows {
        println!(
            "{:>6} {:>4} {:<9} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>9.2}",
            r.ranks,
            r.run,
            r.strategy,
            r.pct[0],
            r.pct[1],
            r.pct[2],
            r.pct[3],
            r.pct[4],
            r.pct[5],
            r.pct[6],
            r.app
        );
    }
    crate::csv::rows(rows)
}

/// Fig. 7: WaComM time distribution across ranks and strategies.
pub fn fig07(ctx: &ScenarioCtx) -> Result<(), String> {
    let rows = scenarios::wacomm_distribution(&sweeps::wacomm_ranks(ctx.full));
    if !ctx.emit {
        return Ok(());
    }
    header(
        "fig07",
        "WaComM time distribution (direct tol=2 / up-only tol=1.1 / none)",
    );
    let csv = print_dist(&rows);
    let p = write_csv("fig07_wacomm_dist", scenarios::DistRow::HEADER, &csv)
        .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());
    Ok(())
}

fn dump_series(out: &RunOutput, name: &str) -> Result<(), String> {
    let horizon = out.app_time();
    let t_series = out.report.throughput_series();
    let b_series = out.report.required_series();
    let l_series = out.report.limit_series();
    println!("  T   {}", crate::sparkline(t_series, 0.0, horizon, 72));
    println!("  B_L {}", crate::sparkline(l_series, 0.0, horizon, 72));
    println!("  B   {}", crate::sparkline(b_series, 0.0, horizon, 72));
    let rows = multi_series_rows(&[t_series, l_series, b_series], 0.0, horizon, 400);
    let p = write_csv(name, "t,T_Bps,B_L_Bps,B_Bps", &rows).map_err(|e| e.to_string())?;
    println!(
        "series: peak T = {:.1} MB/s, max B = {:.1} MB/s, max B_L = {:.1} MB/s, \
         physical PFS peak = {:.1} MB/s{}",
        t_series.max_value() / 1e6,
        b_series.max_value() / 1e6,
        l_series.max_value() / 1e6,
        out.pfs_write.max_value().max(out.pfs_read.max_value()) / 1e6,
        out.report
            .limit_start_time()
            .map(|t| format!(", limit starts at {t:.2} s"))
            .unwrap_or_default()
    );
    println!("-> {}", p.display());
    Ok(())
}

/// Fig. 8: WaComM 96 ranks without limit.
pub fn fig08(ctx: &ScenarioCtx) -> Result<(), String> {
    let out = scenarios::wacomm_series(96, Strategy::None, 0.0);
    if !ctx.emit {
        return Ok(());
    }
    header("fig08", "WaComM 96 ranks, no limit: T and B over time");
    println!("runtime {:.2} s", out.app_time());
    dump_series(&out, "fig08_series")?;
    Ok(())
}

/// Fig. 9: WaComM 96 ranks, up-only.
pub fn fig09(ctx: &ScenarioCtx) -> Result<(), String> {
    let out = scenarios::wacomm_series(96, Strategy::UpOnly { tol: 1.1 }, 0.0);
    if !ctx.emit {
        return Ok(());
    }
    header("fig09", "WaComM 96 ranks, up-only tol=1.1: T follows B_L");
    println!("runtime {:.2} s", out.app_time());
    dump_series(&out, "fig09_series")?;
    // Check each rank's T tracks that rank's in-effect limit: match every
    // throughput window to the phase of the same rank containing its start.
    let mut track = 0usize;
    let mut total = 0usize;
    for w in &out.report.windows {
        let phase = out
            .report
            .phases
            .iter()
            .find(|p| p.rank == w.rank && p.ts <= w.start && w.start < p.te);
        if let Some(limit) = phase.and_then(|p| p.limit_during) {
            total += 1;
            if (w.throughput() - limit).abs() / limit < 0.25 {
                track += 1;
            }
        }
    }
    println!(
        "{track}/{total} throttled windows within 25 % of the rank's B_L (T follows the limit)"
    );
    Ok(())
}

/// Fig. 10: WaComM at scale — up-only vs none.
pub fn fig10(ctx: &ScenarioCtx) -> Result<(), String> {
    let ranks = if ctx.full { 9216 } else { 384 };
    // The paper attributes its ≈11.6 % speedup to reduced resource
    // competition of the I/O threads [33] — an effect it defers to future
    // work; the virtual-time substrate reproduces runtime *parity* and the
    // exploitation gap. Set alpha > 0 to model the competition synthetically
    // (ablation `interference` in the benches).
    let alpha = 0.0;
    let strategies = [Strategy::None, Strategy::UpOnly { tol: 1.1 }];
    let mut outs = crate::par::par_map(&strategies, |&strategy| {
        scenarios::wacomm_series(ranks, strategy, alpha)
    });
    if !ctx.emit {
        return Ok(());
    }
    header(
        "fig10",
        "WaComM at scale: up-only vs no limit (exploit & runtime)",
    );
    let uponly = outs.pop().invariant("two strategy runs");
    let none = outs.pop().invariant("two strategy runs");
    let d_none = none.report.decomposition();
    let d_up = uponly.report.decomposition();
    let e_none = 100.0 * d_none.exploit() / d_none.total.max(1e-12);
    let e_up = 100.0 * d_up.exploit() / d_up.total.max(1e-12);
    println!("{:<10} {:>10} {:>10}", "run", "time [s]", "exploit %");
    println!(
        "{:<10} {:>10.2} {:>10.1}",
        "up-only",
        uponly.app_time(),
        e_up
    );
    println!("{:<10} {:>10.2} {:>10.1}", "none", none.app_time(), e_none);
    let speedup = 100.0 * (none.app_time() - uponly.app_time()) / none.app_time();
    println!(
        "runtime change with limiting: {speedup:+.1} % (paper: ≈11.6 % speedup at 9216 ranks,\n\
         attributed to I/O-thread resource competition [33] that the paper defers; see\n\
         EXPERIMENTS.md — the exploitation gap above is the reproduced headline)"
    );
    dump_series(&uponly, "fig10_uponly")?;
    dump_series(&none, "fig10_none")?;
    Ok(())
}

/// Fig. 11: HACC-IO time distribution across ranks, four strategies.
pub fn fig11(ctx: &ScenarioCtx) -> Result<(), String> {
    let particles = if ctx.full { 100_000 } else { 50_000 };
    let rows = scenarios::hacc_distribution(&sweeps::hacc_ranks(ctx.full), particles);
    if !ctx.emit {
        return Ok(());
    }
    header(
        "fig11",
        "HACC-IO time distribution (direct/up-only/adaptive/none, tol=1.1)",
    );
    let csv = print_dist(&rows);
    let p = write_csv("fig11_hacc_dist", scenarios::DistRow::HEADER, &csv)
        .map_err(|e| e.to_string())?;
    println!("-> {}", p.display());
    Ok(())
}

/// Fig. 12: the modified HACC-IO structure.
pub fn fig12(ctx: &ScenarioCtx) -> Result<(), String> {
    use hpcwl::hacc::HaccConfig;
    let cfg = HaccConfig {
        loops: 2,
        ..Default::default()
    };
    let p = cfg.program(mpisim::FileId(0));
    if !ctx.emit {
        return Ok(());
    }
    header(
        "fig12",
        "modified HACC-IO benchmark structure (op schedule)",
    );
    for (i, op) in p.ops().iter().enumerate() {
        println!("{i:>3}: {op:?}");
    }
    println!(
        "(write overlaps the compute block, read overlaps the verify block,\n\
         waits close each block, memcpy precedes the read wait — Fig. 12)"
    );
    Ok(())
}

/// Fig. 13: HACC-IO at scale under all four strategies.
pub fn fig13(ctx: &ScenarioCtx) -> Result<(), String> {
    let ranks = if ctx.full { 9216 } else { 384 };
    let particles = 100_000;
    let runs = [
        ("direct", Strategy::Direct { tol: 1.1 }),
        ("uponly", Strategy::UpOnly { tol: 1.1 }),
        (
            "adaptive",
            Strategy::Adaptive {
                tol: 1.1,
                tol_i: 0.5,
            },
        ),
        ("none", Strategy::None),
    ];
    let outs = crate::par::par_map(&runs, |&(_, strategy)| {
        scenarios::hacc_series(ranks, particles, strategy, false)
    });
    if !ctx.emit {
        return Ok(());
    }
    header("fig13", "HACC-IO at scale: T/B_L/B series per strategy");
    for ((name, _), out) in runs.iter().zip(&outs) {
        let d = out.report.decomposition();
        println!(
            "\n[{name}] runtime {:.2} s, exploit {:.1} %, lost {:.1} %",
            out.app_time(),
            100.0 * d.exploit() / d.total.max(1e-12),
            100.0 * (d.async_write_lost + d.async_read_lost) / d.total.max(1e-12)
        );
        dump_series(out, &format!("fig13_{name}"))?;
    }
    Ok(())
}

/// Fig. 14: HACC-IO 1536 ranks, direct strategy, I/O variability.
pub fn fig14(ctx: &ScenarioCtx) -> Result<(), String> {
    let ranks = if ctx.full { 1536 } else { 192 };
    let mut outs = crate::par::par_map(&[true, false], |&noise| {
        scenarios::hacc_series(ranks, 100_000, Strategy::Direct { tol: 1.1 }, noise)
    });
    if !ctx.emit {
        return Ok(());
    }
    header(
        "fig14",
        "HACC-IO direct strategy under PFS capacity noise: waits appear",
    );
    let clean = outs.pop().invariant("two noise runs");
    let noisy = outs.pop().invariant("two noise runs");
    let d_noisy = noisy.report.decomposition();
    let d_clean = clean.report.decomposition();
    println!(
        "{:<18} {:>10} {:>12} {:>10}",
        "run", "time [s]", "lost [s]", "exploit %"
    );
    for (name, out, d) in [
        ("with I/O noise", &noisy, &d_noisy),
        ("without noise", &clean, &d_clean),
    ] {
        println!(
            "{:<18} {:>10.2} {:>12.2} {:>10.1}",
            name,
            out.app_time(),
            d.async_write_lost + d.async_read_lost,
            100.0 * d.exploit() / d.total.max(1e-12)
        );
    }
    println!(
        "I/O variability makes the limited transfers miss the window (T falls\n\
         outside the green B region of Fig. 14), prolonging the runtime slightly."
    );
    dump_series(&noisy, "fig14_noisy")?;
    Ok(())
}

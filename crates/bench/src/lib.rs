//! Shared infrastructure for the figure-regeneration harness, the chaos
//! and ablation studies, the perf gate and the criterion benches.
//!
//! The layering (DESIGN.md §3): [`scenarios`] computes the paper's
//! figures through the session pipeline, [`figs`]/[`abl`]/[`chaosrun`]
//! wrap them as named registry entries, and [`registry`] gives every bin
//! the same `--list`/`--only <glob>`/`--jobs` frontend. CSV emission is
//! centralised in [`csv`]; [`par`] bounds the worker pool.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use simcore::{SimTime, StepSeries};

pub mod abl;
pub mod chaosrun;
pub mod csv;
pub mod figs;
/// Crash-safe sweep manifests (the `--resume` checkpoint layer).
pub mod manifest;
pub mod par;
pub mod registry;
pub mod scenarios;

pub use csv::{multi_series_rows, results_dir, series_rows, write_csv};

/// Renders a step series as a unicode sparkline over `[from, to]` — the
/// harness's terminal stand-in for the paper's plots. Values are binned by
/// integral (bursts shorter than a column still show up).
pub fn sparkline(series: &StepSeries, from: f64, to: f64, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(width >= 2 && to > from);
    let bin = (to - from) / width as f64;
    let vals: Vec<f64> = (0..width)
        .map(|k| {
            let a = from + k as f64 * bin;
            series.integral(SimTime::from_secs(a), SimTime::from_secs(a + bin)) / bin
        })
        .collect();
    let max = vals.iter().copied().fold(0.0, f64::max);
    if max <= 0.0 {
        return "▁".repeat(width);
    }
    vals.iter()
        .map(|v| {
            let idx = ((v / max) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// The rank sweeps used by the paper's figures; `full` selects paper scale,
/// otherwise a quick laptop-scale subset.
pub mod sweeps {
    /// HACC-IO rank sweep (Figs. 5/6/11): 1 … 9216.
    pub fn hacc_ranks(full: bool) -> Vec<usize> {
        if full {
            vec![1, 2, 4, 16, 64, 96, 384, 1536, 3072, 6144, 9216]
        } else {
            vec![1, 4, 16, 64, 96, 192]
        }
    }

    /// WaComM rank sweep (Fig. 7): 24 … 6144.
    pub fn wacomm_ranks(full: bool) -> Vec<usize> {
        if full {
            vec![24, 48, 96, 192, 384, 768, 1536, 3072, 6144]
        } else {
            vec![24, 48, 96, 192]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_written_to_results() {
        std::env::set_var("IOBTS_RESULTS_DIR", "/tmp/iobts-test-results");
        let p = write_csv("unit_test", "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body.lines().count(), 3);
        assert!(body.starts_with("a,b\n"));
    }

    #[test]
    fn multi_series_alignment() {
        let mut a = StepSeries::new();
        a.push(SimTime::from_secs(0.0), 1.0);
        let mut b = StepSeries::new();
        b.push(SimTime::from_secs(5.0), 2.0);
        let rows = multi_series_rows(&[&a, &b], 0.0, 10.0, 3);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("0.0000,1.0,0.0"));
        assert!(rows[2].starts_with("10.0000,1.0,2.0"));
    }

    #[test]
    fn sparkline_shows_bursts() {
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(2.0), 100.0);
        s.push(SimTime::from_secs(3.0), 0.0);
        let line = sparkline(&s, 0.0, 10.0, 10);
        assert_eq!(line.chars().count(), 10);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars[2], '█', "burst column maximal");
        assert_eq!(chars[0], '▁', "idle column minimal");
        assert_eq!(chars[7], '▁');
    }

    #[test]
    fn sparkline_flat_zero() {
        let s = StepSeries::new();
        assert_eq!(sparkline(&s, 0.0, 1.0, 5), "▁▁▁▁▁");
    }

    #[test]
    fn sweeps_are_sorted() {
        for full in [false, true] {
            let h = sweeps::hacc_ranks(full);
            assert!(h.windows(2).all(|w| w[0] < w[1]));
            let w = sweeps::wacomm_ranks(full);
            assert!(w.windows(2).all(|x| x[0] < x[1]));
        }
    }
}

//! Crash-safe sweep manifests: the registry's checkpoint/resume layer.
//!
//! As each scenario of a sweep completes, [`mark_done`] writes a tiny
//! per-entry manifest file under `results/.manifest/` — staged through a
//! temp sibling and atomically renamed, and written only *after* the
//! scenario's CSVs are themselves atomically in place. A manifest entry
//! therefore implies the scenario's outputs are whole.
//!
//! `--resume` ([`is_done`]) skips entries whose manifest matches the
//! current run shape (`--full`/`--quick` flags), so an interrupted sweep
//! picks up where it stopped and regenerates byte-identical outputs: the
//! scenarios themselves are deterministic, and the skipped entries' files
//! are already final. A non-resume run calls [`clear_group`] first so
//! stale manifests never mask re-runs after the flags change.

use crate::registry::ScenarioCtx;
use std::fs;
use std::io;
use std::path::PathBuf;

/// Where per-entry manifests live (inside the results dir, so
/// `$IOBTS_RESULTS_DIR` isolates concurrent test sweeps too).
pub fn manifest_dir() -> PathBuf {
    crate::results_dir().join(".manifest")
}

/// The run-shape fingerprint stored in each manifest entry: completing a
/// `--quick` sweep must not mark the full-scale variant done.
pub fn fingerprint(ctx: &ScenarioCtx) -> String {
    format!("v1 full={} quick={}", ctx.full, ctx.quick)
}

fn entry_path(group: &str, name: &str) -> PathBuf {
    manifest_dir().join(format!("{group}.{name}.done"))
}

/// Whether `name` completed under the same run shape (for `--resume`).
pub fn is_done(group: &str, name: &str, ctx: &ScenarioCtx) -> bool {
    fs::read_to_string(entry_path(group, name))
        .map(|body| body.trim() == fingerprint(ctx))
        .unwrap_or(false)
}

/// Records `name` as complete: temp file + atomic rename, written only
/// after the scenario's own outputs are in place.
pub fn mark_done(group: &str, name: &str, ctx: &ScenarioCtx) -> io::Result<()> {
    let dir = manifest_dir();
    fs::create_dir_all(&dir)?;
    let path = entry_path(group, name);
    let tmp = dir.join(format!(".{group}.{name}.tmp"));
    fs::write(&tmp, fingerprint(ctx))?;
    fs::rename(&tmp, &path)
}

/// Drops every manifest entry of `group` (fresh, non-resume runs).
pub fn clear_group(group: &str) {
    let Ok(entries) = fs::read_dir(manifest_dir()) else {
        return;
    };
    let prefix = format!("{group}.");
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.starts_with(&prefix) && name.ends_with(".done") {
            let _ = fs::remove_file(e.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(full: bool) -> ScenarioCtx {
        ScenarioCtx {
            full,
            quick: false,
            emit: true,
        }
    }

    #[test]
    fn roundtrip_and_fingerprint_mismatch() {
        // Same value as the csv test in lib.rs: the env var is process
        // global, so concurrent tests must agree on it.
        std::env::set_var("IOBTS_RESULTS_DIR", "/tmp/iobts-test-results");
        clear_group("g");
        assert!(!is_done("g", "s1", &ctx(false)));
        mark_done("g", "s1", &ctx(false)).unwrap();
        assert!(is_done("g", "s1", &ctx(false)));
        // A quick-shape completion does not satisfy a full-shape resume.
        assert!(!is_done("g", "s1", &ctx(true)));
        clear_group("g");
        assert!(!is_done("g", "s1", &ctx(false)));
    }
}

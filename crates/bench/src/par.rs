//! Bounded-width deterministic parallel map for sweep points.
//!
//! Every figure sweep is a list of independent simulations (one per rank
//! count × strategy). [`par_map`] fans them out over at most
//! `min(available cores, items)` scoped threads while returning results **in
//! input order**, so the emitted tables and CSVs are byte-identical to a
//! serial run — parallelism is purely a wall-clock optimisation and never an
//! observable one (enforced by `tests/determinism.rs`).
//!
//! Thread count resolution, most specific wins:
//! 1. a [`with_jobs`] override on the calling thread (used by tests),
//! 2. the process-wide setting from [`set_jobs`] (the `--jobs` flag),
//! 3. the `IOBTS_JOBS` environment variable,
//! 4. `std::thread::available_parallelism()`.

use simcore::Invariant;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide job count; 0 means "not set".
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override, innermost `with_jobs` wins.
    static LOCAL_JOBS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Sets the process-wide worker count (the `--jobs N` flag). `0` clears it.
pub fn set_jobs(n: usize) {
    GLOBAL_JOBS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the worker count forced to `n` on this thread.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = LOCAL_JOBS.with(|c| c.replace(Some(n)));
    // Restore on unwind too, so a panicking closure doesn't leak the override
    // into later tests on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_JOBS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Resolved worker count for the calling thread (always ≥ 1).
pub fn jobs() -> usize {
    if let Some(n) = LOCAL_JOBS.with(|c| c.get()) {
        return n.max(1);
    }
    let global = GLOBAL_JOBS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("IOBTS_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Renders a caught panic payload as the error string `par_try_map`
/// reports for that item.
fn payload_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Applies `f` to every item on a bounded scoped-thread pool, returning the
/// results **in input order**. Worker threads claim items through a shared
/// atomic cursor, so an expensive head item does not serialise the tail.
///
/// A panicking item is caught in its worker and reported as `Err` with the
/// panic message; the other items still complete and return — one poisoned
/// sweep point no longer sinks the whole sweep.
pub fn par_try_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_one = |item: &T| -> Result<R, String> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(payload_msg)
    };
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(run_one).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<R, String>>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, Result<R, String>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, run_one(&items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            // Workers catch item panics, so a join failure is a bug.
            for (i, r) in h.join().ok().invariant("par worker joins") {
                results[i] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.invariant("par slot filled"))
        .collect()
}

/// Infallible [`par_try_map`]: re-raises the first item panic (after every
/// item has finished) to preserve the original fail-fast contract.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_try_map(items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("par_map worker panicked: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = with_jobs(8, || {
            par_map(&items, |&i| {
                // Skew per-item cost so completion order differs from input
                // order if more than one worker actually runs.
                std::thread::sleep(std::time::Duration::from_micros(((50 - i) % 7) as u64 * 50));
                i * 2
            })
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..32).collect();
        let serial = with_jobs(1, || par_map(&items, |&i| i * i + 1));
        let parallel = with_jobs(4, || par_map(&items, |&i| i * i + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn with_jobs_restores_on_exit() {
        with_jobs(3, || assert_eq!(jobs(), 3));
        with_jobs(2, || {
            with_jobs(5, || assert_eq!(jobs(), 5));
            assert_eq!(jobs(), 2);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn try_map_isolates_panics() {
        let items: Vec<u32> = (0..8).collect();
        let out = with_jobs(4, || {
            par_try_map(&items, |&i| {
                if i == 3 {
                    panic!("bad item {i}");
                }
                i * 10
            })
        });
        assert_eq!(out[2], Ok(20));
        assert!(out[3].as_ref().unwrap_err().contains("bad item 3"));
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 7);
    }
}

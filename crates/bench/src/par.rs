//! Bounded-width deterministic parallel map for sweep points.
//!
//! Every figure sweep is a list of independent simulations (one per rank
//! count × strategy). [`par_map`] fans them out over at most
//! `min(available cores, items)` scoped threads while returning results **in
//! input order**, so the emitted tables and CSVs are byte-identical to a
//! serial run — parallelism is purely a wall-clock optimisation and never an
//! observable one (enforced by `tests/determinism.rs`).
//!
//! Thread count resolution, most specific wins:
//! 1. a [`with_jobs`] override on the calling thread (used by tests),
//! 2. the process-wide setting from [`set_jobs`] (the `--jobs` flag),
//! 3. the `IOBTS_JOBS` environment variable,
//! 4. `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide job count; 0 means "not set".
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override, innermost `with_jobs` wins.
    static LOCAL_JOBS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Sets the process-wide worker count (the `--jobs N` flag). `0` clears it.
pub fn set_jobs(n: usize) {
    GLOBAL_JOBS.store(n, Ordering::Relaxed);
}

/// Runs `f` with the worker count forced to `n` on this thread.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = LOCAL_JOBS.with(|c| c.replace(Some(n)));
    // Restore on unwind too, so a panicking closure doesn't leak the override
    // into later tests on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_JOBS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Resolved worker count for the calling thread (always ≥ 1).
pub fn jobs() -> usize {
    if let Some(n) = LOCAL_JOBS.with(|c| c.get()) {
        return n.max(1);
    }
    let global = GLOBAL_JOBS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("IOBTS_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a bounded scoped-thread pool, returning the
/// results **in input order**. Worker threads claim items through a shared
/// atomic cursor, so an expensive head item does not serialise the tail.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("par_map worker panicked") {
                results[i] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("par_map slot unfilled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = with_jobs(8, || {
            par_map(&items, |&i| {
                // Skew per-item cost so completion order differs from input
                // order if more than one worker actually runs.
                std::thread::sleep(std::time::Duration::from_micros(((50 - i) % 7) as u64 * 50));
                i * 2
            })
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..32).collect();
        let serial = with_jobs(1, || par_map(&items, |&i| i * i + 1));
        let parallel = with_jobs(4, || par_map(&items, |&i| i * i + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn with_jobs_restores_on_exit() {
        with_jobs(3, || assert_eq!(jobs(), 3));
        with_jobs(2, || {
            with_jobs(5, || assert_eq!(jobs(), 5));
            assert_eq!(jobs(), 2);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }
}

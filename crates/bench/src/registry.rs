//! The scenario registry: every paper figure, ablation and chaos plan as a
//! named, individually runnable entry, plus the shared CLI frontend the
//! `figures`/`ablations`/`chaos` bins delegate to.
//!
//! ```text
//! figures   --list                 # enumerate the figure scenarios
//! figures   --only 'fig1*'        # glob over names and aliases
//! ablations --only tol --only bb   # repeatable selection
//! chaos     --quick --jobs 4       # CI smoke at bounded width
//! ```

use std::collections::BTreeSet;

/// Run-time context handed to every scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioCtx {
    /// Paper-scale sweeps instead of the laptop-scale subsets.
    pub full: bool,
    /// CI smoke mode (chaos: fewer ranks, no `combined` plan).
    pub quick: bool,
    /// Print tables and write CSVs. The perf gate disables this to time
    /// pure scenario computation.
    pub emit: bool,
}

impl Default for ScenarioCtx {
    fn default() -> Self {
        ScenarioCtx {
            full: false,
            quick: false,
            emit: true,
        }
    }
}

/// The signature every registry entry implements.
pub type ScenarioFn = fn(&ScenarioCtx) -> Result<(), String>;

/// One named, individually runnable scenario.
pub struct Scenario {
    /// Canonical name (`fig07`, `ablation.tol`, `chaos.outage`, …).
    pub name: &'static str,
    /// Which bin runs it by default: `"figure"`, `"ablation"`, `"chaos"`.
    pub group: &'static str,
    /// Alternate names accepted by `--only` and positional selection.
    pub aliases: &'static [&'static str],
    /// One-line description for `--list`.
    pub about: &'static str,
    /// The entry point.
    pub run: ScenarioFn,
}

/// Every scenario the harness knows about, in presentation order.
pub const ALL: &[Scenario] = &[
    // ------------------------------------------------------- figures
    Scenario {
        name: "fig01_02",
        group: "figure",
        aliases: &["fig01", "fig02"],
        about: "motivation: 8-job cluster with/without limiting job 4",
        run: crate::figs::fig01_02,
    },
    Scenario {
        name: "fig03",
        group: "figure",
        aliases: &[],
        about: "rank-0 timeline: \u{394}t vs \u{394}t\u{1d43} per phase",
        run: crate::figs::fig03,
    },
    Scenario {
        name: "fig04",
        group: "figure",
        aliases: &[],
        about: "region sweep worked example (Eq. 3)",
        run: crate::figs::fig04,
    },
    Scenario {
        name: "fig05_06",
        group: "figure",
        aliases: &["fig05", "fig06"],
        about: "HACC-IO runtime and overhead decomposition vs ranks",
        run: crate::figs::fig05_06,
    },
    Scenario {
        name: "fig07",
        group: "figure",
        aliases: &[],
        about: "WaComM time distribution across ranks and strategies",
        run: crate::figs::fig07,
    },
    Scenario {
        name: "fig08",
        group: "figure",
        aliases: &[],
        about: "WaComM 96 ranks, no limit: T and B over time",
        run: crate::figs::fig08,
    },
    Scenario {
        name: "fig09",
        group: "figure",
        aliases: &[],
        about: "WaComM 96 ranks, up-only: T follows B_L",
        run: crate::figs::fig09,
    },
    Scenario {
        name: "fig10",
        group: "figure",
        aliases: &[],
        about: "WaComM at scale: up-only vs none (exploit & runtime)",
        run: crate::figs::fig10,
    },
    Scenario {
        name: "fig11",
        group: "figure",
        aliases: &[],
        about: "HACC-IO time distribution, four strategies",
        run: crate::figs::fig11,
    },
    Scenario {
        name: "fig12",
        group: "figure",
        aliases: &[],
        about: "modified HACC-IO benchmark structure (op schedule)",
        run: crate::figs::fig12,
    },
    Scenario {
        name: "fig13",
        group: "figure",
        aliases: &[],
        about: "HACC-IO at scale: T/B_L/B series per strategy",
        run: crate::figs::fig13,
    },
    Scenario {
        name: "fig14",
        group: "figure",
        aliases: &[],
        about: "HACC-IO direct strategy under PFS capacity noise",
        run: crate::figs::fig14,
    },
    // ----------------------------------------------------- ablations
    Scenario {
        name: "ablation.tol",
        group: "ablation",
        aliases: &["tol"],
        about: "direct-strategy tolerance sweep (risk vs exploitation)",
        run: crate::abl::tol_sweep,
    },
    Scenario {
        name: "ablation.subreq",
        group: "ablation",
        aliases: &["subreq"],
        about: "ADIO sub-request size (pacing granularity)",
        run: crate::abl::subreq_sweep,
    },
    Scenario {
        name: "ablation.semantics",
        group: "ablation",
        aliases: &["semantics"],
        about: "B window semantics: te-mode \u{d7} aggregation",
        run: crate::abl::semantics,
    },
    Scenario {
        name: "ablation.limitsync",
        group: "ablation",
        aliases: &["limitsync"],
        about: "pacing blocking I/O too (paper) vs async-only",
        run: crate::abl::limit_sync,
    },
    Scenario {
        name: "ablation.interference",
        group: "ablation",
        aliases: &["interference"],
        about: "I/O\u{2194}compute interference model (negative result)",
        run: crate::abl::interference,
    },
    Scenario {
        name: "ablation.mfu",
        group: "ablation",
        aliases: &["mfu"],
        about: "MFU-table strategy vs the paper's three",
        run: crate::abl::mfu,
    },
    Scenario {
        name: "ablation.bb",
        group: "ablation",
        aliases: &["bb"],
        about: "burst buffer for synchronous HACC-IO (future work)",
        run: crate::abl::burst_buffer,
    },
    // --------------------------------------------------------- chaos
    Scenario {
        name: "chaos.empty",
        group: "chaos",
        aliases: &["empty"],
        about: "empty plan reproduces the fault-free run bit-for-bit",
        run: |ctx| crate::chaosrun::run_plan("empty", ctx),
    },
    Scenario {
        name: "chaos.outage",
        group: "chaos",
        aliases: &["outage"],
        about: "hard PFS outage mid-run (both channels, factor 0)",
        run: |ctx| crate::chaosrun::run_plan("outage", ctx),
    },
    Scenario {
        name: "chaos.brownout",
        group: "chaos",
        aliases: &["brownout"],
        about: "long write-channel brownout (factor 0.4)",
        run: |ctx| crate::chaosrun::run_plan("brownout", ctx),
    },
    Scenario {
        name: "chaos.flaky",
        group: "chaos",
        aliases: &["flaky"],
        about: "seeded 5 % I/O error injection with retries",
        run: |ctx| crate::chaosrun::run_plan("flaky", ctx),
    },
    Scenario {
        name: "chaos.straggler",
        group: "chaos",
        aliases: &["straggler"],
        about: "one 1.5\u{d7} slow rank",
        run: |ctx| crate::chaosrun::run_plan("straggler", ctx),
    },
    Scenario {
        name: "chaos.cancel",
        group: "chaos",
        aliases: &["cancel"],
        about: "cancelled in-flight request on rank 0",
        run: |ctx| crate::chaosrun::run_plan("cancel", ctx),
    },
    Scenario {
        name: "chaos.combined",
        group: "chaos",
        aliases: &["combined"],
        about: "outage + errors + straggler combined (full sweep only)",
        run: |ctx| crate::chaosrun::run_plan("combined", ctx),
    },
];

/// Shell-style glob with `*` wildcards (no `?`/classes — the registry
/// names don't need them).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(p: &[u8], n: &[u8]) -> bool {
        match (p.first(), n.first()) {
            (None, None) => true,
            (Some(b'*'), _) => inner(&p[1..], n) || (!n.is_empty() && inner(p, &n[1..])),
            (Some(c), Some(d)) if c == d => inner(&p[1..], &n[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

impl Scenario {
    /// Whether `pattern` selects this scenario (by name or alias).
    pub fn matches(&self, pattern: &str) -> bool {
        glob_match(pattern, self.name) || self.aliases.iter().any(|a| glob_match(pattern, a))
    }
}

/// Scenarios of `group` selected by `patterns`; an empty pattern list (or
/// the literal `all`) selects the whole group. Unknown patterns are an
/// error so typos don't silently run nothing.
pub fn select(group: &str, patterns: &[String]) -> Result<Vec<&'static Scenario>, String> {
    let pool: Vec<&Scenario> = ALL.iter().filter(|s| s.group == group).collect();
    if patterns.is_empty() || patterns.iter().any(|p| p == "all") {
        return Ok(pool);
    }
    let mut unmatched: BTreeSet<&str> = patterns.iter().map(String::as_str).collect();
    let picked: Vec<&Scenario> = pool
        .iter()
        .filter(|s| {
            let hits: Vec<&str> = patterns
                .iter()
                .map(String::as_str)
                .filter(|p| s.matches(p))
                .collect();
            for h in &hits {
                unmatched.remove(h);
            }
            !hits.is_empty()
        })
        .copied()
        .collect();
    if !unmatched.is_empty() {
        let known: Vec<&str> = pool.iter().map(|s| s.name).collect();
        return Err(format!(
            "no {group} scenario matches {:?}; known: {}",
            unmatched.into_iter().collect::<Vec<_>>(),
            known.join(", ")
        ));
    }
    Ok(picked)
}

/// Prints the `--list` table for `group`.
pub fn print_list(group: &str) {
    println!("{:<22} {:<18} description", "name", "aliases");
    for s in ALL.iter().filter(|s| s.group == group) {
        println!("{:<22} {:<18} {}", s.name, s.aliases.join(","), s.about);
    }
}

/// The shared CLI frontend: parses `--list`, `--full`, `--quick`,
/// `--jobs N`, `--resume`, `--only <glob>` (repeatable) and positional
/// patterns, then runs the selection. Returns the process exit code.
///
/// Supervision: each scenario runs under `catch_unwind`, so one panicking
/// entry is reported and the rest of the sweep still runs. Completion is
/// checkpointed per entry through [`crate::manifest`]; `--resume` skips
/// entries already completed under the same `--full`/`--quick` shape and
/// regenerates byte-identical outputs for the rest. The
/// `IOBTS_FAIL_AFTER=<n>` hook kills the process (exit 137, as SIGKILL
/// would) after `n` completed scenarios — the deterministic
/// mid-sweep-crash used by the kill-and-resume CI smoke test.
pub fn cli_main(group: &'static str, bin: &str) -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ScenarioCtx::default();
    let mut patterns: Vec<String> = Vec::new();
    let mut resume = false;
    let bad_flag = |msg: &str| {
        eprintln!("error: {msg}");
        std::process::ExitCode::FAILURE
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                print_list(group);
                return std::process::ExitCode::SUCCESS;
            }
            "--full" => ctx.full = true,
            "--quick" => ctx.quick = true,
            "--resume" => resume = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return bad_flag("--jobs needs a positive integer");
                };
                crate::par::set_jobs(n.max(1));
            }
            "--only" => {
                let Some(g) = it.next() else {
                    return bad_flag("--only needs a glob pattern");
                };
                patterns.push(g.clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: {bin} [--list] [--full] [--quick] [--jobs N] \
                     [--resume] [--only <glob>]... [pattern]..."
                );
                return std::process::ExitCode::SUCCESS;
            }
            other => {
                if let Some(v) = other.strip_prefix("--jobs=") {
                    let Ok(n) = v.parse::<usize>() else {
                        return bad_flag("--jobs needs an integer");
                    };
                    crate::par::set_jobs(n.max(1));
                } else if let Some(v) = other.strip_prefix("--only=") {
                    patterns.push(v.to_string());
                } else if other.starts_with("--") {
                    return bad_flag(&format!("unknown flag `{other}`"));
                } else {
                    patterns.push(other.to_string());
                }
            }
        }
    }

    let selection = match select(group, &patterns) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    if !resume {
        // Fresh sweep: stale completion markers must not mask re-runs.
        crate::manifest::clear_group(group);
    }
    let fail_after: Option<usize> = std::env::var("IOBTS_FAIL_AFTER")
        .ok()
        .and_then(|v| v.trim().parse().ok());

    let t0 = std::time::Instant::now();
    let mut failed: Vec<(&str, String)> = Vec::new();
    let mut skipped = 0usize;
    let mut completed = 0usize;
    for s in &selection {
        if resume && crate::manifest::is_done(group, s.name, &ctx) {
            eprintln!("SKIP {} (already complete)", s.name);
            skipped += 1;
            continue;
        }
        // One panicking scenario must not sink the sweep: catch it, report
        // it as a failure, move on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (s.run)(&ctx)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|m| (*m).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".into());
                Err(format!("panicked: {msg}"))
            });
        match outcome {
            Ok(()) => {
                // Checkpoint only after the scenario's outputs are final.
                if let Err(e) = crate::manifest::mark_done(group, s.name, &ctx) {
                    eprintln!("warning: cannot record completion of {}: {e}", s.name);
                }
                completed += 1;
                if fail_after == Some(completed) {
                    // Deterministic mid-sweep crash (CI kill-and-resume
                    // smoke): die like SIGKILL would, without unwinding.
                    eprintln!("[{bin}: IOBTS_FAIL_AFTER={completed} tripped, aborting]");
                    std::process::exit(137);
                }
            }
            Err(e) => {
                eprintln!("FAILED {}: {e}", s.name);
                failed.push((s.name, e));
            }
        }
    }
    eprintln!(
        "\n[{bin}: {} scenario(s), {} skipped, {} failure(s) in {:.1} s]",
        selection.len(),
        skipped,
        failed.len(),
        t0.elapsed().as_secs_f64()
    );
    if failed.is_empty() {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globbing() {
        assert!(glob_match("fig1*", "fig11"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("chaos.*", "chaos.outage"));
        assert!(!glob_match("fig0?", "fig03"));
        assert!(!glob_match("fig1*", "fig03"));
    }

    #[test]
    fn registry_is_well_formed() {
        assert!(ALL.len() >= 10, "registry enumerates {} < 10", ALL.len());
        let mut names = BTreeSet::new();
        for s in ALL {
            assert!(names.insert(s.name), "duplicate name {}", s.name);
            assert!(["figure", "ablation", "chaos"].contains(&s.group));
        }
        // Aliases resolve: `fig05` picks the merged fig05_06 entry.
        let sel = select("figure", &["fig05".to_string()]).unwrap();
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].name, "fig05_06");
    }

    #[test]
    fn select_rejects_typos() {
        assert!(select("figure", &["fig99".to_string()]).is_err());
        assert!(select("chaos", &["chaos.*".to_string()]).unwrap().len() == 7);
    }
}

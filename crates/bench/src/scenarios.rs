//! The per-figure scenario computations. Each function reproduces one
//! figure of the paper's evaluation and returns its series/rows; the
//! registry entries ([`crate::registry`]) print and CSV-dump them, the
//! criterion benches time them at reduced scale. Scale notes live in
//! EXPERIMENTS.md.
//!
//! Every run goes through the canonical [`Session`] pipeline — workloads
//! are [`HaccIo`]/[`Wacomm`] instances, configs are built through the
//! [`ExpConfig`] builder surface.

use crate::csv::CsvRow;
use clustersim::{motivation_scenario, Cluster, ClusterResult};
use hpcwl::hacc::HaccConfig;
use hpcwl::wacomm::WacommConfig;
use iobts::session::{ExpConfig, HaccIo, RunOutput, Session, Wacomm};
use simcore::Noise;
use tmio::Strategy;

/// Runs the modified HACC-IO benchmark through a [`Session`].
fn hacc_session(cfg: ExpConfig, hacc: HaccConfig) -> RunOutput {
    Session::builder(cfg)
        .workload(HaccIo::new(hacc))
        .build()
        .run()
}

/// Runs the WaComM-like workload through a [`Session`].
fn wacomm_session(cfg: ExpConfig, wc: WacommConfig) -> RunOutput {
    Session::builder(cfg)
        .workload(Wacomm::new(wc))
        .build()
        .run()
}

/// Fig. 1/2 output: both cluster runs.
pub struct MotivationOut {
    /// Without limiting.
    pub free: ClusterResult,
    /// Job 4 capped at its required bandwidth during contention.
    pub limited: ClusterResult,
}

/// Figs. 1–2: the batch-simulator motivation study.
pub fn motivation() -> MotivationOut {
    let (cfg, jobs_free) = motivation_scenario(false, 1.0);
    let (_, jobs_limited) = motivation_scenario(true, 1.0);
    MotivationOut {
        free: Cluster::new(cfg, jobs_free).run(),
        limited: Cluster::new(cfg, jobs_limited).run(),
    }
}

/// Fig. 3: a single-rank trace exposing Δt (submit → wait) vs Δtᵃ
/// (submit → completion) per phase.
pub fn rank_timeline() -> RunOutput {
    let hacc = HaccConfig {
        particles_per_rank: 200_000,
        loops: 4,
        ..Default::default()
    };
    hacc_session(ExpConfig::new(1, Strategy::None).exact(), hacc)
}

/// Fig. 5/6 rows: one entry per rank count and strategy.
pub struct OverheadRow {
    /// Rank count.
    pub ranks: usize,
    /// Strategy name ("direct" run 0 / "none" run 1).
    pub run: &'static str,
    /// Application time (s).
    pub app: f64,
    /// Peri-runtime overhead (s, summed over ranks).
    pub peri: f64,
    /// Post-runtime overhead (s).
    pub post: f64,
    /// Total (app + post).
    pub total: f64,
    /// Visible I/O percentage of total rank-time.
    pub visible_pct: f64,
    /// Compute percentage.
    pub compute_pct: f64,
}

impl CsvRow for OverheadRow {
    const HEADER: &'static str = "ranks,run,app_s,peri_s,post_s,total_s,visible_io_pct,compute_pct";

    fn row(&self) -> String {
        format!(
            "{},{},{:.4},{:.6},{:.4},{:.4},{:.2},{:.2}",
            self.ranks,
            self.run,
            self.app,
            self.peri,
            self.post,
            self.total,
            self.visible_pct,
            self.compute_pct
        )
    }
}

/// Figs. 5 & 6: HACC-IO runtime and overhead decomposition vs rank count,
/// with the direct strategy (run 0) and without limiting (run 1).
pub fn hacc_overheads(ranks: &[usize], particles: u64) -> Vec<OverheadRow> {
    let points: Vec<(usize, &'static str, Strategy)> = ranks
        .iter()
        .flat_map(|&n| {
            [
                (n, "direct", Strategy::Direct { tol: 1.1 }),
                (n, "none", Strategy::None),
            ]
        })
        .collect();
    crate::par::par_map(&points, |&(n, run, strategy)| {
        let cfg = ExpConfig::new(n, strategy).with_record_pfs(false);
        let hacc = HaccConfig {
            particles_per_rank: particles,
            ..Default::default()
        };
        let out = hacc_session(cfg, hacc);
        let d = out.report.decomposition();
        let denom = d.total + out.report.post_overhead * n as f64;
        OverheadRow {
            ranks: n,
            run,
            app: out.app_time(),
            peri: out.report.peri_overhead,
            post: out.report.post_overhead,
            total: out.total_time(),
            visible_pct: 100.0 * d.visible_io() / denom.max(1e-12),
            compute_pct: 100.0 * (d.compute_io_free + d.exploit()) / denom.max(1e-12),
        }
    })
}

/// One stacked bar of Figs. 7/11.
pub struct DistRow {
    /// Rank count.
    pub ranks: usize,
    /// Run index within the rank group.
    pub run: usize,
    /// Strategy name.
    pub strategy: &'static str,
    /// Percentages: sync write, sync read, async write lost, async read
    /// lost, async write exploit, async read exploit, compute (I/O free).
    pub pct: [f64; 7],
    /// Application runtime (s).
    pub app: f64,
}

impl CsvRow for DistRow {
    const HEADER: &'static str =
        "ranks,run,strategy,sync_w,sync_r,lost_w,lost_r,expl_w,expl_r,compute,app_s";

    fn row(&self) -> String {
        format!(
            "{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.3}",
            self.ranks,
            self.run,
            self.strategy,
            self.pct[0],
            self.pct[1],
            self.pct[2],
            self.pct[3],
            self.pct[4],
            self.pct[5],
            self.pct[6],
            self.app
        )
    }
}

/// Fig. 7: WaComM time distribution across ranks; runs 0-1 direct (tol 2),
/// 2-3 up-only (tol 1.1), 4-5 none.
pub fn wacomm_distribution(ranks: &[usize]) -> Vec<DistRow> {
    let runs: [(&'static str, Strategy); 6] = [
        ("direct", Strategy::Direct { tol: 2.0 }),
        ("direct", Strategy::Direct { tol: 2.0 }),
        ("up-only", Strategy::UpOnly { tol: 1.1 }),
        ("up-only", Strategy::UpOnly { tol: 1.1 }),
        ("none", Strategy::None),
        ("none", Strategy::None),
    ];
    let wc = WacommConfig::default();
    let points: Vec<(usize, usize, &'static str, Strategy)> = ranks
        .iter()
        .flat_map(|&n| {
            runs.iter()
                .enumerate()
                .map(move |(i, &(name, strategy))| (n, i, name, strategy))
        })
        .collect();
    crate::par::par_map(&points, |&(n, i, name, strategy)| {
        let cfg = ExpConfig::new(n, strategy)
            .with_seed(2024 + i as u64) // repeated runs differ by seed
            .with_record_pfs(false);
        let out = wacomm_session(cfg, wc);
        let d = out.report.decomposition();
        DistRow {
            ranks: n,
            run: i,
            strategy: name,
            pct: d.percentages(),
            app: out.app_time(),
        }
    })
}

/// Fig. 11: HACC-IO time distribution; runs 0-1 direct, 2-3 up-only,
/// 4-5 adaptive, 6-7 none (all tol = 1.1).
pub fn hacc_distribution(ranks: &[usize], particles: u64) -> Vec<DistRow> {
    let runs: [(&'static str, Strategy); 8] = [
        ("direct", Strategy::Direct { tol: 1.1 }),
        ("direct", Strategy::Direct { tol: 1.1 }),
        ("up-only", Strategy::UpOnly { tol: 1.1 }),
        ("up-only", Strategy::UpOnly { tol: 1.1 }),
        (
            "adaptive",
            Strategy::Adaptive {
                tol: 1.1,
                tol_i: 0.5,
            },
        ),
        (
            "adaptive",
            Strategy::Adaptive {
                tol: 1.1,
                tol_i: 0.5,
            },
        ),
        ("none", Strategy::None),
        ("none", Strategy::None),
    ];
    let hacc = HaccConfig {
        particles_per_rank: particles,
        ..Default::default()
    };
    let points: Vec<(usize, usize, &'static str, Strategy)> = ranks
        .iter()
        .flat_map(|&n| {
            runs.iter()
                .enumerate()
                .map(move |(i, &(name, strategy))| (n, i, name, strategy))
        })
        .collect();
    crate::par::par_map(&points, |&(n, i, name, strategy)| {
        let cfg = ExpConfig::new(n, strategy)
            .with_seed(2024 + i as u64)
            .with_record_pfs(false);
        let out = hacc_session(cfg, hacc);
        let d = out.report.decomposition();
        DistRow {
            ranks: n,
            run: i,
            strategy: name,
            pct: d.percentages(),
            app: out.app_time(),
        }
    })
}

/// Figs. 8/9/10: one WaComM run with full series recording.
pub fn wacomm_series(ranks: usize, strategy: Strategy, interference: f64) -> RunOutput {
    let cfg = ExpConfig::new(ranks, strategy).with_interference(interference);
    wacomm_session(cfg, WacommConfig::default())
}

/// Figs. 13/14: one HACC-IO run with full series recording; optional PFS
/// capacity noise reproduces the I/O-variability of Fig. 14.
pub fn hacc_series(
    ranks: usize,
    particles: u64,
    strategy: Strategy,
    capacity_noise: bool,
) -> RunOutput {
    let mut cfg = ExpConfig::new(ranks, strategy);
    if capacity_noise {
        // Occasional deep capacity dips: a competing job's burst steals most
        // of the PFS, so even limit-paced transfers miss their windows.
        cfg = cfg.with_capacity_noise(mpisim::CapacityNoiseCfg {
            period: 1.5,
            noise: Noise::Spike {
                prob: 0.25,
                factor: 0.004,
            },
        });
    }
    let hacc = HaccConfig {
        particles_per_rank: particles,
        ..Default::default()
    };
    hacc_session(cfg, hacc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_runs_and_helps() {
        let out = motivation();
        assert_eq!(out.free.jobs.len(), 8);
        // Aggregate sync-job runtime must improve with the limit.
        let sum = |r: &ClusterResult| -> f64 {
            r.jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 4)
                .map(|(_, j)| j.runtime())
                .sum()
        };
        assert!(sum(&out.limited) < sum(&out.free));
    }

    #[test]
    fn rank_timeline_has_phases() {
        let out = rank_timeline();
        assert_eq!(out.report.phases.iter().filter(|p| p.rank == 0).count(), 8);
    }

    #[test]
    fn hacc_overhead_rows_cover_sweep() {
        let rows = hacc_overheads(&[1, 4], 20_000);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.total >= r.app);
            assert!(r.peri < 0.01 * r.app * r.ranks as f64, "peri small");
        }
    }

    #[test]
    fn distribution_percentages_sum_to_100() {
        let rows = wacomm_distribution(&[24]);
        assert_eq!(rows.len(), 6);
        for r in rows {
            let s: f64 = r.pct.iter().sum();
            assert!((s - 100.0).abs() < 1e-6, "{s}");
        }
    }
}

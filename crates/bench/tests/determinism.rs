//! Parallel sweep execution must be purely a wall-clock optimisation: the
//! emitted CSV rows have to be byte-identical to a forced single-thread run,
//! at any worker count, on every code path the `figures` binary exercises
//! through `par_map`.

use bench::csv::rows;
use bench::par::with_jobs;
use bench::scenarios;

#[test]
fn distribution_rows_identical_serial_vs_parallel() {
    let ranks = [24usize, 48];
    let serial = with_jobs(1, || rows(&scenarios::wacomm_distribution(&ranks)));
    let parallel = with_jobs(4, || rows(&scenarios::wacomm_distribution(&ranks)));
    assert_eq!(
        serial.join("\n"),
        parallel.join("\n"),
        "wacomm distribution CSV must not depend on worker count"
    );
}

#[test]
fn overhead_rows_identical_serial_vs_parallel() {
    let ranks = [1usize, 4, 16];
    let serial = with_jobs(1, || rows(&scenarios::hacc_overheads(&ranks, 20_000)));
    let parallel = with_jobs(3, || rows(&scenarios::hacc_overheads(&ranks, 20_000)));
    assert_eq!(
        serial.join("\n"),
        parallel.join("\n"),
        "hacc overhead CSV must not depend on worker count"
    );
}

#[test]
fn hacc_distribution_rows_identical_serial_vs_parallel() {
    let ranks = [1usize, 4];
    let serial = with_jobs(1, || rows(&scenarios::hacc_distribution(&ranks, 20_000)));
    let parallel = with_jobs(8, || rows(&scenarios::hacc_distribution(&ranks, 20_000)));
    assert_eq!(
        serial.join("\n"),
        parallel.join("\n"),
        "hacc distribution CSV must not depend on worker count"
    );
}

//! Golden-file test: the scenario registry must regenerate the checked-in
//! figure CSVs (`results/`) byte-for-byte. The default run covers the
//! cheap, scale-independent figures (fig01–fig04, 5 CSVs); set
//! `IOBTS_GOLDEN_FULL=1` to regenerate and compare every figure and
//! ablation CSV (release build recommended — the sweeps are slow in
//! debug).

use bench::registry::{select, ScenarioCtx};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn registry_regenerates_golden_csvs() {
    let tmp = std::env::temp_dir().join(format!("iobts-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    // This is the only test in this binary, so the process-global results
    // override cannot race another test.
    std::env::set_var("IOBTS_RESULTS_DIR", &tmp);

    let full = std::env::var("IOBTS_GOLDEN_FULL").is_ok();
    let ctx = ScenarioCtx::default();
    let figure_pats: Vec<String> = if full {
        Vec::new() // empty selection = the whole group
    } else {
        ["fig01_02", "fig03", "fig04"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    for s in select("figure", &figure_pats).unwrap() {
        (s.run)(&ctx).unwrap_or_else(|e| panic!("{} failed: {e}", s.name));
    }
    if full {
        for s in select("ablation", &[]).unwrap() {
            (s.run)(&ctx).unwrap_or_else(|e| panic!("{} failed: {e}", s.name));
        }
    }

    let mut compared = 0usize;
    for entry in std::fs::read_dir(&tmp).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let name = p.file_name().unwrap().to_str().unwrap().to_string();
        let fresh = std::fs::read(&p).unwrap();
        let golden = std::fs::read(golden_dir().join(&name))
            .unwrap_or_else(|e| panic!("no golden file for {name}: {e}"));
        assert_eq!(
            fresh, golden,
            "{name} drifted from the checked-in golden CSV — the registry \
             pipeline no longer reproduces results/ byte-for-byte"
        );
        compared += 1;
    }
    assert!(compared >= 5, "only {compared} CSVs compared");
    let _ = std::fs::remove_dir_all(&tmp);
}

//! Crash-safe sweeps end to end: a run killed mid-sweep leaves only whole
//! outputs behind, and `--resume` completes the remainder with CSVs that
//! are byte-identical to an uninterrupted run.
//!
//! The kill is deterministic: `IOBTS_FAIL_AFTER=n` makes the registry
//! exit with code 137 (the SIGKILL code) after `n` completed scenarios —
//! a hermetic stand-in for yanking the process at an arbitrary point.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

const SCENARIOS: [&str; 2] = ["fig03", "fig04"];

fn figures(
    results_dir: &Path,
    extra_args: &[&str],
    fail_after: Option<u32>,
) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_figures"));
    for s in SCENARIOS {
        cmd.args(["--only", s]);
    }
    cmd.args(extra_args);
    cmd.env("IOBTS_RESULTS_DIR", results_dir);
    match fail_after {
        Some(n) => cmd.env("IOBTS_FAIL_AFTER", n.to_string()),
        None => cmd.env_remove("IOBTS_FAIL_AFTER"),
    };
    cmd.output().expect("spawning the figures bin")
}

/// All CSV bytes under `dir`, keyed by file name.
fn csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for e in std::fs::read_dir(dir)
        .expect("results dir exists")
        .flatten()
    {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") {
            out.insert(name, std::fs::read(e.path()).expect("readable csv"));
        }
    }
    out
}

#[test]
fn killed_sweep_resumes_byte_identical() {
    let base = std::env::temp_dir().join(format!("iobts-resume-{}", std::process::id()));
    let clean = base.join("clean");
    let crashed = base.join("crashed");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&clean).expect("clean dir");
    std::fs::create_dir_all(&crashed).expect("crashed dir");

    // Reference: the uninterrupted sweep.
    let out = figures(&clean, &[], None);
    assert!(out.status.success(), "clean run failed: {out:?}");
    let reference = csvs(&clean);
    assert!(!reference.is_empty(), "clean run produced no CSVs");

    // Kill after the first completed scenario.
    let out = figures(&crashed, &[], Some(1));
    assert_eq!(
        out.status.code(),
        Some(137),
        "expected the deterministic mid-sweep kill: {out:?}"
    );
    let partial = csvs(&crashed);
    assert!(
        partial.len() < reference.len(),
        "the killed run must be missing outputs (got {partial:?})"
    );
    // No temp-file debris: everything present is whole and final.
    for (name, bytes) in &partial {
        assert_eq!(bytes, &reference[name], "{name} differs after the kill");
    }

    // Resume: skips the finished entry, completes the rest.
    let out = figures(&crashed, &["--resume"], None);
    assert!(out.status.success(), "resume run failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("SKIP"),
        "resume must skip the completed entry: {stderr}"
    );
    assert_eq!(csvs(&crashed), reference, "resumed outputs differ");

    // A resume of a finished sweep is a no-op that skips everything.
    let out = figures(&crashed, &["--resume"], None);
    assert!(out.status.success(), "idempotent resume failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.matches("SKIP").count(),
        SCENARIOS.len(),
        "all entries skip on a second resume: {stderr}"
    );
    assert_eq!(csvs(&crashed), reference);

    // A plain re-run (no --resume) clears the manifests and recomputes.
    let out = figures(&crashed, &[], None);
    assert!(out.status.success(), "fresh re-run failed: {out:?}");
    assert!(!String::from_utf8_lossy(&out.stderr).contains("SKIP"));

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn resume_reruns_when_the_run_shape_changes() {
    let base = std::env::temp_dir().join(format!("iobts-resume-shape-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("results dir");

    let out = figures(&base, &[], None);
    assert!(out.status.success(), "{out:?}");
    // Same entries under --full: the quick-shape manifests must not mask
    // the paper-scale recompute.
    let out = figures(&base, &["--resume", "--full"], None);
    assert!(out.status.success(), "{out:?}");
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("SKIP"),
        "a shape change must invalidate the manifests"
    );

    let _ = std::fs::remove_dir_all(&base);
}

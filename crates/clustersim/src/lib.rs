//! # clustersim — a batch-system simulator (ElastiSim substitute)
//!
//! Reproduces the paper's motivation study (Figs. 1–2): a production-like
//! cluster (Lichtenberg settings: 500 nodes × 96 cores, 120 GB/s PFS) runs
//! several jobs that mimic HACC-IO's alternating compute/write phases. The
//! PFS bandwidth is distributed fairly **by node count** (each job's flow is
//! weighted with its allocation size). One job performs its I/O
//! asynchronously; capping that job at its *required bandwidth* — but only
//! while other jobs contend for the PFS — frees bandwidth for the
//! synchronous jobs without (significantly) slowing the async job.
//!
//! The simulator is a small but real batch system: FCFS node allocation,
//! job queueing, per-job phase machines, and flow-level PFS contention via
//! [`pfsim`].

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use pfsim::{Channel, FlowId, FlowSpec, MeterId, Pfs, PfsConfig};
use serde::{Deserialize, Serialize};
use simcore::{EventKey, EventQueue, Invariant, SimTime, StepSeries};
use std::collections::HashMap;

/// Node-allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Strict first-come-first-served: the queue head blocks everyone.
    Fcfs,
    /// EASY backfill: while the head waits for its reservation, later jobs
    /// may run if they fit now and their walltime ends before the head's
    /// reserved start.
    Backfill,
}

/// Cluster-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of compute nodes (paper: 500).
    pub nodes: usize,
    /// Cores per node (paper: 96) — bookkeeping only.
    pub cores_per_node: usize,
    /// The shared PFS (paper: 120 GB/s).
    pub pfs: PfsConfig,
    /// Node-allocation policy.
    pub scheduler: Scheduler,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 500,
            cores_per_node: 96,
            pfs: PfsConfig {
                write_capacity: 120e9,
                read_capacity: 120e9,
            },
            scheduler: Scheduler::Fcfs,
        }
    }
}

/// One phase of a job profile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Pure computation for the given seconds.
    Compute(f64),
    /// Write the given aggregate bytes to the PFS.
    Write(f64),
    /// Read the given aggregate bytes from the PFS.
    Read(f64),
}

/// How a job performs its I/O phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoStyle {
    /// I/O blocks the job (the common case).
    Sync,
    /// I/O overlaps the following compute phase; the job blocks only when
    /// the next I/O phase starts before the previous transfer finished.
    Async,
}

/// A job submission.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display name.
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Submission time, seconds.
    pub submit: f64,
    /// Phase list.
    pub profile: Vec<JobPhase>,
    /// Sync or async I/O.
    pub style: IoStyle,
    /// If set, the job's transfers are capped at this rate (bytes/s) *while
    /// other jobs are using the PFS* (limiting during contention only).
    pub contention_cap: Option<f64>,
    /// Requested walltime, seconds (used by the backfill scheduler; a
    /// generous default is derived from the profile when built through
    /// [`JobSpec::hacc_like`]).
    pub walltime: f64,
}

impl JobSpec {
    /// A HACC-IO-mimicking job: `loops` × (compute, write burst).
    pub fn hacc_like(
        name: &str,
        nodes: usize,
        submit: f64,
        loops: usize,
        compute_seconds: f64,
        write_bytes: f64,
        style: IoStyle,
    ) -> Self {
        let mut profile = Vec::with_capacity(loops * 2);
        for _ in 0..loops {
            profile.push(JobPhase::Compute(compute_seconds));
            profile.push(JobPhase::Write(write_bytes));
        }
        // Requested walltime: compute plus I/O at half the by-node fair
        // share of a default cluster, padded 30 % — the usual over-request.
        let io_guess: f64 = profile
            .iter()
            .map(|p| match p {
                JobPhase::Write(b) | JobPhase::Read(b) => b / (120e9 * nodes as f64 / 500.0 / 2.0),
                JobPhase::Compute(_) => 0.0,
            })
            .sum();
        let compute: f64 = profile
            .iter()
            .map(|p| match p {
                JobPhase::Compute(d) => *d,
                _ => 0.0,
            })
            .sum();
        JobSpec {
            name: name.to_string(),
            nodes,
            submit,
            profile,
            style,
            contention_cap: None,
            walltime: 1.3 * (compute + io_guess),
        }
    }

    /// The TMIO-style required bandwidth of this profile: each I/O phase
    /// must fit into the *following* compute window (the async overlap);
    /// the maximum over phases is what the job needs to hide its I/O.
    pub fn required_bandwidth(&self) -> f64 {
        let mut best: f64 = 0.0;
        for (i, ph) in self.profile.iter().enumerate() {
            if let JobPhase::Write(bytes) | JobPhase::Read(bytes) = ph {
                if let Some(JobPhase::Compute(window)) = self.profile.get(i + 1) {
                    best = best.max(bytes / window.max(1e-9));
                }
            }
        }
        best
    }
}

/// Result of one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// Nodes used.
    pub nodes: usize,
    /// Time the job started executing.
    pub start: f64,
    /// Time the job finished.
    pub end: f64,
}

impl JobResult {
    /// Wall-clock runtime.
    pub fn runtime(&self) -> f64 {
        self.end - self.start
    }
}

/// Result of a cluster simulation.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Per-job results in submission order.
    pub jobs: Vec<JobResult>,
    /// Aggregate PFS write-rate series (Fig. 2).
    pub total_bandwidth: StepSeries,
    /// Per-job transfer-rate series.
    pub job_bandwidth: Vec<StepSeries>,
    /// Makespan of the whole workload.
    pub makespan: f64,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum JobState {
    Queued,
    Running,
    Done,
}

struct Job {
    spec: JobSpec,
    state: JobState,
    phase: usize,
    start: SimTime,
    end: SimTime,
    meter: MeterId,
    /// In-flight async transfer, if any.
    inflight: Option<FlowId>,
    /// Blocked waiting for this flow (sync I/O, or async back-pressure).
    blocked_on: Option<FlowId>,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// A job reached its submit time (index kept for debug printing).
    Arrive(#[allow(dead_code)] usize),
    ComputeDone(usize),
    PfsWake,
}

/// The batch simulator.
pub struct Cluster {
    cfg: ClusterConfig,
    queue: EventQueue<Event>,
    pfs: Pfs,
    pfs_wake: Option<EventKey>,
    jobs: Vec<Job>,
    flow_job: HashMap<FlowId, usize>,
    free_nodes: usize,
    wait_queue: Vec<usize>,
}

impl Cluster {
    /// Creates a cluster with the given jobs submitted.
    pub fn new(cfg: ClusterConfig, specs: Vec<JobSpec>) -> Self {
        let mut pfs = Pfs::new(cfg.pfs);
        let mut queue = EventQueue::new();
        let jobs: Vec<Job> = specs
            .into_iter()
            .map(|spec| Job {
                spec,
                state: JobState::Queued,
                phase: 0,
                start: SimTime::ZERO,
                end: SimTime::ZERO,
                meter: pfs.meter(),
                inflight: None,
                blocked_on: None,
            })
            .collect();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .spec
                .submit
                .partial_cmp(&jobs[b].spec.submit)
                .invariant("NaN-free")
        });
        for i in order {
            queue.schedule(SimTime::from_secs(jobs[i].spec.submit), Event::Arrive(i));
        }
        let free_nodes = cfg.nodes;
        Cluster {
            cfg,
            queue,
            pfs,
            pfs_wake: None,
            jobs,
            flow_job: HashMap::new(),
            free_nodes,
            wait_queue: Vec::new(),
        }
    }

    /// Runs to completion.
    pub fn run(mut self) -> ClusterResult {
        while self.jobs.iter().any(|j| j.state != JobState::Done) {
            let Some((_, ev)) = self.queue.pop() else {
                panic!("cluster deadlock: jobs pending but no events");
            };
            match ev {
                Event::Arrive(_) => self.try_schedule(),
                Event::ComputeDone(i) => self.advance_job(i),
                Event::PfsWake => {
                    self.pfs_wake = None;
                    self.drain_pfs();
                    self.resync_pfs();
                }
            }
        }
        let makespan = self
            .jobs
            .iter()
            .map(|j| j.end.as_secs())
            .fold(0.0, f64::max);
        let job_bandwidth = self
            .jobs
            .iter()
            .map(|j| self.pfs.meter_series(j.meter).clone())
            .collect();
        ClusterResult {
            jobs: self
                .jobs
                .iter()
                .map(|j| JobResult {
                    name: j.spec.name.clone(),
                    nodes: j.spec.nodes,
                    start: j.start.as_secs(),
                    end: j.end.as_secs(),
                })
                .collect(),
            total_bandwidth: self.pfs.total_series(Channel::Write).clone(),
            job_bandwidth,
            makespan,
        }
    }

    /// Enqueue newly arrived jobs, then start jobs per the configured
    /// policy: strict FCFS, optionally with EASY backfill behind a blocked
    /// queue head.
    fn try_schedule(&mut self) {
        let now = self.queue.now();
        let mut newly: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| {
                self.jobs[i].state == JobState::Queued
                    && self.jobs[i].spec.submit <= now.as_secs() + 1e-12
                    && !self.wait_queue.contains(&i)
            })
            .collect();
        newly.sort_by(|&a, &b| {
            self.jobs[a]
                .spec
                .submit
                .partial_cmp(&self.jobs[b].spec.submit)
                .invariant("NaN-free")
        });
        self.wait_queue.append(&mut newly);
        while let Some(&i) = self.wait_queue.first() {
            if self.jobs[i].spec.nodes > self.free_nodes {
                break;
            }
            self.wait_queue.remove(0);
            self.start_job(i, now);
        }
        if self.cfg.scheduler == Scheduler::Backfill && !self.wait_queue.is_empty() {
            self.backfill(now);
        }
    }

    fn start_job(&mut self, i: usize, now: SimTime) {
        self.free_nodes -= self.jobs[i].spec.nodes;
        self.jobs[i].state = JobState::Running;
        self.jobs[i].start = now;
        self.advance_job(i);
    }

    /// EASY backfill: reserve the earliest start for the blocked head from
    /// the running jobs' walltime horizons, then start any later queued job
    /// that fits now and is promised to finish before that reservation.
    fn backfill(&mut self, now: SimTime) {
        let head = self.wait_queue[0];
        let head_nodes = self.jobs[head].spec.nodes;
        // Running jobs' (expected end, nodes), by walltime promise.
        let mut ends: Vec<(f64, usize)> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .map(|j| (j.start.as_secs() + j.spec.walltime, j.spec.nodes))
            .collect();
        ends.sort_by(|a, b| a.0.partial_cmp(&b.0).invariant("NaN-free"));
        let mut free = self.free_nodes;
        let mut reservation = now.as_secs();
        for (end, nodes) in ends {
            if free >= head_nodes {
                break;
            }
            free += nodes;
            reservation = end;
        }
        // Start any queued non-head job that fits *now* and whose walltime
        // ends before the head's reserved start.
        let mut k = 1;
        while k < self.wait_queue.len() {
            let j = self.wait_queue[k];
            let spec_nodes = self.jobs[j].spec.nodes;
            let promised_end = now.as_secs() + self.jobs[j].spec.walltime;
            if spec_nodes <= self.free_nodes && promised_end <= reservation + 1e-9 {
                self.wait_queue.remove(k);
                self.start_job(j, now);
            } else {
                k += 1;
            }
        }
    }

    /// Moves job `i` through its phase machine until it blocks or finishes.
    fn advance_job(&mut self, i: usize) {
        loop {
            let now = self.queue.now();
            if self.jobs[i].blocked_on.is_some() {
                return;
            }
            let phase = self.jobs[i].phase;
            let Some(&ph) = self.jobs[i].spec.profile.get(phase) else {
                // Profile exhausted; async jobs must drain their last flow.
                if let Some(f) = self.jobs[i].inflight {
                    self.jobs[i].blocked_on = Some(f);
                    return;
                }
                self.finish_job(i);
                return;
            };
            match ph {
                JobPhase::Compute(d) => {
                    self.jobs[i].phase += 1;
                    self.queue.schedule_in(d, Event::ComputeDone(i));
                    return;
                }
                JobPhase::Write(bytes) | JobPhase::Read(bytes) => {
                    // Async back-pressure: wait for the previous transfer
                    // before issuing the next one.
                    if let Some(f) = self.jobs[i].inflight {
                        self.jobs[i].blocked_on = Some(f);
                        return;
                    }
                    self.jobs[i].phase += 1;
                    let channel = match ph {
                        JobPhase::Write(_) => Channel::Write,
                        _ => Channel::Read,
                    };
                    self.drain_pfs();
                    let flow = self.pfs.submit(
                        now,
                        channel,
                        FlowSpec {
                            bytes,
                            weight: self.jobs[i].spec.nodes as f64,
                            cap: None,
                            meter: Some(self.jobs[i].meter),
                        },
                    );
                    self.flow_job.insert(flow, i);
                    match self.jobs[i].spec.style {
                        IoStyle::Sync => {
                            self.jobs[i].blocked_on = Some(flow);
                            self.update_contention_caps();
                            self.resync_pfs();
                            return;
                        }
                        IoStyle::Async => {
                            self.jobs[i].inflight = Some(flow);
                            self.update_contention_caps();
                            self.resync_pfs();
                            // continue with the next phase immediately
                        }
                    }
                }
            }
        }
    }

    fn finish_job(&mut self, i: usize) {
        let now = self.queue.now();
        self.jobs[i].state = JobState::Done;
        self.jobs[i].end = now;
        self.free_nodes += self.jobs[i].spec.nodes;
        self.try_schedule();
    }

    /// Applies/removes contention caps: a job with `contention_cap` is
    /// limited exactly while any *other* job has I/O in flight.
    fn update_contention_caps(&mut self) {
        let now = self.queue.now();
        for i in 0..self.jobs.len() {
            let Some(cap) = self.jobs[i].spec.contention_cap else {
                continue;
            };
            let own: Vec<FlowId> = self.jobs[i]
                .inflight
                .iter()
                .chain(self.jobs[i].blocked_on.iter())
                .copied()
                .filter(|f| self.flow_job.contains_key(f))
                .collect();
            if own.is_empty() {
                continue;
            }
            let others_active = self.flow_job.values().any(|&j| j != i);
            for f in own {
                self.pfs
                    .set_cap(now, f, if others_active { Some(cap) } else { None });
            }
        }
        self.resync_pfs();
    }

    fn drain_pfs(&mut self) {
        loop {
            let now = self.queue.now();
            let done = self.pfs.advance_to(now);
            if done.is_empty() {
                return;
            }
            for (_, flow) in done {
                self.on_flow_done(flow);
            }
        }
    }

    fn on_flow_done(&mut self, flow: FlowId) {
        let i = self
            .flow_job
            .remove(&flow)
            .invariant("flow belongs to a job");
        if self.jobs[i].inflight == Some(flow) {
            self.jobs[i].inflight = None;
        }
        let was_blocked = self.jobs[i].blocked_on == Some(flow);
        if was_blocked {
            self.jobs[i].blocked_on = None;
        }
        self.update_contention_caps();
        if was_blocked {
            self.advance_job(i);
        } else if self.jobs[i].phase >= self.jobs[i].spec.profile.len()
            && self.jobs[i].state == JobState::Running
            && self.jobs[i].inflight.is_none()
            && self.jobs[i].blocked_on.is_none()
        {
            self.finish_job(i);
        }
    }

    fn resync_pfs(&mut self) {
        if let Some(k) = self.pfs_wake.take() {
            self.queue.cancel(k);
        }
        if let Some(t) = self.pfs.next_completion() {
            let t = t.max(self.queue.now());
            self.pfs_wake = Some(self.queue.schedule(t, Event::PfsWake));
        }
    }

    /// The configured cluster parameters.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }
}

/// Builds the paper's Fig. 1 scenario: eight HACC-IO-like jobs on 16, 32 or
/// 96 nodes; job 4 is the only asynchronous one. When `limit_job4` is true,
/// job 4 is capped at its required bandwidth (×`tol`) during contention.
pub fn motivation_scenario(limit_job4: bool, tol: f64) -> (ClusterConfig, Vec<JobSpec>) {
    let cfg = ClusterConfig::default();
    // I/O-dominated sync jobs keep the PFS near saturation for most of the
    // run (the paper's Fig. 2): 10 GB per node per loop against only 4 s of
    // compute. Job 4 is compute-heavy with async I/O: its required
    // bandwidth (4 GB / 20 s = 0.2 GB/s per node → 19.2 GB/s) sits well
    // below its by-node fair share (96/336 × 120 ≈ 34 GB/s), so capping it
    // during contention is a pure gift of ~13 GB/s to the sync jobs, while
    // its own transfers still fit the 20 s compute window.
    let gb = 1e9;
    let sync_job = |name: &str, nodes: usize, submit: f64, loops: usize| {
        JobSpec::hacc_like(
            name,
            nodes,
            submit,
            loops,
            4.0,
            10.0 * gb * nodes as f64,
            IoStyle::Sync,
        )
    };
    let mut jobs = vec![
        sync_job("job0", 96, 0.0, 6),
        sync_job("job1", 32, 2.0, 7),
        sync_job("job2", 16, 4.0, 8),
        sync_job("job3", 32, 6.0, 7),
        JobSpec::hacc_like("job4", 96, 8.0, 8, 20.0, 4.0 * gb * 96.0, IoStyle::Async),
        sync_job("job5", 16, 10.0, 8),
        sync_job("job6", 32, 12.0, 7),
        sync_job("job7", 16, 14.0, 8),
    ];
    if limit_job4 {
        let b = jobs[4].required_bandwidth();
        jobs[4].contention_cap = Some(b * tol);
    }
    (cfg, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_job(style: IoStyle) -> JobSpec {
        JobSpec::hacc_like("j", 10, 0.0, 3, 10.0, 100e9, style)
    }

    #[test]
    fn single_sync_job_runtime() {
        let cfg = ClusterConfig::default();
        // 3 × (10 s compute + 100 GB / 120 GB/s ≈ 0.833 s I/O) ≈ 32.5 s.
        let r = Cluster::new(cfg, vec![one_job(IoStyle::Sync)]).run();
        assert!(
            (r.jobs[0].runtime() - 32.5).abs() < 0.1,
            "{}",
            r.jobs[0].runtime()
        );
    }

    #[test]
    fn single_async_job_hides_io() {
        let cfg = ClusterConfig::default();
        // Bursts hidden behind the following compute; only the last one
        // (nothing left to overlap) adds its ~0.833 s.
        let r = Cluster::new(cfg, vec![one_job(IoStyle::Async)]).run();
        assert!(
            (r.jobs[0].runtime() - 30.833).abs() < 0.1,
            "{}",
            r.jobs[0].runtime()
        );
    }

    #[test]
    fn jobs_queue_when_nodes_exhausted() {
        let cfg = ClusterConfig {
            nodes: 10,
            ..Default::default()
        };
        let a = JobSpec::hacc_like("a", 10, 0.0, 1, 5.0, 1e9, IoStyle::Sync);
        let b = JobSpec::hacc_like("b", 10, 0.0, 1, 5.0, 1e9, IoStyle::Sync);
        let r = Cluster::new(cfg, vec![a, b]).run();
        assert!(r.jobs[1].start >= r.jobs[0].end - 1e-9, "b must wait for a");
    }

    #[test]
    fn fcfs_blocks_later_small_jobs() {
        let cfg = ClusterConfig {
            nodes: 10,
            ..Default::default()
        };
        let a = JobSpec::hacc_like("a", 8, 0.0, 1, 5.0, 1e9, IoStyle::Sync);
        let big = JobSpec::hacc_like("big", 10, 1.0, 1, 5.0, 1e9, IoStyle::Sync);
        let small = JobSpec::hacc_like("small", 2, 2.0, 1, 5.0, 1e9, IoStyle::Sync);
        let r = Cluster::new(cfg, vec![a, big, small]).run();
        // Strict FCFS: small (fits beside a) must still wait behind big.
        assert!(r.jobs[2].start >= r.jobs[1].start - 1e-9);
    }

    #[test]
    fn contention_slows_concurrent_jobs() {
        let cfg = ClusterConfig::default();
        let solo = Cluster::new(cfg, vec![one_job(IoStyle::Sync)]).run().jobs[0].runtime();
        let pair = Cluster::new(cfg, vec![one_job(IoStyle::Sync), one_job(IoStyle::Sync)]).run();
        assert!(
            pair.jobs[0].runtime() > solo + 1.0,
            "shared PFS must slow both: {} vs {solo}",
            pair.jobs[0].runtime()
        );
    }

    #[test]
    fn required_bandwidth_of_profile() {
        let j = JobSpec::hacc_like("j", 4, 0.0, 2, 10.0, 50e9, IoStyle::Async);
        // Each write must fit the *following* 10 s compute window; the last
        // write has none, so phases contributing are loops 0..n−1.
        assert!((j.required_bandwidth() - 5e9).abs() < 1.0);
    }

    #[test]
    fn contention_cap_frees_bandwidth_for_sync_jobs() {
        // One async job + one sync job on the same PFS. Capping the async
        // job at its required bandwidth speeds the sync job up.
        let cfg = ClusterConfig::default();
        let sync_job = || JobSpec::hacc_like("sync", 96, 0.0, 6, 10.0, 150e9, IoStyle::Sync);
        let mut async_job = JobSpec::hacc_like("async", 96, 0.0, 6, 10.0, 150e9, IoStyle::Async);

        let base = Cluster::new(cfg, vec![sync_job(), async_job.clone()]).run();

        async_job.contention_cap = Some(async_job.required_bandwidth() * 1.1);
        let limited = Cluster::new(cfg, vec![sync_job(), async_job]).run();

        let sync_base = base.jobs[0].runtime();
        let sync_lim = limited.jobs[0].runtime();
        assert!(
            sync_lim < sync_base - 1.0,
            "sync job should profit: {sync_lim} vs {sync_base}"
        );
        // The async job may slow down slightly, but not catastrophically.
        let async_base = base.jobs[1].runtime();
        let async_lim = limited.jobs[1].runtime();
        assert!(
            async_lim < async_base * 1.35,
            "async job {async_lim} vs {async_base}"
        );
    }

    #[test]
    fn bandwidth_series_conserves_bytes() {
        let cfg = ClusterConfig::default();
        let r = Cluster::new(cfg, vec![one_job(IoStyle::Sync)]).run();
        let moved = r
            .total_bandwidth
            .integral(SimTime::ZERO, SimTime::from_secs(1e4));
        assert!((moved - 300e9).abs() < 1e6, "moved {moved}");
    }

    #[test]
    fn motivation_scenario_shapes() {
        let (cfg, jobs) = motivation_scenario(true, 1.1);
        assert_eq!(jobs.len(), 8);
        assert_eq!(cfg.nodes, 500);
        assert!(jobs[4].contention_cap.is_some());
        assert!(jobs
            .iter()
            .enumerate()
            .all(|(i, j)| (i == 4) == (j.style == IoStyle::Async)));
    }
}

#[cfg(test)]
mod backfill_tests {
    use super::*;

    #[test]
    fn backfill_lets_short_jobs_jump() {
        let cfg = ClusterConfig {
            nodes: 10,
            scheduler: Scheduler::Backfill,
            ..Default::default()
        };
        // a: holds 8 nodes for ~20 s. big: needs 10 (blocked). small: 2
        // nodes, short — fits beside a and ends before big's reservation.
        let a = JobSpec::hacc_like("a", 8, 0.0, 1, 20.0, 1e9, IoStyle::Sync);
        let big = JobSpec::hacc_like("big", 10, 1.0, 1, 5.0, 1e9, IoStyle::Sync);
        let small = JobSpec::hacc_like("small", 2, 2.0, 1, 2.0, 1e9, IoStyle::Sync);
        let r = Cluster::new(cfg, vec![a, big, small]).run();
        assert!(
            r.jobs[2].start < r.jobs[1].start,
            "small ({}) should backfill ahead of big ({})",
            r.jobs[2].start,
            r.jobs[1].start
        );
        // And the head is not delayed: big starts when a ends.
        assert!((r.jobs[1].start - r.jobs[0].end).abs() < 1e-6);
    }

    #[test]
    fn backfill_rejects_jobs_that_would_delay_the_head() {
        let cfg = ClusterConfig {
            nodes: 10,
            scheduler: Scheduler::Backfill,
            ..Default::default()
        };
        let a = JobSpec::hacc_like("a", 8, 0.0, 1, 10.0, 1e9, IoStyle::Sync);
        let big = JobSpec::hacc_like("big", 10, 1.0, 1, 5.0, 1e9, IoStyle::Sync);
        // long: fits beside a but its walltime extends past big's
        // reservation — must NOT backfill.
        let long = JobSpec::hacc_like("long", 2, 2.0, 1, 60.0, 1e9, IoStyle::Sync);
        let r = Cluster::new(cfg, vec![a, big, long]).run();
        assert!(
            r.jobs[2].start >= r.jobs[1].start,
            "long ({}) must wait behind big ({})",
            r.jobs[2].start,
            r.jobs[1].start
        );
    }

    #[test]
    fn backfill_never_worse_than_fcfs_here() {
        let jobs = || {
            vec![
                JobSpec::hacc_like("a", 8, 0.0, 1, 15.0, 1e9, IoStyle::Sync),
                JobSpec::hacc_like("big", 10, 1.0, 1, 5.0, 1e9, IoStyle::Sync),
                JobSpec::hacc_like("s1", 2, 2.0, 1, 2.0, 1e9, IoStyle::Sync),
                JobSpec::hacc_like("s2", 2, 2.5, 1, 2.0, 1e9, IoStyle::Sync),
            ]
        };
        let fcfs_cfg = ClusterConfig {
            nodes: 10,
            ..Default::default()
        };
        let bf_cfg = ClusterConfig {
            scheduler: Scheduler::Backfill,
            ..fcfs_cfg
        };
        let fcfs = Cluster::new(fcfs_cfg, jobs()).run();
        let bf = Cluster::new(bf_cfg, jobs()).run();
        assert!(bf.makespan <= fcfs.makespan + 1e-9);
        assert!(
            bf.jobs[2].end < fcfs.jobs[2].end - 1.0,
            "short jobs should finish much earlier with backfill"
        );
    }

    #[test]
    fn walltime_estimate_covers_actual_runtime() {
        // The derived walltime must be an over-estimate for a solo job.
        let j = JobSpec::hacc_like("j", 96, 0.0, 6, 10.0, 96.0 * 4e9, IoStyle::Sync);
        let w = j.walltime;
        let cfg = ClusterConfig::default();
        let r = Cluster::new(cfg, vec![j]).run();
        assert!(
            r.jobs[0].runtime() <= w,
            "actual {} exceeds promised {w}",
            r.jobs[0].runtime()
        );
    }
}

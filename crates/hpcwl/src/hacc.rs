//! HACC-IO, modified for asynchronous overlap (paper Sec. VI-B, Fig. 12).
//!
//! The CORAL HACC-IO benchmark mimics one I/O phase of HACC: it fills
//! per-particle arrays, writes a header plus the arrays, reads everything
//! back and verifies. The paper's modified version (which we reproduce
//! op-for-op):
//!
//! * wraps the four blocks — *compute, write, read, verify* — in a loop,
//! * replaces `MPI_File_write_at`/`read_at` with their non-blocking
//!   counterparts so the **write overlaps the compute block** and the
//!   **read overlaps the verify block**,
//! * places `MPI_Wait` blocks at the end of the compute and verify blocks
//!   (avoiding write/read races),
//! * copies the data with `memcpy` at the end of the verify block (so the
//!   verify block of phase *k* can check against the data of compute *k*),
//! * keeps header I/O synchronous, and
//! * adds global broadcasts during compute and verify "for more
//!   variability".
//!
//! Per-rank op sequence of one loop:
//!
//! ```text
//! Write(header, sync)                  # header ops stay synchronous
//! IWrite(particles·38 B)  ┐ overlaps   Bcast; Compute(compute block)
//!                         ┘            Wait(write)
//! IRead(particles·38 B)   ┐ overlaps   Bcast; Compute(verify block)
//!                         ┘            Memcpy(data); Wait(read)
//! ```

use mpisim::{FileId, Op, Program, ReqTag};
use serde::{Deserialize, Serialize};
/// Bytes per HACC particle record: xx,yy,zz,vx,vy,vz,phi (7×f32) +
/// pid (i64) + mask (u16) = 38 B, matching the original benchmark.
pub const BYTES_PER_PARTICLE: f64 = 38.0;

/// HACC-IO workload parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HaccConfig {
    /// Particles per rank (paper: 10⁵ for Fig. 11, 10⁶ for Fig. 5).
    pub particles_per_rank: u64,
    /// Number of loop iterations (paper: 10).
    pub loops: usize,
    /// Nominal seconds of the compute block per particle.
    pub compute_ns_per_particle: f64,
    /// Nominal seconds of the verify block per particle.
    pub verify_ns_per_particle: f64,
    /// Synchronous header bytes written each loop.
    pub header_bytes: f64,
    /// Broadcast payload injected in compute and verify blocks.
    pub bcast_bytes: f64,
}

impl Default for HaccConfig {
    fn default() -> Self {
        HaccConfig {
            particles_per_rank: 100_000,
            loops: 10,
            compute_ns_per_particle: 5_000.0,
            verify_ns_per_particle: 4_000.0,
            header_bytes: 4096.0,
            bcast_bytes: 64.0 * 1024.0,
        }
    }
}

impl HaccConfig {
    /// Data bytes written (and read back) per rank per loop.
    pub fn data_bytes(&self) -> f64 {
        self.particles_per_rank as f64 * BYTES_PER_PARTICLE
    }

    /// Nominal compute-block duration, seconds.
    pub fn compute_seconds(&self) -> f64 {
        self.particles_per_rank as f64 * self.compute_ns_per_particle * 1e-9
    }

    /// Nominal verify-block duration, seconds.
    pub fn verify_seconds(&self) -> f64 {
        self.particles_per_rank as f64 * self.verify_ns_per_particle * 1e-9
    }

    /// Builds the per-rank program. Every rank writes to its own file
    /// (individual file pointers to distinct files, the harder non-collective
    /// setting the paper uses); `file` is that rank's file.
    pub fn program(&self, file: FileId) -> Program {
        let mut ops = Vec::with_capacity(self.loops * 9);
        let data = self.data_bytes();
        for k in 0..self.loops as u32 {
            let wtag = ReqTag(2 * k);
            let rtag = ReqTag(2 * k + 1);
            // Header stays synchronous.
            ops.push(Op::Write {
                file,
                bytes: self.header_bytes,
            });
            // Write block overlaps the compute block.
            ops.push(Op::IWrite {
                file,
                bytes: data,
                tag: wtag,
            });
            ops.push(Op::Bcast {
                bytes: self.bcast_bytes,
            });
            ops.push(Op::Compute {
                seconds: self.compute_seconds(),
            });
            ops.push(Op::Wait { tag: wtag });
            // Read block overlaps the verify block.
            ops.push(Op::IRead {
                file,
                bytes: data,
                tag: rtag,
            });
            ops.push(Op::Bcast {
                bytes: self.bcast_bytes,
            });
            ops.push(Op::Compute {
                seconds: self.verify_seconds(),
            });
            ops.push(Op::Memcpy { bytes: data });
            ops.push(Op::Wait { tag: rtag });
        }
        Program::from_ops(ops)
    }

    /// The vanilla (unmodified) HACC-IO with blocking I/O, as a baseline:
    /// compute → write(sync) → read(sync) → verify.
    pub fn program_sync(&self, file: FileId) -> Program {
        let mut ops = Vec::with_capacity(self.loops * 7);
        let data = self.data_bytes();
        for _ in 0..self.loops {
            ops.push(Op::Write {
                file,
                bytes: self.header_bytes,
            });
            ops.push(Op::Bcast {
                bytes: self.bcast_bytes,
            });
            ops.push(Op::Compute {
                seconds: self.compute_seconds(),
            });
            ops.push(Op::Write { file, bytes: data });
            ops.push(Op::Read { file, bytes: data });
            ops.push(Op::Bcast {
                bytes: self.bcast_bytes,
            });
            ops.push(Op::Compute {
                seconds: self.verify_seconds(),
            });
            ops.push(Op::Memcpy { bytes: data });
        }
        Program::from_ops(ops)
    }
}

/// The actual data kernel of HACC-IO, reproduced so examples and tests move
/// real bytes: fill the particle arrays from the loop index, serialize,
/// deserialize, verify — the same cycle the benchmark times.
pub mod kernel {
    use simcore::Invariant;

    /// One HACC particle record.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Particle {
        /// Position.
        pub xx: f32,
        /// Position.
        pub yy: f32,
        /// Position.
        pub zz: f32,
        /// Velocity.
        pub vx: f32,
        /// Velocity.
        pub vy: f32,
        /// Velocity.
        pub vz: f32,
        /// Potential.
        pub phi: f32,
        /// Particle id.
        pub pid: i64,
        /// Mask bits.
        pub mask: u16,
    }

    /// Fills `n` particles from the loop index, exactly like HACC-IO's
    /// init loop (each array slot gets a value derived from its index).
    pub fn fill(n: usize, rank: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                let v = i as f32;
                Particle {
                    xx: v,
                    yy: v + 1.0,
                    zz: v + 2.0,
                    vx: v + 3.0,
                    vy: v + 4.0,
                    vz: v + 5.0,
                    phi: v + 6.0,
                    pid: (rank as i64) << 32 | i as i64,
                    mask: (i % 65_536) as u16,
                }
            })
            .collect()
    }

    /// Serializes particles into the 38-byte wire format.
    pub fn serialize(ps: &[Particle]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ps.len() * 38);
        for p in ps {
            for f in [p.xx, p.yy, p.zz, p.vx, p.vy, p.vz, p.phi] {
                out.extend_from_slice(&f.to_le_bytes());
            }
            out.extend_from_slice(&p.pid.to_le_bytes());
            out.extend_from_slice(&p.mask.to_le_bytes());
        }
        out
    }

    /// Deserializes the wire format back into particles.
    pub fn deserialize(bytes: &[u8]) -> Vec<Particle> {
        assert_eq!(bytes.len() % 38, 0, "not a whole number of records");
        bytes
            .chunks_exact(38)
            .map(|c| {
                let f = |o: usize| {
                    let b: [u8; 4] = c[o..o + 4].try_into().invariant("4 bytes");
                    f32::from_le_bytes(b)
                };
                let pid_bytes: [u8; 8] = c[28..36].try_into().invariant("8 bytes");
                let mask_bytes: [u8; 2] = c[36..38].try_into().invariant("2 bytes");
                Particle {
                    xx: f(0),
                    yy: f(4),
                    zz: f(8),
                    vx: f(12),
                    vy: f(16),
                    vz: f(20),
                    phi: f(24),
                    pid: i64::from_le_bytes(pid_bytes),
                    mask: u16::from_le_bytes(mask_bytes),
                }
            })
            .collect()
    }

    /// HACC-IO's verify block: element-wise comparison against the data
    /// still in memory. Returns the number of mismatching records.
    pub fn verify(expected: &[Particle], got: &[Particle]) -> usize {
        if expected.len() != got.len() {
            return expected.len().max(got.len());
        }
        expected.iter().zip(got).filter(|(a, b)| a != b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_size_is_38_bytes() {
        let ps = kernel::fill(10, 0);
        assert_eq!(kernel::serialize(&ps).len(), 380);
        assert_eq!(BYTES_PER_PARTICLE, 38.0);
    }

    #[test]
    fn kernel_roundtrip_verifies_clean() {
        let ps = kernel::fill(1000, 3);
        let bytes = kernel::serialize(&ps);
        let back = kernel::deserialize(&bytes);
        assert_eq!(kernel::verify(&ps, &back), 0);
    }

    #[test]
    fn kernel_detects_corruption() {
        let ps = kernel::fill(100, 0);
        let mut bytes = kernel::serialize(&ps);
        bytes[40] ^= 0xFF;
        let back = kernel::deserialize(&bytes);
        assert_eq!(kernel::verify(&ps, &back), 1);
    }

    #[test]
    fn kernel_detects_length_mismatch() {
        let a = kernel::fill(10, 0);
        let b = kernel::fill(8, 0);
        assert_eq!(kernel::verify(&a, &b), 10);
    }

    #[test]
    fn pids_are_rank_unique() {
        let a = kernel::fill(4, 1);
        let b = kernel::fill(4, 2);
        assert!(a.iter().zip(&b).all(|(x, y)| x.pid != y.pid));
    }

    #[test]
    fn program_structure_matches_fig12() {
        let cfg = HaccConfig {
            loops: 2,
            ..Default::default()
        };
        let p = cfg.program(FileId(0));
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 2 * 10);
        // First loop: header write, iwrite, bcast, compute, wait, iread,
        // bcast, compute(verify), memcpy, wait.
        let ops = p.ops();
        assert!(matches!(ops[0], Op::Write { .. }), "sync header first");
        assert!(matches!(ops[1], Op::IWrite { .. }));
        assert!(matches!(ops[2], Op::Bcast { .. }));
        assert!(matches!(ops[3], Op::Compute { .. }));
        assert!(matches!(ops[4], Op::Wait { .. }));
        assert!(matches!(ops[5], Op::IRead { .. }));
        assert!(matches!(ops[8], Op::Memcpy { .. }));
        assert!(matches!(ops[9], Op::Wait { .. }));
    }

    #[test]
    fn sync_program_has_no_async_ops() {
        let cfg = HaccConfig::default();
        let p = cfg.program_sync(FileId(0));
        assert!(p
            .ops()
            .iter()
            .all(|o| !matches!(o, Op::IWrite { .. } | Op::IRead { .. } | Op::Wait { .. })));
    }

    #[test]
    fn derived_quantities() {
        let cfg = HaccConfig {
            particles_per_rank: 1_000_000,
            compute_ns_per_particle: 500.0,
            ..Default::default()
        };
        assert_eq!(cfg.data_bytes(), 38e6);
        assert!((cfg.compute_seconds() - 0.5).abs() < 1e-12);
    }
}

//! An IOR-like parametric I/O pattern generator.
//!
//! IOR is the standard synthetic I/O benchmark; this generator produces the
//! same family of periodic patterns (segments of block-sized transfers,
//! read/write mix, sync/async) as rank programs. Used by the ablation
//! benches and as the generic "other job" workload in contention studies.

use mpisim::{FileId, Op, Program, ReqTag};
use serde::{Deserialize, Serialize};

/// Transfer direction mix of a pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    /// Write-only segments (checkpoint style — the dominant HPC pattern).
    WriteOnly,
    /// Read-only segments (restart/analysis style).
    ReadOnly,
    /// Write then read per segment.
    ReadWrite,
}

/// How transfers are issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueMode {
    /// Blocking calls: I/O time adds to runtime.
    Sync,
    /// Non-blocking calls overlapped with the following compute phase.
    Async,
}

/// IOR-like pattern parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IorConfig {
    /// Number of segments (I/O phases).
    pub segments: usize,
    /// Bytes moved per rank per segment.
    pub block_bytes: f64,
    /// Compute seconds between segments.
    pub compute_seconds: f64,
    /// Direction mix.
    pub mode: AccessMode,
    /// Sync or async issuing.
    pub issue: IssueMode,
}

impl Default for IorConfig {
    fn default() -> Self {
        IorConfig {
            segments: 10,
            block_bytes: 16e6,
            compute_seconds: 1.0,
            mode: AccessMode::WriteOnly,
            issue: IssueMode::Async,
        }
    }
}

impl IorConfig {
    /// Builds the per-rank program against `file`.
    pub fn program(&self, file: FileId) -> Program {
        let mut ops = Vec::new();
        let mut tag = 0u32;
        for _ in 0..self.segments {
            match self.issue {
                IssueMode::Sync => {
                    match self.mode {
                        AccessMode::WriteOnly => ops.push(Op::Write {
                            file,
                            bytes: self.block_bytes,
                        }),
                        AccessMode::ReadOnly => ops.push(Op::Read {
                            file,
                            bytes: self.block_bytes,
                        }),
                        AccessMode::ReadWrite => {
                            ops.push(Op::Write {
                                file,
                                bytes: self.block_bytes,
                            });
                            ops.push(Op::Read {
                                file,
                                bytes: self.block_bytes,
                            });
                        }
                    }
                    ops.push(Op::Compute {
                        seconds: self.compute_seconds,
                    });
                }
                IssueMode::Async => {
                    let mut tags = Vec::new();
                    match self.mode {
                        AccessMode::WriteOnly => {
                            ops.push(Op::IWrite {
                                file,
                                bytes: self.block_bytes,
                                tag: ReqTag(tag),
                            });
                            tags.push(tag);
                            tag += 1;
                        }
                        AccessMode::ReadOnly => {
                            ops.push(Op::IRead {
                                file,
                                bytes: self.block_bytes,
                                tag: ReqTag(tag),
                            });
                            tags.push(tag);
                            tag += 1;
                        }
                        AccessMode::ReadWrite => {
                            ops.push(Op::IWrite {
                                file,
                                bytes: self.block_bytes,
                                tag: ReqTag(tag),
                            });
                            ops.push(Op::IRead {
                                file,
                                bytes: self.block_bytes,
                                tag: ReqTag(tag + 1),
                            });
                            tags.push(tag);
                            tags.push(tag + 1);
                            tag += 2;
                        }
                    }
                    ops.push(Op::Compute {
                        seconds: self.compute_seconds,
                    });
                    for t in tags {
                        ops.push(Op::Wait { tag: ReqTag(t) });
                    }
                }
            }
        }
        Program::from_ops(ops)
    }

    /// Total bytes a rank moves over the whole pattern.
    pub fn total_bytes(&self) -> f64 {
        let per_seg = match self.mode {
            AccessMode::WriteOnly | AccessMode::ReadOnly => self.block_bytes,
            AccessMode::ReadWrite => 2.0 * self.block_bytes,
        };
        per_seg * self.segments as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_programs_validate() {
        for mode in [
            AccessMode::WriteOnly,
            AccessMode::ReadOnly,
            AccessMode::ReadWrite,
        ] {
            let cfg = IorConfig {
                mode,
                issue: IssueMode::Async,
                ..Default::default()
            };
            assert!(cfg.program(FileId(0)).validate().is_ok(), "{mode:?}");
        }
    }

    #[test]
    fn sync_programs_have_no_waits() {
        let cfg = IorConfig {
            issue: IssueMode::Sync,
            ..Default::default()
        };
        let p = cfg.program(FileId(0));
        assert!(!p.ops().iter().any(|o| matches!(o, Op::Wait { .. })));
    }

    #[test]
    fn readwrite_doubles_bytes() {
        let w = IorConfig {
            mode: AccessMode::WriteOnly,
            ..Default::default()
        };
        let rw = IorConfig {
            mode: AccessMode::ReadWrite,
            ..Default::default()
        };
        assert_eq!(rw.total_bytes(), 2.0 * w.total_bytes());
    }

    #[test]
    fn segment_count_respected() {
        let cfg = IorConfig {
            segments: 7,
            issue: IssueMode::Async,
            ..Default::default()
        };
        let p = cfg.program(FileId(0));
        let submits = p
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::IWrite { .. }))
            .count();
        assert_eq!(submits, 7);
    }
}

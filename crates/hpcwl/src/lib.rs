//! # hpcwl — HPC workloads for the "I/O Behind the Scenes" reproduction
//!
//! The applications the paper evaluates, rebuilt as [`mpisim`] rank
//! programs plus real data kernels:
//!
//! * [`hacc::HaccConfig`] — the modified HACC-IO benchmark (Fig. 12):
//!   looped compute/write/read/verify blocks with async overlap, sync
//!   headers, memcpy and broadcasts; [`hacc::kernel`] is the actual
//!   fill/serialize/verify data cycle.
//! * [`wacomm::WacommConfig`] — a WaComM++-like Lagrangian pollutant
//!   transport model with asynchronous per-iteration writes;
//!   [`wacomm::kernel`] advects real particles.
//! * [`iorlike::IorConfig`] — an IOR-style parametric pattern generator for
//!   ablations and background jobs.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod hacc;
pub mod iorlike;
pub mod wacomm;

//! A WaComM++-like workload: Lagrangian pollutant transport with
//! asynchronous per-iteration result writes (paper Sec. VI-A).
//!
//! WaComM++ simulates marine pollutant transport: per simulated hour the
//! particle population is advected (MPI-distributed, OpenMP within a rank)
//! and — in the paper's modified version — the particle state is written
//! **asynchronously in every iteration**, with only the final write left
//! synchronous (no compute left to overlap). Rank 0 reads the particle
//! input at start.
//!
//! Per-rank op sequence (Fig. 3 ordering — wait returns immediately, then
//! the next request is submitted):
//!
//! ```text
//! rank 0: Read(input, sync);  all: Bcast(distribution)
//! for k in 0..iterations:
//!     Compute(advection of local particles)
//!     Wait(write_{k−1})           # returns immediately when hidden
//!     IWrite(local particles)
//! Wait(write_last); Write(final results, sync)
//! ```

use mpisim::{FileId, Op, Program, ReqTag};
use serde::{Deserialize, Serialize};

/// Bytes per serialized WaComM particle (3×f64 position + 1×f64 health +
/// u64 id = 40 B).
pub const BYTES_PER_PARTICLE: f64 = 40.0;

/// WaComM-like workload parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WacommConfig {
    /// Total particles across all ranks (paper: 2·10⁶).
    pub total_particles: u64,
    /// Simulation iterations — "hours" (paper: 50).
    pub iterations: usize,
    /// Nominal advection seconds per particle per iteration (WaComM does
    /// full 3D field interpolation per particle, so this is tens of µs).
    pub compute_ns_per_particle: f64,
    /// Per-iteration serial cost (field load, bookkeeping) independent of
    /// the particle share — keeps iterations from vanishing at high rank
    /// counts, as observed on the real code.
    pub base_iteration_seconds: f64,
    /// Input bytes read by rank 0 at start.
    pub input_bytes: f64,
    /// Extra bytes in the final synchronous write on top of the last
    /// iteration's particle state (default 0: the final dump is the state).
    pub final_bytes_per_rank: f64,
    /// Distribution broadcast payload.
    pub bcast_bytes: f64,
}

impl Default for WacommConfig {
    fn default() -> Self {
        WacommConfig {
            total_particles: 2_000_000,
            iterations: 50,
            compute_ns_per_particle: 25_000.0,
            base_iteration_seconds: 0.12,
            input_bytes: 80e6,
            final_bytes_per_rank: 0.0,
            bcast_bytes: 1e6,
        }
    }
}

impl WacommConfig {
    /// Particles owned by `rank` out of `n_ranks` (block distribution).
    pub fn particles_of(&self, rank: usize, n_ranks: usize) -> u64 {
        let base = self.total_particles / n_ranks as u64;
        let rem = self.total_particles % n_ranks as u64;
        base + u64::from((rank as u64) < rem)
    }

    /// Per-iteration write size of `rank`, bytes.
    pub fn write_bytes(&self, rank: usize, n_ranks: usize) -> f64 {
        self.particles_of(rank, n_ranks) as f64 * BYTES_PER_PARTICLE
    }

    /// Nominal advection seconds per iteration for `rank`.
    pub fn compute_seconds(&self, rank: usize, n_ranks: usize) -> f64 {
        self.base_iteration_seconds
            + self.particles_of(rank, n_ranks) as f64 * self.compute_ns_per_particle * 1e-9
    }

    /// Builds the program of `rank`; `out` is the rank's result file and
    /// `input` the shared input file.
    pub fn program(&self, rank: usize, n_ranks: usize, input: FileId, out: FileId) -> Program {
        assert!(self.iterations >= 2, "need at least two iterations");
        let mut ops = Vec::with_capacity(self.iterations * 3 + 5);
        if rank == 0 {
            ops.push(Op::Read {
                file: input,
                bytes: self.input_bytes,
            });
        }
        // Particle distribution from rank 0.
        ops.push(Op::Bcast {
            bytes: self.bcast_bytes,
        });
        let bytes = self.write_bytes(rank, n_ranks);
        let compute = self.compute_seconds(rank, n_ranks);
        let last = self.iterations as u32 - 1;
        for k in 0..self.iterations as u32 {
            ops.push(Op::Compute { seconds: compute });
            if k > 0 {
                ops.push(Op::Wait { tag: ReqTag(k - 1) });
            }
            if k < last {
                ops.push(Op::IWrite {
                    file: out,
                    bytes,
                    tag: ReqTag(k),
                });
            } else {
                // The paper keeps the last write synchronous: there is no
                // compute phase left to overlap it with.
                ops.push(Op::Write {
                    file: out,
                    bytes: bytes + self.final_bytes_per_rank,
                });
            }
        }
        Program::from_ops(ops)
    }

    /// The original (unmodified) WaComM++: rank 0 writes everything
    /// synchronously at the end of the run.
    pub fn program_sync(&self, rank: usize, n_ranks: usize, input: FileId, out: FileId) -> Program {
        let mut ops = Vec::with_capacity(self.iterations + 5);
        if rank == 0 {
            ops.push(Op::Read {
                file: input,
                bytes: self.input_bytes,
            });
        }
        ops.push(Op::Bcast {
            bytes: self.bcast_bytes,
        });
        let compute = self.compute_seconds(rank, n_ranks);
        for _ in 0..self.iterations {
            ops.push(Op::Compute { seconds: compute });
        }
        let total =
            self.write_bytes(rank, n_ranks) * self.iterations as f64 + self.final_bytes_per_rank;
        if rank == 0 {
            ops.push(Op::Write {
                file: out,
                bytes: total * n_ranks as f64,
            });
        }
        ops.push(Op::Barrier);
        Program::from_ops(ops)
    }
}

/// The actual Lagrangian transport kernel, so examples move real particle
/// data: explicit-Euler advection in a steady analytic current field plus a
/// deterministic turbulent kick — the numerical heart of WaComM.
pub mod kernel {
    use serde::{Deserialize, Serialize};

    /// One pollutant particle.
    #[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
    pub struct Particle {
        /// Position (lon-like), metres.
        pub x: f64,
        /// Position (lat-like), metres.
        pub y: f64,
        /// Depth, metres (≤ 0 at surface … positive down).
        pub z: f64,
        /// Pollutant health/concentration in [0, 1].
        pub health: f64,
        /// Stable particle id.
        pub id: u64,
    }

    /// Steady analytic current field (a double-gyre-like circulation).
    pub fn current(x: f64, y: f64, z: f64) -> (f64, f64, f64) {
        let u = 0.4 * (0.002 * y).sin() + 0.05;
        let v = 0.3 * (0.002 * x).cos();
        let w = 0.01 * (0.001 * (x + y)).sin() - 0.002 * z.max(0.0);
        (u, v, w)
    }

    /// Seeds `n` particles around a release point, deterministically.
    pub fn seed(n: usize, release: (f64, f64, f64)) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                // Low-discrepancy spread via Weyl sequences.
                let a = (i as f64 * 0.754_877_666_6) % 1.0;
                let b = (i as f64 * 0.569_840_290_9) % 1.0;
                Particle {
                    x: release.0 + 50.0 * (a - 0.5),
                    y: release.1 + 50.0 * (b - 0.5),
                    z: release.2,
                    health: 1.0,
                    id: i as u64,
                }
            })
            .collect()
    }

    /// Advects particles one step of `dt` seconds: Euler step through the
    /// current field, a deterministic pseudo-turbulent kick, and first-order
    /// pollutant decay.
    pub fn advect(particles: &mut [Particle], dt: f64, decay_per_sec: f64) {
        for p in particles.iter_mut() {
            let (u, v, w) = current(p.x, p.y, p.z);
            // Deterministic per-particle kick (hashed id + position).
            let h = p.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            let kick = (h as f64 / (1u64 << 24) as f64 - 0.5) * 0.02;
            p.x += (u + kick) * dt;
            p.y += (v - kick) * dt;
            p.z = (p.z + w * dt).max(0.0);
            p.health *= (-decay_per_sec * dt).exp();
        }
    }

    /// Serializes particles to the 40-byte wire format.
    pub fn serialize(ps: &[Particle]) -> Vec<u8> {
        let mut out = Vec::with_capacity(ps.len() * 40);
        for p in ps {
            out.extend_from_slice(&p.x.to_le_bytes());
            out.extend_from_slice(&p.y.to_le_bytes());
            out.extend_from_slice(&p.z.to_le_bytes());
            out.extend_from_slice(&p.health.to_le_bytes());
            out.extend_from_slice(&p.id.to_le_bytes());
        }
        out
    }

    /// Mean pollutant health of a population (a simple model observable).
    pub fn mean_health(ps: &[Particle]) -> f64 {
        if ps.is_empty() {
            return 0.0;
        }
        ps.iter().map(|p| p.health).sum::<f64>() / ps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn particle_distribution_covers_all() {
        let cfg = WacommConfig {
            total_particles: 10,
            ..Default::default()
        };
        let total: u64 = (0..3).map(|r| cfg.particles_of(r, 3)).sum();
        assert_eq!(total, 10);
        assert_eq!(cfg.particles_of(0, 3), 4); // remainder goes to low ranks
        assert_eq!(cfg.particles_of(2, 3), 3);
    }

    #[test]
    fn program_validates_and_overlaps() {
        let cfg = WacommConfig {
            iterations: 5,
            ..Default::default()
        };
        for rank in 0..4 {
            let p = cfg.program(rank, 4, FileId(0), FileId(1));
            assert!(p.validate().is_ok(), "rank {rank}");
        }
        // Rank 0 reads input; others don't.
        let p0 = cfg.program(0, 4, FileId(0), FileId(1));
        let p1 = cfg.program(1, 4, FileId(0), FileId(1));
        assert!(matches!(p0.ops()[0], Op::Read { .. }));
        assert!(!p1.ops().iter().any(|o| matches!(o, Op::Read { .. })));
        // Last data op is the synchronous final write.
        assert!(matches!(p0.ops()[p0.len() - 1], Op::Write { .. }));
    }

    #[test]
    fn sync_variant_funnels_through_rank0() {
        let cfg = WacommConfig {
            iterations: 5,
            ..Default::default()
        };
        let p0 = cfg.program_sync(0, 4, FileId(0), FileId(1));
        let p1 = cfg.program_sync(1, 4, FileId(0), FileId(1));
        assert!(p0.ops().iter().any(|o| matches!(o, Op::Write { .. })));
        assert!(!p1.ops().iter().any(|o| matches!(o, Op::Write { .. })));
    }

    #[test]
    fn kernel_advection_moves_particles() {
        let mut ps = kernel::seed(100, (1000.0, 2000.0, 5.0));
        let before = ps.clone();
        kernel::advect(&mut ps, 60.0, 1e-5);
        let moved = ps
            .iter()
            .zip(&before)
            .filter(|(a, b)| (a.x - b.x).abs() > 1e-9 || (a.y - b.y).abs() > 1e-9)
            .count();
        assert_eq!(moved, 100, "all particles advect");
    }

    #[test]
    fn kernel_decay_reduces_health() {
        let mut ps = kernel::seed(10, (0.0, 0.0, 0.0));
        kernel::advect(&mut ps, 3600.0, 1e-4);
        let h = kernel::mean_health(&ps);
        assert!(h < 1.0 && h > 0.0, "health {h}");
        assert!((h - (-0.36f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn kernel_is_deterministic() {
        let mut a = kernel::seed(50, (0.0, 0.0, 1.0));
        let mut b = kernel::seed(50, (0.0, 0.0, 1.0));
        kernel::advect(&mut a, 60.0, 0.0);
        kernel::advect(&mut b, 60.0, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_depth_never_negative() {
        let mut ps = kernel::seed(200, (0.0, 0.0, 0.1));
        for _ in 0..100 {
            kernel::advect(&mut ps, 600.0, 0.0);
        }
        assert!(ps.iter().all(|p| p.z >= 0.0));
    }

    #[test]
    fn serialized_size_matches_constant() {
        let ps = kernel::seed(7, (0.0, 0.0, 0.0));
        assert_eq!(
            kernel::serialize(&ps).len() as f64,
            7.0 * BYTES_PER_PARTICLE
        );
    }
}

//! Observation and control interfaces between the runtime and tracing tools.
//!
//! This is the analogue of the PMPI-interposition boundary: a tool (TMIO)
//! registers an [`IoHooks`] implementation to observe I/O events, and pushes
//! per-rank bandwidth limits back through [`Limits`] — exactly the split the
//! paper uses between the preloaded library and the modified MPICH.
//!
//! Every rank-context hook returns the *peri-runtime overhead* in seconds it
//! injects into the calling rank, so the paper's Fig. 5/6 overhead accounting
//! can be reproduced faithfully.

use crate::ops::ReqTag;
use pfsim::Channel;
use simcore::{IoErrorKind, SimTime};

/// Per-rank bandwidth limits applied by the ADIO-style I/O thread.
///
/// Limits are set by the tool (TMIO's strategy) and read by the I/O thread at
/// every sub-request start. When the limiter is disabled in the world config,
/// set values are retained but have no effect — matching a run without the
/// modified MPICH.
#[derive(Clone, Debug)]
pub struct Limits {
    enabled: bool,
    per_rank: Vec<Option<f64>>,
}

impl Limits {
    /// Creates limit storage for `n_ranks`, all unlimited.
    pub fn new(n_ranks: usize, enabled: bool) -> Self {
        Limits {
            enabled,
            per_rank: vec![None; n_ranks],
        }
    }

    /// Sets rank `rank`'s limit in bytes/s (`None` removes it).
    pub fn set(&mut self, rank: usize, limit: Option<f64>) {
        if let Some(l) = limit {
            assert!(l > 0.0, "bandwidth limit must be positive");
        }
        self.per_rank[rank] = limit;
    }

    /// The stored limit, regardless of whether limiting is enabled.
    pub fn stored(&self, rank: usize) -> Option<f64> {
        self.per_rank[rank]
    }

    /// The limit the I/O thread actually applies (None when disabled).
    pub fn effective(&self, rank: usize) -> Option<f64> {
        if self.enabled {
            self.per_rank[rank]
        } else {
            None
        }
    }

    /// Whether the limiter (the modified-MPICH side) is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.per_rank.len()
    }
}

/// Event observer, the PMPI-analogue boundary. All methods have no-op
/// defaults so partial observers stay small. Methods called from a rank's
/// context return the overhead (seconds) injected into that rank.
#[allow(unused_variables)]
pub trait IoHooks {
    /// A non-blocking I/O op was submitted (`MPI_File_iwrite_at`/`iread_at`).
    /// Called in rank context just before the I/O thread starts.
    fn on_async_submit(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        bytes: f64,
        channel: Channel,
        limits: &mut Limits,
    ) -> f64 {
        0.0
    }

    /// The I/O thread finished transferring a request's bytes. Not in rank
    /// context (no overhead).
    fn on_request_complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {}

    /// Rank entered `MPI_Wait` for `tag`. `already_done` tells whether the
    /// request had finished (the wait will return immediately).
    fn on_wait_enter(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        already_done: bool,
        limits: &mut Limits,
    ) -> f64 {
        0.0
    }

    /// Rank left `MPI_Wait` for `tag`. This is where TMIO computes the
    /// required bandwidth of the closed window and updates the rank's limit.
    fn on_wait_exit(&mut self, t: SimTime, rank: usize, tag: ReqTag, limits: &mut Limits) -> f64 {
        0.0
    }

    /// Rank entered a blocking I/O call (`MPI_File_write_at`/`read_at`).
    fn on_sync_begin(
        &mut self,
        t: SimTime,
        rank: usize,
        bytes: f64,
        channel: Channel,
        limits: &mut Limits,
    ) -> f64 {
        0.0
    }

    /// Rank returned from a blocking I/O call.
    fn on_sync_end(
        &mut self,
        t: SimTime,
        rank: usize,
        bytes: f64,
        channel: Channel,
        limits: &mut Limits,
    ) -> f64 {
        0.0
    }

    /// Rank probed a request with `MPI_Test` (`done` = completion status).
    /// Unsuccessful probes inside an `Op::PollWait` loop also land here.
    fn on_test(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        done: bool,
        limits: &mut Limits,
    ) -> f64 {
        0.0
    }

    /// The I/O thread is retrying a failed sub-request after a backoff
    /// sleep (fault injection). `tag` is `None` for blocking calls; `retry`
    /// is 1-based. Not in rank context (no overhead).
    fn on_io_retry(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: Option<ReqTag>,
        kind: IoErrorKind,
        retry: u32,
        backoff: f64,
    ) {
    }

    /// An I/O op failed terminally: retries exhausted or the request was
    /// cancelled. A rank blocked in the matching `Wait` is released with the
    /// error instead of hanging. Not in rank context (no overhead).
    fn on_op_error(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: Option<ReqTag>,
        kind: IoErrorKind,
        attempts: u32,
    ) {
    }

    /// Rank finished its program at time `t`.
    fn on_rank_done(&mut self, t: SimTime, rank: usize) {}
}

/// The trivial observer: no tracing, no limits, no overhead.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoHooks;

impl IoHooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_disabled_hides_values() {
        let mut l = Limits::new(2, false);
        l.set(0, Some(100.0));
        assert_eq!(l.stored(0), Some(100.0));
        assert_eq!(l.effective(0), None);
        assert!(!l.enabled());
    }

    #[test]
    fn limits_enabled_exposes_values() {
        let mut l = Limits::new(2, true);
        l.set(1, Some(5.0));
        assert_eq!(l.effective(1), Some(5.0));
        assert_eq!(l.effective(0), None);
        l.set(1, None);
        assert_eq!(l.effective(1), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_rejected() {
        let mut l = Limits::new(1, true);
        l.set(0, Some(0.0));
    }

    #[test]
    fn no_hooks_has_zero_overhead() {
        let mut h = NoHooks;
        let mut l = Limits::new(1, true);
        let z = h.on_async_submit(SimTime::ZERO, 0, ReqTag(0), 1.0, Channel::Write, &mut l);
        assert_eq!(z, 0.0);
    }
}

//! # mpisim — an MPI-like virtual-time runtime with asynchronous MPI-IO
//!
//! The execution substrate replacing MPICH/ROMIO in this reproduction of
//! *"I/O Behind the Scenes"* (CLUSTER 2024). It provides:
//!
//! * ranks executing [`Program`]s (scripted) or user closures
//!   ([`threaded::Threaded`]) in exact virtual time,
//! * synchronizing collectives (barrier, bcast) with a latency/bandwidth
//!   cost model,
//! * MPI-IO: blocking (`write`/`read`) and non-blocking (`iwrite`/`iread` +
//!   `wait`) file operations against a [`pfsim`] parallel file system,
//! * the paper's **ADIO bandwidth-limitation layer** (Sec. V): every I/O op
//!   runs on a per-request I/O thread that splits it into sub-requests and
//!   paces them against the rank's current limit (Case A sleeps / Case B
//!   deficit accounting),
//! * the PMPI-style observation boundary ([`IoHooks`]) and the limit
//!   control surface ([`Limits`]) that TMIO plugs into.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod hooks;
mod ops;
mod seqmap;
/// Closure-per-rank front end (each rank is an OS thread in virtual time).
pub mod threaded;
mod world;

pub use hooks::{IoHooks, Limits, NoHooks};
pub use ops::{FileId, Op, Program, ReqTag};
pub use pfsim::Channel;
// Fault-plan vocabulary, re-exported so callers configuring faults don't
// need a direct simcore dependency.
pub use simcore::{FaultPlan, IoErrorKind, RetryPolicy, SimError, SimResult, StallSnapshot};
pub use world::{
    CapacityNoiseCfg, OpErrorRecord, RankAccounting, RankDriver, RunSummary, ScriptedDriver,
    WatchdogCfg, World, WorldConfig,
};

//! Rank programs: the operations an MPI rank can execute.
//!
//! A [`Program`] is the scripted form of a rank's control flow — the op
//! sequence a real application would issue through MPI. Workload crates
//! build programs; the interpreter in [`crate::World`] executes them in
//! virtual time. The threaded closure API ([`crate::threaded`]) issues the
//! same ops one at a time instead.

use serde::{Deserialize, Serialize};

/// Handle to a simulated file (created via [`crate::World::create_file`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Caller-chosen tag pairing a non-blocking I/O op with its matching wait,
/// like an `MPI_Request` slot. Must be unique among a rank's outstanding
/// requests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ReqTag(pub u32);

/// One operation of a rank program.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Pure computation for a nominal duration (seconds). The world applies
    /// its configured compute noise.
    Compute {
        /// Nominal duration in seconds before noise.
        seconds: f64,
    },
    /// An in-memory copy of `bytes` (HACC-IO's `memcpy` block); modeled as
    /// compute at the configured memory-copy bandwidth, never jittered.
    Memcpy {
        /// Bytes copied.
        bytes: f64,
    },
    /// Synchronizing barrier across all ranks.
    Barrier,
    /// Broadcast of `bytes` from rank 0; modeled as a synchronizing
    /// collective costing `latency·⌈log₂ n⌉ + bytes/net_bw`.
    Bcast {
        /// Payload bytes.
        bytes: f64,
    },
    /// Blocking write (`MPI_File_write_at`): the rank stalls until the bytes
    /// are on the PFS.
    Write {
        /// Target file.
        file: FileId,
        /// Bytes written.
        bytes: f64,
    },
    /// Blocking read (`MPI_File_read_at`).
    Read {
        /// Source file.
        file: FileId,
        /// Bytes read.
        bytes: f64,
    },
    /// Non-blocking write (`MPI_File_iwrite_at`): handed to the rank's I/O
    /// thread, which starts immediately and paces sub-requests against the
    /// rank's current bandwidth limit. Must be matched by [`Op::Wait`].
    IWrite {
        /// Target file.
        file: FileId,
        /// Bytes written.
        bytes: f64,
        /// Request tag for the matching wait.
        tag: ReqTag,
    },
    /// Non-blocking read (`MPI_File_iread_at`). Must be matched by [`Op::Wait`].
    IRead {
        /// Source file.
        file: FileId,
        /// Bytes read.
        bytes: f64,
        /// Request tag for the matching wait.
        tag: ReqTag,
    },
    /// Completes a non-blocking request (`MPI_Wait`): returns immediately if
    /// the I/O thread already finished, otherwise blocks ("async lost" time).
    Wait {
        /// Tag of the request to complete.
        tag: ReqTag,
    },
    /// Non-blocking completion check (`MPI_Test`): never blocks; frees the
    /// request when it has completed. In a scripted program an unsuccessful
    /// test is simply a no-op probe — use [`Op::PollWait`] for the classic
    /// test-in-a-loop pattern.
    Test {
        /// Tag of the request to probe.
        tag: ReqTag,
    },
    /// Collective write (`MPI_File_write_at_all`): all ranks enter, the
    /// data is shuffled to ⌈√n⌉ aggregator ranks (two-phase I/O) which
    /// issue large merged transfers; everyone leaves when the transfer
    /// completes. `bytes` is the per-rank contribution. The paper's
    /// evaluation deliberately uses the harder non-collective setting;
    /// this op provides the baseline it is compared against.
    WriteAll {
        /// Target file.
        file: FileId,
        /// Bytes contributed by each rank.
        bytes: f64,
    },
    /// Collective read (`MPI_File_read_at_all`); see [`Op::WriteAll`].
    ReadAll {
        /// Source file.
        file: FileId,
        /// Bytes delivered to each rank.
        bytes: f64,
    },
    /// The busy-poll completion pattern the paper contrasts with true
    /// background I/O: test, compute `interval` seconds, repeat until done
    /// ("wasting computational resources on … checking request completion",
    /// Sec. II). The polling time is accounted as wait (lost) time.
    PollWait {
        /// Tag of the request to complete.
        tag: ReqTag,
        /// Compute time burned between probes, seconds.
        interval: f64,
    },
}

/// A rank's scripted op sequence.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program { ops: Vec::new() }
    }

    /// Builds from an op list.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Program { ops }
    }

    /// Appends an op (builder style).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates request-tag pairing: every `IWrite`/`IRead` is matched by a
    /// later `Wait` with the same tag before the tag is reused, and every
    /// `Wait` has a preceding unmatched submit. Returns a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut outstanding: std::collections::HashSet<ReqTag> = Default::default();
        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                Op::IWrite { tag, .. } | Op::IRead { tag, .. } if !outstanding.insert(tag) => {
                    return Err(format!("op {i}: tag {tag:?} reused while outstanding"));
                }
                Op::Wait { tag } | Op::PollWait { tag, .. } if !outstanding.remove(&tag) => {
                    return Err(format!("op {i}: wait on tag {tag:?} with no submit"));
                }
                // A test may or may not free the request at run time; for
                // static validation it must at least reference a live one.
                Op::Test { tag } if !outstanding.contains(&tag) => {
                    return Err(format!("op {i}: test on tag {tag:?} with no submit"));
                }
                _ => {}
            }
        }
        // Report the lowest-numbered unmatched tag: `HashSet` iteration
        // order varies between runs, and a diagnostic that names a different
        // tag each time is useless for bisecting a generator bug.
        if let Some(tag) = outstanding.iter().min_by_key(|t| t.0) {
            return Err(format!("program ends with unmatched request {tag:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_matched_pairs() {
        let p = Program::from_ops(vec![
            Op::IWrite {
                file: FileId(0),
                bytes: 10.0,
                tag: ReqTag(1),
            },
            Op::Compute { seconds: 1.0 },
            Op::Wait { tag: ReqTag(1) },
            Op::IWrite {
                file: FileId(0),
                bytes: 10.0,
                tag: ReqTag(1),
            },
            Op::Wait { tag: ReqTag(1) },
        ]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_tag_reuse() {
        let p = Program::from_ops(vec![
            Op::IWrite {
                file: FileId(0),
                bytes: 10.0,
                tag: ReqTag(1),
            },
            Op::IWrite {
                file: FileId(0),
                bytes: 10.0,
                tag: ReqTag(1),
            },
        ]);
        assert!(p.validate().unwrap_err().contains("reused"));
    }

    #[test]
    fn validate_rejects_orphan_wait() {
        let p = Program::from_ops(vec![Op::Wait { tag: ReqTag(9) }]);
        assert!(p.validate().unwrap_err().contains("no submit"));
    }

    #[test]
    fn validate_rejects_unmatched_submit() {
        let p = Program::from_ops(vec![Op::IRead {
            file: FileId(0),
            bytes: 1.0,
            tag: ReqTag(3),
        }]);
        assert!(p.validate().unwrap_err().contains("unmatched"));
    }

    #[test]
    fn unmatched_report_is_deterministic_lowest_tag() {
        // Several unmatched submits in shuffled order: the message must name
        // the lowest-numbered tag, run after run, regardless of HashSet
        // iteration order.
        let submit = |tag| Op::IWrite {
            file: FileId(0),
            bytes: 1.0,
            tag: ReqTag(tag),
        };
        for _ in 0..16 {
            let p = Program::from_ops(vec![submit(9), submit(3), submit(7), submit(4)]);
            assert_eq!(
                p.validate().unwrap_err(),
                "program ends with unmatched request ReqTag(3)"
            );
        }
    }

    #[test]
    fn multiple_outstanding_tags_allowed() {
        let p = Program::from_ops(vec![
            Op::IWrite {
                file: FileId(0),
                bytes: 10.0,
                tag: ReqTag(1),
            },
            Op::IRead {
                file: FileId(0),
                bytes: 10.0,
                tag: ReqTag(2),
            },
            Op::Wait { tag: ReqTag(2) },
            Op::Wait { tag: ReqTag(1) },
        ]);
        assert!(p.validate().is_ok());
    }
}

//! Windowed map over monotonically assigned `u64` ids.
//!
//! The world hands out task and flow ids from a counter and drops each entry
//! when it completes, so at any instant the live ids occupy a narrow window
//! near the top of the sequence. [`SeqMap`] exploits that: entries live in a
//! `VecDeque` indexed by `id - base`, giving O(1) hash-free insert/lookup/
//! remove on the event hot path, with memory bounded by the *span* of live
//! ids (the window advances as the oldest entries retire). Iteration is in
//! id order for free — no collect-and-sort pass in diagnostics paths.

use simcore::Invariant;
use std::collections::VecDeque;

/// A map from monotone `u64` ids to values (see module docs).
#[derive(Debug)]
pub(crate) struct SeqMap<V> {
    /// Id of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<V>>,
    len: usize,
}

impl<V> Default for SeqMap<V> {
    fn default() -> Self {
        SeqMap {
            base: 0,
            slots: VecDeque::new(),
            len: 0,
        }
    }
}

impl<V> SeqMap<V> {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        SeqMap {
            base: 0,
            slots: VecDeque::with_capacity(capacity),
            len: 0,
        }
    }

    /// Live-entry count; part of the container API, currently exercised by
    /// the invariants in this module's tests.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn index(&self, id: u64) -> Option<usize> {
        id.checked_sub(self.base).map(|i| i as usize)
    }

    /// Inserts `id`. Ids must be assigned by a counter: inserting below the
    /// current window (an id whose slot was already retired) is a logic
    /// error, as is double insertion.
    pub(crate) fn insert(&mut self, id: u64, val: V) {
        if self.slots.is_empty() {
            // Re-anchor an empty window: the front never needs to move back.
            self.base = id;
        }
        let i = self.index(id).invariant("id below the retired window");
        while self.slots.len() <= i {
            self.slots.push_back(None);
        }
        let slot = &mut self.slots[i];
        assert!(slot.is_none(), "SeqMap: duplicate id {id}");
        *slot = Some(val);
        self.len += 1;
    }

    pub(crate) fn get(&self, id: u64) -> Option<&V> {
        self.index(id)
            .and_then(|i| self.slots.get(i))
            .and_then(|s| s.as_ref())
    }

    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        match self.index(id) {
            Some(i) => self.slots.get_mut(i).and_then(|s| s.as_mut()),
            None => None,
        }
    }

    /// Removes `id`, advancing the window past any retired prefix.
    pub(crate) fn remove(&mut self, id: u64) -> Option<V> {
        let i = self.index(id)?;
        let val = self.slots.get_mut(i)?.take()?;
        self.len -= 1;
        // Advance the window past the retired prefix; the allocation is
        // kept and the next insert re-anchors an emptied window.
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(val)
    }

    /// Live entries in ascending id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (self.base + i as u64, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = SeqMap::default();
        m.insert(0, "a");
        m.insert(1, "b");
        m.insert(2, "c");
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(1), Some(&"b"));
        assert_eq!(m.remove(1), Some("b"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(0), Some(&"a"));
        assert_eq!(m.get(2), Some(&"c"));
    }

    #[test]
    fn window_advances_past_retired_prefix() {
        let mut m = SeqMap::default();
        for id in 0..100u64 {
            m.insert(id, id);
        }
        for id in 0..99u64 {
            assert_eq!(m.remove(id), Some(id));
        }
        assert_eq!(m.len(), 1);
        assert!(m.slots.len() <= 1, "window did not advance");
        m.insert(100, 100);
        assert_eq!(m.get(99), Some(&99));
        assert_eq!(m.get(100), Some(&100));
    }

    #[test]
    fn empty_map_reanchors_far_ahead() {
        let mut m = SeqMap::default();
        m.insert(0, 0u32);
        m.remove(0);
        // A long-running world can retire millions of ids; a fresh insert
        // must not materialize the gap.
        m.insert(5_000_000, 1);
        assert!(m.slots.len() <= 1);
        assert_eq!(m.get(5_000_000), Some(&1));
        assert_eq!(m.get(0), None);
    }

    #[test]
    fn iterates_in_id_order() {
        let mut m = SeqMap::default();
        for id in [3u64, 4, 5, 6] {
            m.insert(id, id * 10);
        }
        m.remove(4);
        let got: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(got, [(3, 30), (5, 50), (6, 60)]);
    }

    #[test]
    fn get_mut_updates() {
        let mut m = SeqMap::default();
        m.insert(7, 1u32);
        *m.get_mut(7).unwrap() += 9;
        assert_eq!(m.get(7), Some(&10));
        assert!(!m.is_empty());
        let _ = SeqMap::<u32>::with_capacity(8);
    }
}

//! Closure-per-rank execution: the ergonomic "write it like MPI" front end.
//!
//! Each rank runs as a real OS thread executing user code against a
//! [`RankCtx`](crate::threaded::RankCtx); every blocking call is translated into an [`Op`] and
//! rendezvoused with the virtual-time engine. Because application code
//! between calls takes zero *virtual* time, executing ranks one-at-a-time at
//! their op boundaries is exact, not an approximation.
//!
//! ```
//! use mpisim::{threaded::Threaded, WorldConfig, NoHooks};
//!
//! let mut tw = Threaded::new(WorldConfig::new(4), NoHooks);
//! let out = tw.create_file("out.dat");
//! let (summary, _hooks) = tw.run(move |ctx| {
//!     ctx.compute(0.010);
//!     let req = ctx.iwrite(out, 1e6);
//!     ctx.compute(0.010);
//!     ctx.wait(req);
//!     ctx.barrier();
//! });
//! assert!(summary.makespan() > 0.019);
//! ```

use crate::hooks::IoHooks;
use crate::ops::{FileId, Op, ReqTag};
use crate::world::{RankDriver, RunSummary, World, WorldConfig};
use crossbeam::channel::{bounded, Receiver, Sender};
use simcore::{Invariant, IoErrorKind, SimTime};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;

enum Msg {
    Op(Op),
    Done,
}

struct Ack {
    now: SimTime,
    /// Completion status returned by `Op::Test`.
    test_result: Option<bool>,
    /// A terminal I/O-op error delivered to this rank since the last ack.
    io_error: Option<IoErrorKind>,
}

/// Handle to an outstanding non-blocking request (an `MPI_Request`).
#[derive(Debug)]
#[must_use = "every request must be completed with ctx.wait(...)"]
pub struct Request {
    tag: ReqTag,
}

/// The per-rank context handed to the user closure.
pub struct RankCtx {
    rank: usize,
    n_ranks: usize,
    now: SimTime,
    to_engine: Sender<Msg>,
    from_engine: Receiver<Ack>,
    next_tag: u32,
    last_error: Option<IoErrorKind>,
}

impl RankCtx {
    /// This rank's index in `[0, n_ranks)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Current virtual time (as of the last completed op).
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn call(&mut self, op: Op) -> Option<bool> {
        self.to_engine.send(Msg::Op(op)).invariant("engine alive");
        let ack = self.from_engine.recv().invariant("engine alive");
        self.now = ack.now;
        if ack.io_error.is_some() {
            self.last_error = ack.io_error;
        }
        ack.test_result
    }

    /// Takes the most recent terminal I/O-op error delivered to this rank
    /// (fault injection: retries exhausted or a cancelled request), if any.
    /// Check after the wait that should have completed the op; a failed
    /// `wait` returns normally instead of hanging, with the error held here.
    pub fn take_io_error(&mut self) -> Option<IoErrorKind> {
        self.last_error.take()
    }

    /// Computes for `seconds` of nominal time (world noise applies).
    pub fn compute(&mut self, seconds: f64) {
        let _ = self.call(Op::Compute { seconds });
    }

    /// Copies `bytes` in memory.
    pub fn memcpy(&mut self, bytes: f64) {
        let _ = self.call(Op::Memcpy { bytes });
    }

    /// Synchronizing barrier.
    pub fn barrier(&mut self) {
        let _ = self.call(Op::Barrier);
    }

    /// Broadcast of `bytes` (synchronizing collective).
    pub fn bcast(&mut self, bytes: f64) {
        let _ = self.call(Op::Bcast { bytes });
    }

    /// Blocking write (`MPI_File_write_at`).
    pub fn write(&mut self, file: FileId, bytes: f64) {
        let _ = self.call(Op::Write { file, bytes });
    }

    /// Blocking read (`MPI_File_read_at`).
    pub fn read(&mut self, file: FileId, bytes: f64) {
        let _ = self.call(Op::Read { file, bytes });
    }

    /// Collective write (`MPI_File_write_at_all`): two-phase I/O through
    /// ⌈√n⌉ aggregators; synchronizing across all ranks.
    pub fn write_all(&mut self, file: FileId, bytes: f64) {
        let _ = self.call(Op::WriteAll { file, bytes });
    }

    /// Collective read (`MPI_File_read_at_all`).
    pub fn read_all(&mut self, file: FileId, bytes: f64) {
        let _ = self.call(Op::ReadAll { file, bytes });
    }

    /// Non-blocking write (`MPI_File_iwrite_at`); complete with [`RankCtx::wait`].
    pub fn iwrite(&mut self, file: FileId, bytes: f64) -> Request {
        let tag = ReqTag(self.next_tag);
        self.next_tag += 1;
        let _ = self.call(Op::IWrite { file, bytes, tag });
        Request { tag }
    }

    /// Non-blocking read (`MPI_File_iread_at`); complete with [`RankCtx::wait`].
    pub fn iread(&mut self, file: FileId, bytes: f64) -> Request {
        let tag = ReqTag(self.next_tag);
        self.next_tag += 1;
        let _ = self.call(Op::IRead { file, bytes, tag });
        Request { tag }
    }

    /// Completes a non-blocking request (`MPI_Wait`).
    pub fn wait(&mut self, req: Request) {
        let _ = self.call(Op::Wait { tag: req.tag });
    }

    /// Probes a request (`MPI_Test`): returns true once the I/O thread has
    /// finished. The request stays live — complete it with [`RankCtx::wait`].
    pub fn test(&mut self, req: &Request) -> bool {
        self.call(Op::Test { tag: req.tag })
            .invariant("test returns a status")
    }

    /// The test-in-a-loop completion pattern: polls every `interval`
    /// seconds of burned compute until the request finishes, then frees it.
    pub fn poll_wait(&mut self, req: Request, interval: f64) {
        let _ = self.call(Op::PollWait {
            tag: req.tag,
            interval,
        });
    }
}

struct ThreadedDriver {
    op_rx: Vec<Receiver<Msg>>,
    ack_tx: Vec<Sender<Ack>>,
    started: Vec<bool>,
    test_results: Vec<Option<bool>>,
    io_errors: Vec<Option<IoErrorKind>>,
}

impl RankDriver for ThreadedDriver {
    fn next_op(&mut self, rank: usize, now: SimTime) -> Option<Op> {
        // Acknowledge the previous op's completion (the first call has none;
        // the rank thread starts eagerly without waiting for a kick-off).
        if self.started[rank] {
            let test_result = self.test_results[rank].take();
            let io_error = self.io_errors[rank].take();
            self.ack_tx[rank]
                .send(Ack {
                    now,
                    test_result,
                    io_error,
                })
                .invariant("rank thread alive");
        } else {
            self.started[rank] = true;
        }
        match self.op_rx[rank].recv().invariant("rank thread alive") {
            Msg::Op(op) => Some(op),
            Msg::Done => None,
        }
    }

    fn on_test_result(&mut self, rank: usize, done: bool) {
        self.test_results[rank] = Some(done);
    }

    fn on_op_error(&mut self, rank: usize, kind: IoErrorKind) {
        self.io_errors[rank] = Some(kind);
    }
}

/// Builder/runner for closure-per-rank simulations.
pub struct Threaded<H: IoHooks> {
    cfg: WorldConfig,
    hooks: H,
    files: Vec<String>,
}

impl<H: IoHooks + Send + 'static> Threaded<H> {
    /// Creates a runner with the given configuration and observer.
    pub fn new(cfg: WorldConfig, hooks: H) -> Self {
        Threaded {
            cfg,
            hooks,
            files: Vec::new(),
        }
    }

    /// Registers a simulated file before the run.
    pub fn create_file(&mut self, name: &str) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(name.to_string());
        id
    }

    /// Spawns one thread per rank running `body` and drives the virtual-time
    /// engine on the calling thread. Returns the run summary and the
    /// observer (with whatever it recorded).
    ///
    /// If a rank closure panics, the run drains cleanly (no hang, no
    /// secondary `expect` failure masking the cause) and the *original*
    /// panic payload is re-raised from this call.
    pub fn run<F>(self, body: F) -> (RunSummary, H)
    where
        F: Fn(&mut RankCtx) + Send + Sync + 'static,
    {
        let n = self.cfg.n_ranks;
        let body = Arc::new(body);
        // Rank-closure panic payloads, in the order the panics happened.
        // A panicking rank records its payload *before* reporting Done, so
        // the original cause always precedes any secondary channel panics.
        type Payload = Box<dyn std::any::Any + Send>;
        let panics: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
        let mut op_rx = Vec::with_capacity(n);
        let mut ack_tx = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for rank in 0..n {
            let (otx, orx) = bounded::<Msg>(1);
            let (atx, arx) = bounded::<Ack>(1);
            op_rx.push(orx);
            ack_tx.push(atx);
            let body = Arc::clone(&body);
            let panics = Arc::clone(&panics);
            handles.push(
                thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(512 * 1024)
                    .spawn(move || {
                        let mut ctx = RankCtx {
                            rank,
                            n_ranks: n,
                            now: SimTime::ZERO,
                            to_engine: otx,
                            from_engine: arx,
                            next_tag: 0,
                            last_error: None,
                        };
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
                            panics.lock().invariant("panic list").push(payload);
                        }
                        // Report Done even after a panic so the engine sees
                        // the rank finish instead of dying on a closed
                        // channel mid-event.
                        let _ = ctx.to_engine.send(Msg::Done);
                    })
                    .invariant("spawn rank thread"),
            );
        }
        let driver = ThreadedDriver {
            op_rx,
            ack_tx,
            started: vec![false; n],
            test_results: vec![None; n],
            io_errors: vec![None; n],
        };
        let mut world = World::with_driver(self.cfg, Box::new(driver), self.hooks);
        for name in &self.files {
            world.create_file(name);
        }
        let run_result = catch_unwind(AssertUnwindSafe(|| world.run()));
        if run_result.is_err() {
            // The engine died (e.g. deadlock: a panicked rank left its peers
            // stuck in a collective). Drop the world to close the channels
            // so blocked rank threads unblock and drain.
            drop(world);
            for h in handles {
                let _ = h.join();
            }
            let first = panics.lock().invariant("panic list").drain(..).next();
            match (first, run_result) {
                // Prefer the rank closure's payload over the engine's
                // secondary deadlock panic.
                (Some(payload), _) => resume_unwind(payload),
                (None, Err(engine_payload)) => resume_unwind(engine_payload),
                (None, Ok(_)) => unreachable!("run_result checked above"),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        // The engine completed, but a rank may still have panicked (its Done
        // let the run finish): surface the original payload.
        if let Some(payload) = panics.lock().invariant("panic list").drain(..).next() {
            resume_unwind(payload);
        }
        let summary = run_result.unwrap_or_else(|_| unreachable!("checked above"));
        (summary, world.into_hooks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoHooks;

    #[test]
    fn threaded_matches_expectation() {
        let mut tw = Threaded::new(WorldConfig::new(2), NoHooks);
        let f = tw.create_file("x");
        let (summary, _) = tw.run(move |ctx| {
            ctx.compute(0.5);
            ctx.write(f, 1e9); // 2 ranks share 106 GB/s -> ~0.0189 s
            ctx.barrier();
        });
        let mk = summary.makespan();
        assert!(mk > 0.5 && mk < 0.6, "makespan {mk}");
    }

    #[test]
    fn async_overlap_hides_io() {
        let mut tw = Threaded::new(WorldConfig::new(1), NoHooks);
        let f = tw.create_file("x");
        let (summary, _) = tw.run(move |ctx| {
            // 1 GB at 106 GB/s takes ~9.4 ms, hidden behind 100 ms compute.
            let r = ctx.iwrite(f, 1e9);
            ctx.compute(0.1);
            ctx.wait(r);
        });
        let mk = summary.makespan();
        assert!((mk - 0.1).abs() < 1e-3, "makespan {mk}");
        assert!(summary.accounting[0].wait_write < 1e-9);
    }

    #[test]
    fn ranks_see_their_ids() {
        let tw = Threaded::new(WorldConfig::new(4), NoHooks);
        let (summary, _) = tw.run(move |ctx| {
            assert!(ctx.rank() < ctx.n_ranks());
            ctx.compute(0.001 * (ctx.rank() + 1) as f64);
        });
        assert!((summary.makespan() - 0.004).abs() < 1e-9);
    }

    #[test]
    fn closure_panic_propagates_original_payload() {
        // A rank panics while its peers sit in a barrier. The run must not
        // hang or die on a secondary channel expect; the original payload
        // must come back out of `run`.
        let tw = Threaded::new(WorldConfig::new(3), NoHooks);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            tw.run(move |ctx| {
                if ctx.rank() == 1 {
                    panic!("boom-original-42");
                }
                ctx.compute(0.001);
                ctx.barrier();
            })
        }));
        let payload = res.expect_err("run must re-raise the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("boom-original-42"),
            "expected the closure's payload, got: {msg:?}"
        );
    }

    #[test]
    fn closure_panic_without_collectives_still_propagates() {
        // Here the engine completes normally (no rank is left blocked); the
        // payload must still surface after the drain.
        let tw = Threaded::new(WorldConfig::new(2), NoHooks);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            tw.run(move |ctx| {
                ctx.compute(0.001);
                if ctx.rank() == 0 {
                    panic!("solo-boom");
                }
            })
        }));
        let payload = res.expect_err("run must re-raise the panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("solo-boom"), "got: {msg:?}");
    }

    #[test]
    fn now_advances_for_rank() {
        let tw = Threaded::new(WorldConfig::new(1), NoHooks);
        let (_, _) = tw.run(move |ctx| {
            let t0 = ctx.now();
            ctx.compute(0.25);
            assert!((ctx.now() - t0 - 0.25).abs() < 1e-9);
        });
    }
}

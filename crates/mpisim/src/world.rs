//! The virtual-time MPI world: rank interpreter, collectives, and the
//! ADIO-style I/O thread with sub-request pacing.
//!
//! Execution model (mirrors the paper's modified MPICH, Sec. V):
//!
//! * every MPI-IO call is redirected to a per-rank **I/O thread**;
//! * asynchronous ops return immediately to the rank and are backed by a
//!   generalized-request analogue ([`crate::ops::ReqTag`]);
//! * the I/O thread splits each request into fixed-size **sub-requests**,
//!   executes each as a blocking PFS transfer, then compares the achieved
//!   time with the required time `size / limit`:
//!   - **Case A** (too fast): sleep the difference,
//!   - **Case B** (too slow): accumulate the overshoot as a *deficit* that
//!     shortens later sleeps;
//! * the per-rank limit is read fresh at every sub-request boundary, so a
//!   tool updating [`crate::hooks::Limits`] mid-request takes effect like a
//!   shared variable would.

use crate::hooks::{IoHooks, Limits};
use crate::ops::{FileId, Op, Program, ReqTag};
use crate::seqmap::SeqMap;
use pfsim::{BurstBuffer, BurstBufferConfig, Channel, FlowId, FlowSpec, Pfs, PfsConfig};
use simcore::{
    rank_phase_stream, stream_rng, EventKey, EventQueue, FaultPlan, Invariant, IoErrorKind, Noise,
    SimError, SimResult, SimTime, StallSnapshot, StepSeries,
};
use std::collections::HashMap;

/// Configuration of a simulated run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of MPI ranks.
    pub n_ranks: usize,
    /// PFS channel capacities.
    pub pfs: PfsConfig,
    /// ADIO sub-request size in bytes (paper: "predefined size").
    pub subreq_bytes: f64,
    /// Noise applied to every `Compute` op's nominal duration.
    pub compute_noise: Noise,
    /// Collective latency term (seconds per tree level).
    pub net_latency: f64,
    /// Collective bandwidth term (bytes/s).
    pub net_bandwidth: f64,
    /// Memory-copy bandwidth for `Memcpy` ops (bytes/s).
    pub memcpy_bandwidth: f64,
    /// Whether the modified-MPICH limiter is active (limits take effect).
    pub limiter_enabled: bool,
    /// Master seed for all noise streams.
    pub seed: u64,
    /// Optional periodic PFS capacity noise (I/O variability, Fig. 14).
    pub capacity_noise: Option<CapacityNoiseCfg>,
    /// I/O↔compute interference strength (the resource competition of
    /// background I/O threads, ref. \[33\] in the paper). Each completed
    /// sub-request charges its rank a CPU toll of
    /// `alpha · (concurrent flows / ranks) · subreq_bytes / capacity`,
    /// applied to the rank's next compute phase — bursty synchronized I/O
    /// perturbs compute, paced I/O barely does. 0 disables the effect.
    pub interference_alpha: f64,
    /// Optional per-rank burst-buffer tier (the paper's future-work
    /// extension): write calls complete at absorption speed and a
    /// background drain flow — capped at the drain rate and, when the
    /// limiter is active, at the rank's bandwidth limit — carries the bytes
    /// to the PFS. Reads bypass the buffer.
    pub burst_buffer: Option<BurstBufferConfig>,
    /// Whether the ADIO limiter also paces *blocking* I/O calls. The
    /// paper's MPICH extension limits synchronous and asynchronous
    /// operations alike (Sec. V), so this defaults to true; set false to
    /// ablate the cost of throttled trailing sync writes.
    pub limit_sync_ops: bool,
    /// Record PFS rate series (disable for large sweeps).
    pub record_pfs: bool,
    /// Seeded fault schedule replayed against the run. The default (empty)
    /// plan reproduces the fault-free run bit-for-bit.
    pub faults: FaultPlan,
    /// Progress-watchdog thresholds (see [`WatchdogCfg`]). The defaults are
    /// generous enough that no legitimate scenario trips them; a supervised
    /// run that does trip fails with a [`simcore::StallSnapshot`] instead of
    /// spinning forever.
    pub watchdog: WatchdogCfg,
}

/// Thresholds of the virtual-time progress watchdog in [`World::try_run`].
///
/// *Progress* is narrowly defined: bytes completing on the PFS, an I/O
/// request finishing (or failing), a collective releasing, or a rank
/// retiring a fresh program op. Pure event traffic — poll probes on a
/// frozen request, capacity ticks during an endless outage — does **not**
/// count, so a run whose event loop is alive but whose application can
/// never advance is detected and failed with a diagnostic snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogCfg {
    /// Maximum events processed without progress before the run is failed.
    /// Bounds live-lock cycles (e.g. a `PollWait` probing a request whose
    /// channel is under a never-ending outage).
    pub max_futile_events: u64,
    /// Maximum *virtual* seconds without progress before the run is failed.
    /// Infinite by default: long fault windows legitimately freeze I/O for
    /// a long stretch of virtual time while other ranks stay blocked.
    pub max_stall: f64,
}

impl Default for WatchdogCfg {
    fn default() -> Self {
        WatchdogCfg {
            // The busiest legitimate no-progress stretches observed in the
            // paper sweeps are a few hundred events (all ranks blocked on
            // I/O across a fault edge); one million leaves three orders of
            // magnitude of headroom while still failing a live-locked run
            // within wall-clock milliseconds.
            max_futile_events: 1_000_000,
            max_stall: f64::INFINITY,
        }
    }
}

/// Periodic multiplicative noise on PFS capacity.
#[derive(Clone, Copy, Debug)]
pub struct CapacityNoiseCfg {
    /// Re-draw period in seconds.
    pub period: f64,
    /// Noise model for the capacity factor.
    pub noise: Noise,
}

impl WorldConfig {
    /// A world with paper-like defaults for `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Self {
        WorldConfig {
            n_ranks,
            pfs: PfsConfig::default(),
            subreq_bytes: 1024.0 * 1024.0,
            compute_noise: Noise::None,
            net_latency: 5e-6,
            net_bandwidth: 12.5e9,
            memcpy_bandwidth: 10e9,
            limiter_enabled: false,
            seed: 0xD5EA_5EED,
            capacity_noise: None,
            interference_alpha: 0.0,
            burst_buffer: None,
            limit_sync_ops: true,
            record_pfs: true,
            faults: FaultPlan::default(),
            watchdog: WatchdogCfg::default(),
        }
    }

    /// Rejects configurations the engine cannot execute: NaN, zero or
    /// negative capacities and sizes, bad noise periods, and invalid fault
    /// plans. [`World::new`] asserts the load-bearing subset; supervised
    /// paths call this first so misconfiguration surfaces as a typed
    /// [`SimError`] instead of a panic.
    pub fn validate(&self) -> SimResult<()> {
        fn pos(field: &str, v: f64) -> SimResult<()> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(SimError::invalid_config(
                    field,
                    format!("must be finite and positive, got {v}"),
                ))
            }
        }
        if self.n_ranks == 0 {
            return Err(SimError::invalid_config(
                "n_ranks",
                "need at least one rank",
            ));
        }
        pos("subreq_bytes", self.subreq_bytes)?;
        pos("pfs.write_capacity", self.pfs.write_capacity)?;
        pos("pfs.read_capacity", self.pfs.read_capacity)?;
        pos("net_bandwidth", self.net_bandwidth)?;
        pos("memcpy_bandwidth", self.memcpy_bandwidth)?;
        if !self.net_latency.is_finite() || self.net_latency < 0.0 {
            return Err(SimError::invalid_config(
                "net_latency",
                format!("must be finite and >= 0, got {}", self.net_latency),
            ));
        }
        if !self.interference_alpha.is_finite() || self.interference_alpha < 0.0 {
            return Err(SimError::invalid_config(
                "interference_alpha",
                format!("must be finite and >= 0, got {}", self.interference_alpha),
            ));
        }
        if let Some(cn) = self.capacity_noise {
            pos("capacity_noise.period", cn.period)?;
        }
        if let Some(bb) = self.burst_buffer {
            pos("burst_buffer.size_bytes", bb.size_bytes)?;
            pos("burst_buffer.absorb_rate", bb.absorb_rate)?;
            pos("burst_buffer.drain_rate", bb.drain_rate)?;
        }
        if self.watchdog.max_futile_events == 0 {
            return Err(SimError::invalid_config(
                "watchdog.max_futile_events",
                "must be at least 1",
            ));
        }
        if self.watchdog.max_stall.is_nan() || self.watchdog.max_stall <= 0.0 {
            return Err(SimError::invalid_config(
                "watchdog.max_stall",
                format!(
                    "must be positive (or infinite), got {}",
                    self.watchdog.max_stall
                ),
            ));
        }
        self.faults.validate()
    }

    /// Enables the bandwidth limiter (builder style).
    pub fn with_limiter(mut self, on: bool) -> Self {
        self.limiter_enabled = on;
        self
    }

    /// Sets the compute-noise model (builder style).
    pub fn with_compute_noise(mut self, noise: Noise) -> Self {
        self.compute_noise = noise;
        self
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the progress-watchdog thresholds (builder style).
    pub fn with_watchdog(mut self, watchdog: WatchdogCfg) -> Self {
        self.watchdog = watchdog;
        self
    }
}

/// Provides each rank's next op. Scripted programs and the threaded closure
/// API both implement this.
pub trait RankDriver: Send {
    /// Returns rank `rank`'s next op at virtual time `now`, or `None` when
    /// the rank's program is finished. For external drivers this call also
    /// acknowledges completion of the previous op.
    fn next_op(&mut self, rank: usize, now: SimTime) -> Option<Op>;

    /// Delivers the outcome of an [`Op::Test`] before the next `next_op`
    /// call (external drivers forward it to the application thread).
    fn on_test_result(&mut self, rank: usize, done: bool) {
        let _ = (rank, done);
    }

    /// Delivers a terminal I/O-op failure for `rank` (retries exhausted or
    /// the request was cancelled) before the rank's next `next_op` call.
    fn on_op_error(&mut self, rank: usize, kind: IoErrorKind) {
        let _ = (rank, kind);
    }
}

/// Driver over pre-built [`Program`]s.
pub struct ScriptedDriver {
    programs: Vec<Program>,
    pcs: Vec<usize>,
}

impl ScriptedDriver {
    /// Creates a driver; one program per rank.
    pub fn new(programs: Vec<Program>) -> Self {
        for (i, p) in programs.iter().enumerate() {
            if let Err(e) = p.validate() {
                panic!("rank {i} program invalid: {e}");
            }
        }
        let pcs = vec![0; programs.len()];
        ScriptedDriver { programs, pcs }
    }
}

impl RankDriver for ScriptedDriver {
    fn next_op(&mut self, rank: usize, _now: SimTime) -> Option<Op> {
        let pc = self.pcs[rank];
        let op = self.programs[rank].ops().get(pc).copied();
        if op.is_some() {
            self.pcs[rank] = pc + 1;
        }
        op
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TaskId(u64);

/// The per-request I/O-thread state (one in-flight MPI-IO operation).
struct IoTask {
    rank: usize,
    /// `Some` for async requests; `None` for blocking calls.
    tag: Option<ReqTag>,
    channel: Channel,
    bytes_left: f64,
    /// Deficit accumulated by Case B, spent shortening Case A sleeps.
    deficit: f64,
    /// Size and start time of the sub-request currently on the PFS.
    subreq_bytes: f64,
    subreq_started: SimTime,
    /// Failed attempts of the current sub-request (reset on success).
    attempts: u32,
    /// Per-task fault-decision stream; `None` when no error model is active.
    fault_rng: Option<rand::rngs::SmallRng>,
    /// Marked by the fault plan: abort after the in-flight sub-request.
    cancelled: bool,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum BlockKind {
    Compute,
    Overhead,
    SyncIo(TaskId),
    Wait(ReqTag),
    Collective(u64),
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockKind),
    Done,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum ReqState {
    InFlight,
    Completed,
    /// The I/O thread gave up on the request (retries exhausted or
    /// cancelled); the matching wait returns with the error.
    Failed(IoErrorKind),
}

/// Cumulative per-rank time accounting kept by the runtime itself (tools
/// like TMIO keep richer records through hooks; this is the ground truth the
/// tests cross-check against).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankAccounting {
    /// Seconds in `Compute` ops.
    pub compute: f64,
    /// Seconds in `Memcpy` ops.
    pub memcpy: f64,
    /// Seconds blocked in synchronous writes.
    pub sync_write: f64,
    /// Seconds blocked in synchronous reads.
    pub sync_read: f64,
    /// Seconds blocked in `Wait` for write requests ("async write lost").
    pub wait_write: f64,
    /// Seconds blocked in `Wait` for read requests ("async read lost").
    pub wait_read: f64,
    /// Seconds blocked in collectives.
    pub collective: f64,
    /// Seconds of injected tool overhead (peri-runtime).
    pub overhead: f64,
    /// Seconds the rank's I/O thread spent in retry backoff sleeps
    /// (fault injection); zero in fault-free runs.
    pub retry: f64,
}

/// One outstanding async request of a rank. Ranks keep at most a handful
/// outstanding, so a linear-scanned inline vector beats hashing on the
/// per-event path.
#[derive(Clone, Copy, Debug)]
struct ReqEntry {
    tag: ReqTag,
    state: ReqState,
    channel: Channel,
}

struct RankState {
    status: Status,
    requests: Vec<ReqEntry>,
    compute_count: u64,
    collective_seq: u64,
    /// Async submits issued so far (indexes [`simcore::CancelSpec`]).
    async_seq: u64,
    wait_entered: SimTime,
    sync_entered: SimTime,
    sync_bytes: f64,
    pending_toll: f64,
    /// Tag currently being poll-waited (guards the one-shot wait-enter hook).
    polling: Option<ReqTag>,
    /// Op to re-execute on next resume (PollWait retry).
    pending_repeat: Option<Op>,
    acct: RankAccounting,
    finished_at: Option<SimTime>,
}

impl RankState {
    fn new() -> Self {
        RankState {
            status: Status::Runnable,
            requests: Vec::with_capacity(4),
            compute_count: 0,
            collective_seq: 0,
            async_seq: 0,
            wait_entered: SimTime::ZERO,
            sync_entered: SimTime::ZERO,
            sync_bytes: 0.0,
            pending_toll: 0.0,
            polling: None,
            pending_repeat: None,
            acct: RankAccounting::default(),
            finished_at: None,
        }
    }

    fn req(&self, tag: ReqTag) -> Option<&ReqEntry> {
        self.requests.iter().find(|r| r.tag == tag)
    }

    fn req_mut(&mut self, tag: ReqTag) -> Option<&mut ReqEntry> {
        self.requests.iter_mut().find(|r| r.tag == tag)
    }

    /// Unregisters `tag`. Order is irrelevant (lookups are by tag), so the
    /// swap-remove keeps this O(1) after the scan.
    fn remove_req(&mut self, tag: ReqTag) -> Option<ReqEntry> {
        let i = self.requests.iter().position(|r| r.tag == tag)?;
        Some(self.requests.swap_remove(i))
    }
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum CollKind {
    Barrier,
    Bcast(f64),
    /// Two-phase collective I/O: per-rank bytes on the given channel.
    CollIo(Channel, f64),
}

struct Collective {
    kind: CollKind,
    arrived: usize,
    /// Outstanding aggregator flows of a [`CollKind::CollIo`] transfer phase.
    pending: usize,
}

/// What a live PFS flow belongs to. Stored in a [`SeqMap`] keyed by
/// [`FlowId`], replacing three hash containers on the completion hot path.
#[derive(Clone, Copy, Debug)]
enum FlowOwner {
    /// A sub-request of an I/O task; completion drives pacing.
    Task(TaskId),
    /// A burst-buffer drain; nobody waits on it.
    Background,
    /// An aggregator transfer of collective I/O `id`.
    Coll(u64),
}

/// Cap on how many same-timestamp events [`World::try_run`] pops in one
/// batch before re-entering the scheduler loop.
const MAX_BATCH: usize = 64;

#[derive(Clone, Copy, Debug)]
enum Event {
    Resume(usize),
    PfsWake,
    IoTaskNext(TaskId),
    /// A burst-buffer absorption finished (write path with BB configured).
    BbDone(TaskId),
    /// Two-phase collective I/O: the shuffle finished, aggregators start.
    CollIoStart(u64),
    CollectiveRelease(u64),
    CapacityTick(u64),
    /// A channel-fault window starts or ends: recompute effective capacity.
    FaultEdge,
}

/// One terminal I/O-op failure surfaced to the application (fault
/// injection: retries exhausted or the request was cancelled).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpErrorRecord {
    /// Rank that issued the failed op.
    pub rank: usize,
    /// Request tag for async ops; `None` for blocking calls.
    pub tag: Option<ReqTag>,
    /// The injected error (maps to a POSIX errno).
    pub kind: IoErrorKind,
    /// Virtual time the failure surfaced, seconds.
    pub at: f64,
    /// Sub-request attempts consumed when the op was failed.
    pub attempts: u32,
}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Time the last rank finished (the application makespan).
    pub end_time: SimTime,
    /// Per-rank finish times.
    pub finished_at: Vec<SimTime>,
    /// Per-rank time accounting.
    pub accounting: Vec<RankAccounting>,
    /// Terminal I/O-op failures, in the order they surfaced. Empty in
    /// fault-free runs.
    pub op_errors: Vec<OpErrorRecord>,
}

impl RunSummary {
    /// Makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.end_time.as_secs()
    }
}

/// The simulated MPI world. See module docs.
pub struct World<H: IoHooks> {
    cfg: WorldConfig,
    queue: EventQueue<Event>,
    pfs: Pfs,
    pfs_wake: Option<EventKey>,
    ranks: Vec<RankState>,
    limits: Limits,
    hooks: H,
    driver: Box<dyn RankDriver>,
    /// Resident harvest buffer for [`World::drain_pfs`].
    pfs_done: Vec<(SimTime, FlowId)>,
    /// Live I/O tasks, keyed by the monotone [`TaskId`] counter.
    tasks: SeqMap<IoTask>,
    next_task: u64,
    /// Live PFS flows and what they belong to, keyed by the monotone
    /// [`FlowId`] counter.
    flows: SeqMap<FlowOwner>,
    collectives: HashMap<u64, Collective>,
    files: Vec<(String, f64)>,
    /// Per-rank burst buffers when configured.
    bbs: Vec<BurstBuffer>,
    live_ranks: usize,
    cap_tick: u64,
    cap_rng: rand::rngs::SmallRng,
    op_errors: Vec<OpErrorRecord>,
    /// Virtual time of the last observed progress (watchdog).
    last_advance: SimTime,
    /// Events processed since the last observed progress (watchdog).
    futile_events: u64,
    /// First fatal error raised mid-event; [`World::try_run`] surfaces it.
    fatal: Option<SimError>,
    /// Whether `MPISIM_TRACE` was set at construction (read once, not per
    /// event).
    trace: bool,
    /// Resident buffer for same-timestamp event batches in [`World::try_run`].
    batch: Vec<Event>,
}

impl<H: IoHooks> World<H> {
    /// Builds a world executing `driver` under observer `hooks`.
    pub fn with_driver(cfg: WorldConfig, driver: Box<dyn RankDriver>, hooks: H) -> Self {
        assert!(cfg.n_ranks > 0, "need at least one rank");
        assert!(cfg.subreq_bytes > 0.0, "sub-request size must be positive");
        let mut pfs = Pfs::new(cfg.pfs);
        pfs.set_recording(cfg.record_pfs);
        let limits = Limits::new(cfg.n_ranks, cfg.limiter_enabled);
        let cap_rng = stream_rng(cfg.seed ^ 0xCAFE_F00D, 0);
        let bbs = match cfg.burst_buffer {
            Some(bc) => (0..cfg.n_ranks).map(|_| BurstBuffer::new(bc)).collect(),
            None => Vec::new(),
        };
        let ranks = (0..cfg.n_ranks).map(|_| RankState::new()).collect();
        let live_ranks = cfg.n_ranks;
        // Pending events peak around one per rank (compute wake or I/O step)
        // plus the PFS wake; pre-size to skip heap regrowth.
        let queue = EventQueue::with_capacity(cfg.n_ranks * 2 + 8);
        World {
            cfg,
            queue,
            pfs,
            pfs_wake: None,
            ranks,
            limits,
            hooks,
            driver,
            pfs_done: Vec::with_capacity(16),
            tasks: SeqMap::with_capacity(16),
            next_task: 0,
            flows: SeqMap::with_capacity(16),
            collectives: HashMap::new(),
            files: Vec::new(),
            bbs,
            live_ranks,
            cap_tick: 0,
            cap_rng,
            op_errors: Vec::new(),
            last_advance: SimTime::ZERO,
            futile_events: 0,
            fatal: None,
            trace: std::env::var_os("MPISIM_TRACE").is_some(),
            batch: Vec::with_capacity(MAX_BATCH),
        }
    }

    /// Builds a world over scripted per-rank programs.
    pub fn new(cfg: WorldConfig, programs: Vec<Program>, hooks: H) -> Self {
        assert_eq!(programs.len(), cfg.n_ranks, "one program per rank required");
        Self::with_driver(cfg, Box::new(ScriptedDriver::new(programs)), hooks)
    }

    /// Registers a simulated file.
    pub fn create_file(&mut self, name: &str) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push((name.to_string(), 0.0));
        id
    }

    /// Total bytes ever written to `file`.
    pub fn file_bytes(&self, file: FileId) -> f64 {
        self.files[file.0 as usize].1
    }

    /// Access to the observer (e.g. to pull TMIO's report after `run`).
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Mutable access to the observer.
    pub fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    /// Consumes the world, returning the observer and its recordings.
    pub fn into_hooks(self) -> H {
        self.hooks
    }

    /// The PFS rate series of a channel (for plots).
    pub fn pfs_series(&self, channel: Channel) -> &StepSeries {
        self.pfs.total_series(channel)
    }

    /// The configured world parameters.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Current per-rank limits (stored values, for inspection).
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Runs the world to completion and returns the summary.
    ///
    /// Panics on any [`SimError`] ([`World::try_run`] is the supervised,
    /// non-panicking path): a deadlock (ranks blocked with no pending
    /// events), a tripped progress watchdog, or an invalid program (e.g.
    /// mismatched collectives).
    pub fn run(&mut self) -> RunSummary {
        match self.try_run() {
            Ok(summary) => summary,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the world to completion, surfacing failures as typed errors.
    ///
    /// Detects and reports, with a [`StallSnapshot`] of everything still
    /// pending: deadlock (the event queue drained with ranks blocked —
    /// mismatched collectives, or a `Wait` whose request is frozen by a
    /// never-ending outage) and live-lock (the watchdog counted
    /// [`WatchdogCfg::max_futile_events`] events without any rank, request
    /// or collective advancing). Driver-issued impossible ops (wait on an
    /// unknown request, collective mismatch) surface as
    /// [`SimError::InvalidProgram`].
    pub fn try_run(&mut self) -> SimResult<RunSummary> {
        if let Some(cn) = self.cfg.capacity_noise {
            self.queue.schedule_in(cn.period, Event::CapacityTick(0));
        }
        // Channel-fault windows: recompute the effective capacity factor at
        // every window edge. An inert plan schedules nothing, keeping the
        // fault-free event order untouched. Non-finite edges are skipped —
        // a window that never ends simply never schedules its closing edge
        // (the watchdog or deadlock detection reports the stall).
        let mut edges: Vec<f64> = Vec::new();
        for w in self.cfg.faults.active_channel_faults() {
            edges.push(w.start.max(0.0));
            edges.push(w.end);
        }
        edges.retain(|e| e.is_finite());
        edges.sort_by(f64::total_cmp);
        edges.dedup();
        for e in edges {
            self.queue.schedule(SimTime::from_secs(e), Event::FaultEdge);
        }
        // Kick off every rank at t = 0.
        for rank in 0..self.cfg.n_ranks {
            if self.ranks[rank].status == Status::Runnable {
                self.step_rank(rank);
            }
        }
        let wd = self.cfg.watchdog;
        while self.live_ranks > 0 {
            if let Some(e) = self.fatal.take() {
                return Err(e);
            }
            let Some((t, ev)) = self.queue.pop() else {
                return Err(SimError::Deadlock(self.stall_snapshot()));
            };
            // Batch every event already scheduled for this same instant:
            // one heap pop streak instead of pop/handle interleaving, so
            // synchronized rank wakes (the common case in bulk-synchronous
            // phases) avoid re-probing the heap top between handlers.
            // `PfsWake` is excluded — it is the one cancellable event, and
            // a pre-popped copy would dodge the queue's lazy deletion when
            // a handler in the same batch cancels it via `resync_pfs`.
            let mut batch = std::mem::take(&mut self.batch);
            batch.clear();
            batch.push(ev);
            while batch.len() < MAX_BATCH {
                match self.queue.peek() {
                    Some((pt, pv)) if pt == t && !matches!(pv, Event::PfsWake) => {
                        let (_, e) = self.queue.pop().invariant("peeked event pops");
                        batch.push(e);
                    }
                    _ => break,
                }
            }
            let mut err = None;
            for &ev in &batch {
                // Events behind a fatal error or the last rank's exit are
                // dropped, exactly as if they had never been popped.
                if self.fatal.is_some() || self.live_ranks == 0 {
                    break;
                }
                self.handle(t, ev);
                self.futile_events += 1;
                if self.futile_events > wd.max_futile_events
                    || self.queue.now() - self.last_advance > wd.max_stall
                {
                    err = Some(SimError::Stalled(self.stall_snapshot()));
                    break;
                }
            }
            self.batch = batch;
            if let Some(e) = err {
                return Err(e);
            }
        }
        if let Some(e) = self.fatal.take() {
            return Err(e);
        }
        let finished_at: Vec<SimTime> = self
            .ranks
            .iter()
            .map(|r| r.finished_at.invariant("rank finished"))
            .collect();
        let end_time = finished_at
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        // Close the PFS series at the end of the run.
        self.drain_pfs();
        Ok(RunSummary {
            end_time,
            accounting: self.ranks.iter().map(|r| r.acct).collect(),
            finished_at,
            op_errors: std::mem::take(&mut self.op_errors),
        })
    }

    /// Records a fatal error; the first one wins and aborts [`try_run`].
    fn fail_run(&mut self, e: SimError) {
        if self.fatal.is_none() {
            self.fatal = Some(e);
        }
    }

    /// Marks watchdog-visible progress: bytes moved, an op retired, a rank
    /// finished, a collective released.
    fn note_progress(&mut self) {
        self.last_advance = self.queue.now();
        self.futile_events = 0;
    }

    /// The diagnostic snapshot attached to stall/deadlock errors: blocked
    /// ranks, in-flight I/O tasks, queue depth and last-advance time.
    fn stall_snapshot(&self) -> Box<StallSnapshot> {
        let blocked_ranks: Vec<String> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.status != Status::Done)
            .map(|(i, r)| format!("rank {i}: {:?}", r.status))
            .collect();
        // SeqMap iterates in id order, so the report needs no sort pass.
        let pending_ops: Vec<String> = self
            .tasks
            .iter()
            .map(|(id, t)| {
                format!(
                    "task {id}: rank {} {:?} {:.0} B left, tag {:?}, {} attempt(s)",
                    t.rank, t.channel, t.bytes_left, t.tag, t.attempts
                )
            })
            .collect();
        Box::new(StallSnapshot {
            at: self.queue.now().as_secs(),
            last_advance: self.last_advance.as_secs(),
            futile_events: self.futile_events,
            queue_depth: self.queue.len(),
            blocked_ranks,
            pending_ops,
        })
    }

    // ------------------------------------------------------------------
    // Event handling

    fn handle(&mut self, t: SimTime, ev: Event) {
        if self.trace {
            eprintln!("[{t:?}] {ev:?} queue={}", self.queue.len());
        }
        match ev {
            Event::Resume(rank) => {
                debug_assert!(matches!(self.ranks[rank].status, Status::Blocked(_)));
                self.ranks[rank].status = Status::Runnable;
                self.step_rank(rank);
            }
            Event::PfsWake => {
                self.pfs_wake = None;
                self.drain_pfs();
                self.resync_pfs();
            }
            Event::IoTaskNext(task) => {
                self.start_subrequest(task);
                self.resync_pfs();
            }
            Event::BbDone(id) => {
                let task = self.tasks.remove(id.0).invariant("bb task exists");
                let now = self.queue.now();
                if task.cancelled {
                    self.fail_task(now, id, task, IoErrorKind::Cancelled);
                } else {
                    self.finish_task(now, id, task);
                }
            }
            Event::CollIoStart(id) => {
                self.start_coll_io(id);
            }
            Event::CollectiveRelease(id) => {
                self.note_progress();
                let coll = self.collectives.remove(&id).invariant("collective exists");
                debug_assert_eq!(coll.arrived, self.cfg.n_ranks);
                for rank in 0..self.cfg.n_ranks {
                    if self.ranks[rank].status == Status::Blocked(BlockKind::Collective(id)) {
                        let entered = self.ranks[rank].wait_entered;
                        match coll.kind {
                            // Collective I/O counts as visible (sync) I/O
                            // and reports through the sync-end hook.
                            CollKind::CollIo(channel, bytes) => {
                                match channel {
                                    Channel::Write => {
                                        self.ranks[rank].acct.sync_write += t - entered
                                    }
                                    Channel::Read => self.ranks[rank].acct.sync_read += t - entered,
                                }
                                let o = self.hooks.on_sync_end(
                                    t,
                                    rank,
                                    bytes,
                                    channel,
                                    &mut self.limits,
                                );
                                self.ranks[rank].acct.overhead += o;
                            }
                            _ => self.ranks[rank].acct.collective += t - entered,
                        }
                        self.ranks[rank].status = Status::Runnable;
                        self.step_rank(rank);
                    }
                }
            }
            Event::CapacityTick(i) => {
                let cn = self.cfg.capacity_noise.invariant("configured");
                // One factor for both channels: congestion from a competing
                // job hits the whole file system, not one direction.
                let f = cn.noise.factor(&mut self.cap_rng);
                self.drain_pfs();
                let now = self.queue.now();
                self.pfs
                    .set_capacity(now, Channel::Write, self.cfg.pfs.write_capacity * f);
                self.pfs
                    .set_capacity(now, Channel::Read, self.cfg.pfs.read_capacity * f);
                self.cap_tick = i + 1;
                self.queue
                    .schedule_in(cn.period, Event::CapacityTick(i + 1));
                self.resync_pfs();
            }
            Event::FaultEdge => {
                self.drain_pfs();
                let now = self.queue.now();
                let t = now.as_secs();
                for (idx, ch) in [(0usize, Channel::Write), (1usize, Channel::Read)] {
                    let f = self.cfg.faults.capacity_factor(idx, t);
                    if self.pfs.fault_factor(ch) != f {
                        self.pfs.set_fault_factor(now, ch, f);
                    }
                }
                self.resync_pfs();
            }
        }
    }

    /// Drains PFS completions up to `now`, handling each. Loops because a
    /// pacing-free task may chain its next sub-request at the same instant.
    ///
    /// Harvests into a resident buffer taken off `self` for the duration
    /// (re-entrant calls via `on_flow_complete` → `start_subrequest` see an
    /// empty placeholder, which stays allocation-free because their drains
    /// find nothing left to harvest).
    fn drain_pfs(&mut self) {
        let mut iters = 0u32;
        let mut done = std::mem::take(&mut self.pfs_done);
        loop {
            let now = self.queue.now();
            done.clear();
            self.pfs.advance_into(now, &mut done);
            if done.is_empty() {
                break;
            }
            iters += 1;
            if iters > 10_000 {
                self.fail_run(SimError::Internal(format!(
                    "drain_pfs livelock at {now:?}: {} completions pending",
                    done.len()
                )));
                break;
            }
            for &(ct, flow) in &done {
                self.on_flow_complete(ct, flow);
            }
        }
        self.pfs_done = done;
    }

    /// Re-schedules the single PFS wake event at the next completion time.
    fn resync_pfs(&mut self) {
        let target = self.pfs.next_completion();
        if let Some(key) = self.pfs_wake.take() {
            self.queue.cancel(key);
        }
        if let Some(t) = target {
            let t = t.max(self.queue.now());
            self.pfs_wake = Some(self.queue.schedule(t, Event::PfsWake));
        }
    }

    // ------------------------------------------------------------------
    // Rank interpreter

    /// Executes ops for `rank` until it blocks or finishes.
    fn step_rank(&mut self, rank: usize) {
        loop {
            if self.fatal.is_some() {
                return; // the run is being aborted; stop interpreting
            }
            debug_assert_eq!(self.ranks[rank].status, Status::Runnable);
            let now = self.queue.now();
            let repeat = self.ranks[rank].pending_repeat.take();
            let fresh = repeat.is_none();
            let Some(op) = repeat.or_else(|| self.driver.next_op(rank, now)) else {
                self.ranks[rank].status = Status::Done;
                self.ranks[rank].finished_at = Some(now);
                self.live_ranks -= 1;
                self.note_progress();
                self.hooks.on_rank_done(now, rank);
                return;
            };
            if fresh {
                // The driver handed out a new program op: the application is
                // advancing. A `PollWait` re-probe (pending_repeat) is not.
                self.note_progress();
            }
            if self.exec_op(rank, op) {
                return; // blocked
            }
        }
    }

    /// Executes one op. Returns true if the rank is now blocked.
    fn exec_op(&mut self, rank: usize, op: Op) -> bool {
        match op {
            Op::Compute { seconds } => {
                let idx = self.ranks[rank].compute_count;
                self.ranks[rank].compute_count += 1;
                let mut rng = stream_rng(self.cfg.seed, rank_phase_stream(rank, idx as usize));
                let mut dur = self.cfg.compute_noise.apply(seconds, &mut rng);
                // Straggler ranks (fault plan) run slowed-down compute.
                let sf = self.cfg.faults.straggler_factor(rank);
                if sf != 1.0 {
                    dur *= sf;
                }
                // Interference toll from I/O-thread activity ([33]).
                dur += std::mem::take(&mut self.ranks[rank].pending_toll);
                self.ranks[rank].acct.compute += dur;
                self.block_for(rank, dur, BlockKind::Compute)
            }
            Op::Memcpy { bytes } => {
                let dur = bytes / self.cfg.memcpy_bandwidth;
                self.ranks[rank].acct.memcpy += dur;
                self.block_for(rank, dur, BlockKind::Compute)
            }
            Op::Barrier => self.enter_collective(rank, CollKind::Barrier),
            Op::Bcast { bytes } => self.enter_collective(rank, CollKind::Bcast(bytes)),
            Op::WriteAll { file, bytes } => self.exec_coll_io(rank, file, bytes, Channel::Write),
            Op::ReadAll { file, bytes } => self.exec_coll_io(rank, file, bytes, Channel::Read),
            Op::Write { file, bytes } => self.exec_sync_io(rank, file, bytes, Channel::Write),
            Op::Read { file, bytes } => self.exec_sync_io(rank, file, bytes, Channel::Read),
            Op::IWrite { file, bytes, tag } => {
                self.exec_async_io(rank, file, bytes, tag, Channel::Write)
            }
            Op::IRead { file, bytes, tag } => {
                self.exec_async_io(rank, file, bytes, tag, Channel::Read)
            }
            Op::Wait { tag } => self.exec_wait(rank, tag),
            Op::Test { tag } => self.exec_test(rank, tag),
            Op::PollWait { tag, interval } => self.exec_poll_wait(rank, tag, interval),
        }
    }

    /// `MPI_Test` as a probe: reports status through the hooks but keeps the
    /// request live (the monitoring use TMIO supports); a later `Wait` or
    /// `PollWait` still completes it.
    fn exec_test(&mut self, rank: usize, tag: ReqTag) -> bool {
        let now = self.queue.now();
        let Some(entry) = self.ranks[rank].req(tag) else {
            self.fail_run(SimError::invalid_program(
                rank,
                format!("test on unknown request {tag:?}"),
            ));
            return true;
        };
        let done = matches!(entry.state, ReqState::Completed | ReqState::Failed(_));
        let o = self.hooks.on_test(now, rank, tag, done, &mut self.limits);
        self.driver.on_test_result(rank, done);
        self.ranks[rank].acct.overhead += o;
        self.block_for(rank, o, BlockKind::Overhead)
    }

    /// The test-in-a-loop completion pattern: burns `interval` seconds of
    /// compute per unsuccessful probe. The first probe marks the end of the
    /// available window (the application wanted the data *now*), so the
    /// wait-enter hook fires there; polling time is accounted as lost time.
    fn exec_poll_wait(&mut self, rank: usize, tag: ReqTag, interval: f64) -> bool {
        if !(interval > 0.0 && interval.is_finite()) {
            self.fail_run(SimError::invalid_program(
                rank,
                format!("poll interval must be finite and positive, got {interval}"),
            ));
            return true;
        }
        let now = self.queue.now();
        let Some(entry) = self.ranks[rank].req(tag) else {
            self.fail_run(SimError::invalid_program(
                rank,
                format!("poll-wait on unknown request {tag:?}"),
            ));
            return true;
        };
        let done = entry.state != ReqState::InFlight;
        let first = self.ranks[rank].polling != Some(tag);
        let mut overhead = 0.0;
        if first {
            self.ranks[rank].polling = Some(tag);
            self.ranks[rank].wait_entered = now;
            overhead += self
                .hooks
                .on_wait_enter(now, rank, tag, done, &mut self.limits);
        }
        if done {
            overhead += self.hooks.on_wait_exit(now, rank, tag, &mut self.limits);
            let entered = self.ranks[rank].wait_entered;
            let lost = now - entered;
            let entry = self.ranks[rank]
                .remove_req(tag)
                .invariant("request registered");
            match entry.channel {
                Channel::Write => self.ranks[rank].acct.wait_write += lost,
                Channel::Read => self.ranks[rank].acct.wait_read += lost,
            }
            self.ranks[rank].polling = None;
            self.ranks[rank].acct.overhead += overhead;
            self.block_for(rank, overhead, BlockKind::Overhead)
        } else {
            overhead += self.hooks.on_test(now, rank, tag, false, &mut self.limits);
            self.ranks[rank].acct.overhead += overhead;
            self.ranks[rank].pending_repeat = Some(Op::PollWait { tag, interval });
            self.block_for(rank, interval + overhead, BlockKind::Compute)
        }
    }

    /// Blocks `rank` for `dur` seconds (compute, memcpy, overhead).
    /// Returns true (blocked) unless `dur` is zero.
    fn block_for(&mut self, rank: usize, dur: f64, kind: BlockKind) -> bool {
        if dur <= 0.0 {
            return false;
        }
        self.ranks[rank].status = Status::Blocked(kind);
        self.queue.schedule_in(dur, Event::Resume(rank));
        true
    }

    fn enter_collective(&mut self, rank: usize, kind: CollKind) -> bool {
        let id = self.ranks[rank].collective_seq;
        self.ranks[rank].collective_seq += 1;
        let n = self.cfg.n_ranks;
        let coll = self.collectives.entry(id).or_insert(Collective {
            kind,
            arrived: 0,
            pending: 0,
        });
        if coll.kind != kind {
            let existing = coll.kind;
            self.fail_run(SimError::invalid_program(
                rank,
                format!(
                    "collective mismatch at sequence {id}: \
                     ranks disagree on the op ({existing:?} vs {kind:?})"
                ),
            ));
            return true;
        }
        coll.arrived += 1;
        let arrived = coll.arrived;
        let now = self.queue.now();
        self.ranks[rank].wait_entered = now;
        self.ranks[rank].status = Status::Blocked(BlockKind::Collective(id));
        if arrived == n {
            let levels = (n as f64).log2().ceil().max(1.0);
            match kind {
                CollKind::Barrier => {
                    let cost = self.cfg.net_latency * levels;
                    self.queue.schedule_in(cost, Event::CollectiveRelease(id));
                }
                CollKind::Bcast(bytes) => {
                    let cost = self.cfg.net_latency * levels + bytes / self.cfg.net_bandwidth;
                    self.queue.schedule_in(cost, Event::CollectiveRelease(id));
                }
                CollKind::CollIo(_, bytes) => {
                    // Two-phase I/O: exchange the data with the aggregators
                    // over the network, then start the merged transfers.
                    let shuffle =
                        self.cfg.net_latency * levels + bytes * n as f64 / self.cfg.net_bandwidth;
                    self.queue.schedule_in(shuffle, Event::CollIoStart(id));
                }
            }
        }
        true
    }

    /// Collective I/O entry: hooks see it as a blocking call on every rank.
    fn exec_coll_io(&mut self, rank: usize, file: FileId, bytes: f64, channel: Channel) -> bool {
        let now = self.queue.now();
        let o = self
            .hooks
            .on_sync_begin(now, rank, bytes, channel, &mut self.limits);
        self.ranks[rank].acct.overhead += o;
        if channel == Channel::Write {
            self.files[file.0 as usize].1 += bytes;
        }
        self.ranks[rank].sync_bytes = bytes;
        self.enter_collective(rank, CollKind::CollIo(channel, bytes))
    }

    /// The shuffle phase of a collective I/O finished: ⌈√n⌉ aggregators
    /// issue their merged transfers.
    fn start_coll_io(&mut self, id: u64) {
        let coll = self.collectives.get(&id).invariant("collective exists");
        let CollKind::CollIo(channel, bytes) = coll.kind else {
            panic!("CollIoStart on a non-I/O collective");
        };
        let n = self.cfg.n_ranks;
        let aggregators = (n as f64).sqrt().ceil() as usize;
        let total = bytes * n as f64;
        let per_agg = total / aggregators as f64;
        self.drain_pfs();
        let now = self.queue.now();
        let flows = self.pfs.submit_many(
            now,
            channel,
            FlowSpec {
                bytes: per_agg,
                weight: 1.0,
                cap: None,
                meter: None,
            },
            aggregators,
        );
        for f in &flows {
            self.flows.insert(f.0, FlowOwner::Coll(id));
        }
        self.collectives
            .get_mut(&id)
            .invariant("collective exists")
            .pending = aggregators;
        self.resync_pfs();
    }

    fn exec_sync_io(&mut self, rank: usize, file: FileId, bytes: f64, channel: Channel) -> bool {
        let now = self.queue.now();
        let o = self
            .hooks
            .on_sync_begin(now, rank, bytes, channel, &mut self.limits);
        self.ranks[rank].acct.overhead += o;
        if channel == Channel::Write {
            self.files[file.0 as usize].1 += bytes;
        }
        self.ranks[rank].sync_entered = now;
        self.ranks[rank].sync_bytes = bytes;
        let task = self.new_task(rank, None, bytes, channel);
        self.ranks[rank].status = Status::Blocked(BlockKind::SyncIo(task));
        if channel == Channel::Write && self.cfg.burst_buffer.is_some() {
            self.start_bb_write(task, rank, bytes);
        } else {
            self.start_subrequest(task);
        }
        self.resync_pfs();
        true
    }

    /// Burst-buffer write path: the call completes at absorption time; the
    /// bytes drain to the PFS as a background flow capped at the drain rate
    /// (and the rank's limit, when the limiter is active).
    fn start_bb_write(&mut self, task: TaskId, rank: usize, bytes: f64) {
        let now = self.queue.now();
        let done = self.bbs[rank].absorb(now.as_secs(), bytes);
        // Mark the task as fully transferred from the application's view.
        self.tasks
            .get_mut(task.0)
            .invariant("task exists")
            .bytes_left = 0.0;
        self.queue
            .schedule(SimTime::from_secs(done).max(now), Event::BbDone(task));
        let drain_rate = self.cfg.burst_buffer.invariant("configured").drain_rate;
        let cap = match self.limits.effective(rank) {
            Some(l) => drain_rate.min(l),
            None => drain_rate,
        };
        self.drain_pfs();
        let flow = self.pfs.submit(
            now,
            Channel::Write,
            FlowSpec {
                bytes,
                weight: 1.0,
                cap: Some(cap),
                meter: None,
            },
        );
        self.flows.insert(flow.0, FlowOwner::Background);
    }

    fn exec_async_io(
        &mut self,
        rank: usize,
        file: FileId,
        bytes: f64,
        tag: ReqTag,
        channel: Channel,
    ) -> bool {
        let now = self.queue.now();
        if self.ranks[rank].req(tag).is_some() {
            self.fail_run(SimError::invalid_program(
                rank,
                format!("request tag {tag:?} already outstanding"),
            ));
            return true;
        }
        let o = self
            .hooks
            .on_async_submit(now, rank, tag, bytes, channel, &mut self.limits);
        self.ranks[rank].acct.overhead += o;
        if channel == Channel::Write {
            self.files[file.0 as usize].1 += bytes;
        }
        self.ranks[rank].requests.push(ReqEntry {
            tag,
            state: ReqState::InFlight,
            channel,
        });
        let seq = self.ranks[rank].async_seq;
        self.ranks[rank].async_seq += 1;
        let task = self.new_task(rank, Some(tag), bytes, channel);
        if self.cfg.faults.cancels(rank, seq) {
            self.tasks
                .get_mut(task.0)
                .invariant("task exists")
                .cancelled = true;
        }
        if channel == Channel::Write && self.cfg.burst_buffer.is_some() {
            self.start_bb_write(task, rank, bytes);
        } else {
            self.start_subrequest(task);
        }
        self.resync_pfs();
        // The rank continues immediately; inject tool overhead if any.
        self.block_for(rank, o, BlockKind::Overhead)
    }

    fn exec_wait(&mut self, rank: usize, tag: ReqTag) -> bool {
        let now = self.queue.now();
        let Some(entry) = self.ranks[rank].req(tag) else {
            self.fail_run(SimError::invalid_program(
                rank,
                format!("wait on unknown request {tag:?}"),
            ));
            return true;
        };
        let already_done = entry.state != ReqState::InFlight;
        let mut o = self
            .hooks
            .on_wait_enter(now, rank, tag, already_done, &mut self.limits);
        if already_done {
            o += self.hooks.on_wait_exit(now, rank, tag, &mut self.limits);
            self.ranks[rank].remove_req(tag);
            self.ranks[rank].acct.overhead += o;
            self.block_for(rank, o, BlockKind::Overhead)
        } else {
            self.ranks[rank].acct.overhead += o;
            self.ranks[rank].wait_entered = now;
            self.ranks[rank].status = Status::Blocked(BlockKind::Wait(tag));
            true
        }
    }

    // ------------------------------------------------------------------
    // I/O thread (ADIO layer)

    fn new_task(
        &mut self,
        rank: usize,
        tag: Option<ReqTag>,
        bytes: f64,
        channel: Channel,
    ) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        let now = self.queue.now();
        // The fault stream is per-task so a replay is independent of how
        // unrelated tasks interleave; no stream exists for inert models.
        let fault_rng = if self.cfg.faults.io_errors_active() {
            Some(self.cfg.faults.stream(id.0))
        } else {
            None
        };
        self.tasks.insert(
            id.0,
            IoTask {
                rank,
                tag,
                channel,
                bytes_left: bytes,
                deficit: 0.0,
                subreq_bytes: 0.0,
                subreq_started: now,
                attempts: 0,
                fault_rng,
                cancelled: false,
            },
        );
        id
    }

    /// Issues the next sub-request of `task` onto the PFS — or completes the
    /// request if all bytes are transferred (reached via [`Event::IoTaskNext`]
    /// after a trailing pacing sleep).
    fn start_subrequest(&mut self, id: TaskId) {
        {
            let task = self.tasks.get(id.0).invariant("task exists");
            if task.bytes_left <= 1e-6 {
                let ct = self.queue.now();
                let task = self.tasks.remove(id.0).invariant("task exists");
                self.finish_task(ct, id, task);
                return;
            }
        }
        self.drain_pfs();
        let now = self.queue.now();
        let task = self.tasks.get_mut(id.0).invariant("task exists");
        let size = task.bytes_left.min(self.cfg.subreq_bytes).max(0.0);
        task.subreq_bytes = size;
        task.subreq_started = now;
        let channel = task.channel;
        let flow = self.pfs.submit(now, channel, FlowSpec::simple(size));
        self.flows.insert(flow.0, FlowOwner::Task(id));
    }

    /// A sub-request's PFS transfer finished: apply pacing, chain or finish.
    /// The pacing sleep applies after *every* sub-request, including the
    /// last — the I/O thread completes the generalized request only after
    /// finishing its schedule, so the achieved throughput converges to the
    /// limit (Sec. V).
    fn on_flow_complete(&mut self, ct: SimTime, flow: FlowId) {
        // Bytes landed on the PFS: the run is advancing.
        self.note_progress();
        let owner = self
            .flows
            .remove(flow.0)
            .invariant("flow has a registered owner");
        let id = match owner {
            FlowOwner::Background => {
                return; // a burst-buffer drain finished; nobody waits on it
            }
            FlowOwner::Coll(id) => {
                let left = &mut self
                    .collectives
                    .get_mut(&id)
                    .invariant("collective exists")
                    .pending;
                *left -= 1;
                if *left == 0 {
                    let at = ct.max(self.queue.now());
                    self.queue.schedule(at, Event::CollectiveRelease(id));
                }
                return;
            }
            FlowOwner::Task(id) => id,
        };
        if self.apply_io_fault(ct, id) {
            return; // the sub-request failed; its bytes are discarded
        }
        let (rank, finished, subreq_bytes, subreq_started) = {
            let task = self.tasks.get_mut(id.0).invariant("task exists");
            task.bytes_left -= task.subreq_bytes;
            (
                task.rank,
                task.bytes_left <= 1e-6,
                task.subreq_bytes,
                task.subreq_started,
            )
        };
        // I/O↔compute interference ([33]): the busier the channel was, the
        // more this transfer perturbed the rank's compute threads.
        if self.cfg.interference_alpha > 0.0 {
            let channel = {
                let task = self.tasks.get(id.0).invariant("task exists");
                task.channel
            };
            let capacity = match channel {
                Channel::Write => self.cfg.pfs.write_capacity,
                Channel::Read => self.cfg.pfs.read_capacity,
            };
            let concurrency = (self.pfs.active_flows(channel) + 1) as f64 / self.cfg.n_ranks as f64;
            self.ranks[rank].pending_toll += self.cfg.interference_alpha
                * concurrency.min(1.0)
                * (subreq_bytes / capacity.max(1.0));
        }
        // Pacing: compare achieved vs required sub-request time (Sec. V).
        let is_sync = self.tasks.get(id.0).invariant("task exists").tag.is_none();
        let limit = if is_sync && !self.cfg.limit_sync_ops {
            None
        } else {
            self.limits.effective(rank)
        };
        let mut delay = 0.0;
        if let Some(limit) = limit {
            let task = self.tasks.get_mut(id.0).invariant("task exists");
            let actual = ct - subreq_started;
            let required = subreq_bytes / limit;
            if actual < required {
                // Case A: sleep the remainder, shortened by banked deficit.
                let mut sleep = required - actual;
                let use_deficit = sleep.min(task.deficit);
                sleep -= use_deficit;
                task.deficit -= use_deficit;
                delay = sleep;
            } else {
                // Case B: too slow; bank the overshoot.
                task.deficit += actual - required;
            }
        }
        if delay > 0.0 {
            let resume_at = ct.max(self.queue.now()).after(delay);
            self.queue.schedule(resume_at, Event::IoTaskNext(id));
        } else if finished {
            let task = self.tasks.remove(id.0).invariant("task exists");
            self.finish_task(ct, id, task);
        } else {
            self.start_subrequest(id);
        }
    }

    /// Decides whether the sub-request whose PFS transfer just finished is
    /// poisoned by the fault plan — a pending cancellation or a drawn
    /// transient error. Returns true when the completion was consumed: the
    /// task either failed terminally or will re-issue the same sub-request
    /// after a deterministic backoff sleep (virtual time); either way the
    /// transferred bytes are discarded.
    fn apply_io_fault(&mut self, ct: SimTime, id: TaskId) -> bool {
        let (cancelled, drawn) = {
            let task = self.tasks.get_mut(id.0).invariant("task exists");
            if task.cancelled {
                (true, None)
            } else {
                let drawn = match (&self.cfg.faults.io_errors, task.fault_rng.as_mut()) {
                    (Some(model), Some(rng)) => model.draw(rng),
                    _ => None,
                };
                (false, drawn)
            }
        };
        if cancelled {
            let task = self.tasks.remove(id.0).invariant("task exists");
            self.fail_task(ct, id, task, IoErrorKind::Cancelled);
            return true;
        }
        let Some(kind) = drawn else {
            self.tasks.get_mut(id.0).invariant("task exists").attempts = 0;
            return false;
        };
        let (rank, tag, attempts) = {
            let task = self.tasks.get_mut(id.0).invariant("task exists");
            task.attempts += 1;
            (task.rank, task.tag, task.attempts)
        };
        if attempts > self.cfg.faults.retry.max_retries {
            let task = self.tasks.remove(id.0).invariant("task exists");
            self.fail_task(ct, id, task, kind);
            return true;
        }
        // Bounded exponential backoff, then re-issue the failed sub-request
        // (IoTaskNext re-reads the limit and restarts pacing cleanly).
        let backoff = self.cfg.faults.retry.backoff(attempts - 1);
        self.ranks[rank].acct.retry += backoff;
        self.hooks
            .on_io_retry(ct, rank, tag, kind, attempts, backoff);
        let resume_at = ct.max(self.queue.now()).after(backoff);
        self.queue.schedule(resume_at, Event::IoTaskNext(id));
        true
    }

    /// Terminal failure of an I/O op: retries exhausted or the request was
    /// cancelled. Records the error, notifies observer and driver, then
    /// releases the rank through the completion path — a failed `Wait`
    /// returns with the error instead of hanging.
    fn fail_task(&mut self, ct: SimTime, id: TaskId, task: IoTask, kind: IoErrorKind) {
        let at = ct.max(self.queue.now());
        self.op_errors.push(OpErrorRecord {
            rank: task.rank,
            tag: task.tag,
            kind,
            at: at.as_secs(),
            attempts: task.attempts,
        });
        self.hooks
            .on_op_error(at, task.rank, task.tag, kind, task.attempts);
        self.driver.on_op_error(task.rank, kind);
        self.complete_task(ct, id, task, Some(kind));
    }

    /// All bytes of a request are on the PFS: complete the generalized
    /// request and release any blocked rank.
    fn finish_task(&mut self, ct: SimTime, id: TaskId, task: IoTask) {
        self.complete_task(ct, id, task, None);
    }

    /// Shared completion path: the I/O thread is done with the request,
    /// successfully (`error` = None) or not. The request-complete hook fires
    /// either way — the tool's transfer span closes when the I/O thread
    /// stops working on the request.
    fn complete_task(&mut self, ct: SimTime, id: TaskId, task: IoTask, error: Option<IoErrorKind>) {
        self.note_progress();
        let now = self.queue.now();
        let rank = task.rank;
        let status = self.ranks[rank].status;
        let release_at = ct.max(now);
        match task.tag {
            Some(tag) => {
                // Async request: mark complete (or failed), notify tool.
                self.ranks[rank]
                    .req_mut(tag)
                    .invariant("request registered")
                    .state = match error {
                    None => ReqState::Completed,
                    Some(kind) => ReqState::Failed(kind),
                };
                self.hooks.on_request_complete(ct, rank, tag);
                if status == Status::Blocked(BlockKind::Wait(tag)) {
                    // The rank was stuck in MPI_Wait: async-lost time.
                    let entered = self.ranks[rank].wait_entered;
                    let lost = release_at - entered;
                    match task.channel {
                        Channel::Write => self.ranks[rank].acct.wait_write += lost,
                        Channel::Read => self.ranks[rank].acct.wait_read += lost,
                    }
                    let o = self
                        .hooks
                        .on_wait_exit(release_at, rank, tag, &mut self.limits);
                    self.ranks[rank].acct.overhead += o;
                    self.ranks[rank].remove_req(tag);
                    // Resume via the queue so completions drain first.
                    self.ranks[rank].status = Status::Blocked(BlockKind::Overhead);
                    self.queue
                        .schedule(release_at.after(o), Event::Resume(rank));
                }
            }
            None => {
                // Synchronous op: account and release the rank.
                debug_assert_eq!(status, Status::Blocked(BlockKind::SyncIo(id)));
                let entered = self.ranks[rank].sync_entered;
                let bytes = self.ranks[rank].sync_bytes;
                let dur = release_at - entered;
                match task.channel {
                    Channel::Write => self.ranks[rank].acct.sync_write += dur,
                    Channel::Read => self.ranks[rank].acct.sync_read += dur,
                }
                let o =
                    self.hooks
                        .on_sync_end(release_at, rank, bytes, task.channel, &mut self.limits);
                self.ranks[rank].acct.overhead += o;
                self.ranks[rank].status = Status::Blocked(BlockKind::Overhead);
                self.queue
                    .schedule(release_at.after(o), Event::Resume(rank));
            }
        }
    }
}

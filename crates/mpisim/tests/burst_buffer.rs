//! Tests of the burst-buffer write path (the paper's future-work extension).

use mpisim::{FileId, NoHooks, Op, Program, ReqTag, World, WorldConfig};
use pfsim::{BurstBufferConfig, PfsConfig};
use simcore::SimTime;

const MB: f64 = 1e6;

fn cfg_with_bb(n: usize, pfs_cap: f64, bb: BurstBufferConfig) -> WorldConfig {
    let mut c = WorldConfig::new(n);
    c.pfs = PfsConfig {
        write_capacity: pfs_cap,
        read_capacity: pfs_cap,
    };
    c.burst_buffer = Some(bb);
    c
}

#[test]
fn sync_write_completes_at_absorb_speed() {
    // PFS is slow (10 MB/s) but the BB absorbs at 1 GB/s: a 100 MB sync
    // write returns in 0.1 s instead of 10 s.
    let bb = BurstBufferConfig {
        size_bytes: 1e9,
        absorb_rate: 1e9,
        drain_rate: 10.0 * MB,
    };
    let ops = vec![Op::Write {
        file: FileId(0),
        bytes: 100.0 * MB,
    }];
    let mut w = World::new(
        cfg_with_bb(1, 10.0 * MB, bb),
        vec![Program::from_ops(ops)],
        NoHooks,
    );
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 0.1).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    assert!((s.accounting[0].sync_write - 0.1).abs() < 1e-6);
}

#[test]
fn drain_reaches_the_pfs_in_background() {
    let bb = BurstBufferConfig {
        size_bytes: 1e9,
        absorb_rate: 1e9,
        drain_rate: 10.0 * MB,
    };
    let ops = vec![
        Op::Write {
            file: FileId(0),
            bytes: 100.0 * MB,
        },
        Op::Compute { seconds: 20.0 },
    ];
    let mut w = World::new(
        cfg_with_bb(1, 1e9, bb),
        vec![Program::from_ops(ops)],
        NoHooks,
    );
    w.create_file("f");
    w.run();
    let s = w.pfs_series(mpisim::Channel::Write);
    // The drain is smeared at 10 MB/s for 10 s — never a burst.
    assert!(s.max_value() <= 10.0 * MB + 1.0, "peak {}", s.max_value());
    let moved = s.integral(SimTime::ZERO, SimTime::from_secs(30.0));
    assert!((moved - 100.0 * MB).abs() < 1.0, "drained {moved}");
}

#[test]
fn full_buffer_degrades_to_write_through() {
    // Buffer of 50 MB, bursts of 40 MB with no drain time between them:
    // later bursts hit a full buffer and crawl at the drain rate.
    let bb = BurstBufferConfig {
        size_bytes: 50.0 * MB,
        absorb_rate: 1e9,
        drain_rate: 1.0 * MB,
    };
    let ops = vec![
        Op::Write {
            file: FileId(0),
            bytes: 40.0 * MB,
        },
        Op::Write {
            file: FileId(0),
            bytes: 40.0 * MB,
        },
        Op::Write {
            file: FileId(0),
            bytes: 40.0 * MB,
        },
    ];
    let mut w = World::new(
        cfg_with_bb(1, 1e9, bb),
        vec![Program::from_ops(ops)],
        NoHooks,
    );
    w.create_file("f");
    let s = w.run();
    // First burst ≈ instant; the rest mostly at 1 MB/s: >> 60 s total.
    assert!(s.makespan() > 60.0, "makespan {}", s.makespan());
}

#[test]
fn spaced_bursts_stay_fast() {
    let bb = BurstBufferConfig {
        size_bytes: 100.0 * MB,
        absorb_rate: 1e9,
        drain_rate: 10.0 * MB,
    };
    let mut ops = Vec::new();
    for _ in 0..5 {
        ops.push(Op::Write {
            file: FileId(0),
            bytes: 40.0 * MB,
        });
        ops.push(Op::Compute { seconds: 10.0 }); // 100 MB of drain headroom
    }
    let mut w = World::new(
        cfg_with_bb(1, 1e9, bb),
        vec![Program::from_ops(ops)],
        NoHooks,
    );
    w.create_file("f");
    let s = w.run();
    // Each write ≈ 0.04 s; runtime ≈ 5 × 10.04 s.
    assert!(
        (s.makespan() - 50.2).abs() < 0.1,
        "makespan {}",
        s.makespan()
    );
    assert!(s.accounting[0].sync_write < 0.3);
}

#[test]
fn async_writes_also_use_the_buffer() {
    let bb = BurstBufferConfig {
        size_bytes: 1e9,
        absorb_rate: 1e9,
        drain_rate: 10.0 * MB,
    };
    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 100.0 * MB,
            tag: ReqTag(0),
        },
        Op::Compute { seconds: 1.0 },
        Op::Wait { tag: ReqTag(0) },
    ];
    // PFS at 10 MB/s would take 10 s; the BB absorbs in 0.1 s, so the wait
    // is free even though the drain continues long after.
    let mut w = World::new(
        cfg_with_bb(1, 10.0 * MB, bb),
        vec![Program::from_ops(ops)],
        NoHooks,
    );
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 1.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    assert!(s.accounting[0].wait_write < 1e-9);
}

#[test]
fn reads_bypass_the_buffer() {
    let bb = BurstBufferConfig {
        size_bytes: 1e9,
        absorb_rate: 1e9,
        drain_rate: 10.0 * MB,
    };
    let ops = vec![Op::Read {
        file: FileId(0),
        bytes: 100.0 * MB,
    }];
    let mut w = World::new(
        cfg_with_bb(1, 10.0 * MB, bb),
        vec![Program::from_ops(ops)],
        NoHooks,
    );
    w.create_file("f");
    let s = w.run();
    // Read goes straight to the 10 MB/s PFS: 10 s.
    assert!(
        (s.makespan() - 10.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
}

#[test]
fn limiter_paces_the_drain() {
    struct SetLimit;
    impl mpisim::IoHooks for SetLimit {
        fn on_sync_begin(
            &mut self,
            _t: SimTime,
            rank: usize,
            _bytes: f64,
            _channel: mpisim::Channel,
            limits: &mut mpisim::Limits,
        ) -> f64 {
            limits.set(rank, Some(5.0 * MB));
            0.0
        }
    }
    let bb = BurstBufferConfig {
        size_bytes: 1e9,
        absorb_rate: 1e9,
        drain_rate: 50.0 * MB,
    };
    let mut cfg = cfg_with_bb(1, 1e9, bb);
    cfg.limiter_enabled = true;
    let ops = vec![
        Op::Write {
            file: FileId(0),
            bytes: 50.0 * MB,
        },
        Op::Compute { seconds: 20.0 },
    ];
    let mut w = World::new(cfg, vec![Program::from_ops(ops)], SetLimit);
    w.create_file("f");
    w.run();
    // The drain flow is capped at min(drain_rate, limit) = 5 MB/s.
    let peak = w.pfs_series(mpisim::Channel::Write).max_value();
    assert!(peak <= 5.0 * MB + 1.0, "drain peak {peak}");
}

//! Tests for two-phase collective I/O (`MPI_File_write_at_all`).

use mpisim::{FileId, NoHooks, Op, Program, World, WorldConfig};
use pfsim::PfsConfig;

const MB: f64 = 1e6;

fn cfg(n: usize, cap: f64) -> WorldConfig {
    let mut c = WorldConfig::new(n);
    c.pfs = PfsConfig {
        write_capacity: cap,
        read_capacity: cap,
    };
    c
}

#[test]
fn collective_write_synchronizes_and_completes() {
    // 16 ranks × 10 MB = 160 MB over 100 MB/s -> 1.6 s of transfer through
    // 4 aggregators, plus the shuffle.
    let ops = vec![Op::WriteAll {
        file: FileId(0),
        bytes: 10.0 * MB,
    }];
    let mut w = World::new(
        cfg(16, 100.0 * MB),
        vec![Program::from_ops(ops); 16],
        NoHooks,
    );
    w.create_file("f");
    let s = w.run();
    let shuffle = 160.0 * MB / 12.5e9; // per-rank bytes × n / net bw
    assert!(
        (s.makespan() - 1.6 - shuffle).abs() < 0.01,
        "makespan {}",
        s.makespan()
    );
    // Every rank accounts the same blocked time (synchronizing op).
    for a in &s.accounting {
        assert!((a.sync_write - s.makespan()).abs() < 1e-6);
    }
    assert_eq!(w.file_bytes(FileId(0)), 160.0 * MB);
}

#[test]
fn collective_uses_few_large_flows() {
    // Aggregation means the PFS sees ⌈√n⌉ concurrent flows, not n. With
    // per-flow fair sharing this is visible through timing when another
    // independent flow competes — here we just assert the byte accounting
    // and that reads work symmetrically.
    let ops = vec![
        Op::WriteAll {
            file: FileId(0),
            bytes: 1.0 * MB,
        },
        Op::ReadAll {
            file: FileId(0),
            bytes: 1.0 * MB,
        },
    ];
    let mut w = World::new(cfg(9, 100.0 * MB), vec![Program::from_ops(ops); 9], NoHooks);
    w.create_file("f");
    let s = w.run();
    // write: 9 MB/100 MB/s = 0.09 s (+shuffle), read likewise.
    assert!(
        s.makespan() > 0.18 && s.makespan() < 0.21,
        "makespan {}",
        s.makespan()
    );
    for a in &s.accounting {
        assert!(a.sync_read > 0.08);
    }
}

#[test]
fn collective_slower_ranks_gate_the_io() {
    // Rank 1 computes 1 s before the collective: nobody's I/O starts early.
    let fast = Program::from_ops(vec![Op::WriteAll {
        file: FileId(0),
        bytes: 10.0 * MB,
    }]);
    let slow = Program::from_ops(vec![
        Op::Compute { seconds: 1.0 },
        Op::WriteAll {
            file: FileId(0),
            bytes: 10.0 * MB,
        },
    ]);
    let mut w = World::new(cfg(2, 100.0 * MB), vec![fast, slow], NoHooks);
    w.create_file("f");
    let s = w.run();
    assert!(
        s.makespan() > 1.2,
        "I/O gated on the slow rank: {}",
        s.makespan()
    );
}

#[test]
fn collective_vs_individual_contention() {
    // 64 ranks individually writing 2 MB each create 64 competing flows;
    // collectively they funnel through 8 aggregators. Total bytes and
    // channel capacity are identical — so is the transfer time — but the
    // collective path adds only the shuffle, and both finish closely.
    // (The real win of collective I/O — locking, small-block elimination —
    // is below this model; this test pins the modeled semantics.)
    let n = 64;
    let indiv = Program::from_ops(vec![Op::Write {
        file: FileId(0),
        bytes: 2.0 * MB,
    }]);
    let coll = Program::from_ops(vec![Op::WriteAll {
        file: FileId(0),
        bytes: 2.0 * MB,
    }]);
    let run = |p: Program| {
        let mut w = World::new(cfg(n, 100.0 * MB), vec![p; 64], NoHooks);
        w.create_file("f");
        w.run().makespan()
    };
    let t_indiv = run(indiv);
    let t_coll = run(coll);
    assert!((t_indiv - 1.28).abs() < 0.01, "individual {t_indiv}");
    assert!(
        t_coll > t_indiv && t_coll < t_indiv + 0.05,
        "collective {t_coll}"
    );
}

#[test]
#[should_panic(expected = "collective mismatch")]
fn mixed_collective_io_kinds_panic() {
    let a = Program::from_ops(vec![Op::WriteAll {
        file: FileId(0),
        bytes: 1.0,
    }]);
    let b = Program::from_ops(vec![Op::ReadAll {
        file: FileId(0),
        bytes: 1.0,
    }]);
    let mut w = World::new(cfg(2, 1e9), vec![a, b], NoHooks);
    w.create_file("f");
    w.run();
}

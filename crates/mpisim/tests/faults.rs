//! Fault-injection behaviour of the world: retry/backoff, terminal op
//! errors, cancellations, stragglers, and capacity-fault windows.

use mpisim::{
    Channel, FaultPlan, FileId, IoErrorKind, IoHooks, Limits, NoHooks, Op, Program, ReqTag,
    RunSummary, World, WorldConfig,
};
use simcore::{CancelSpec, ChannelFaultWindow, FaultChannel, IoErrorModel, SimTime, StragglerSpec};

fn run_with(cfg: WorldConfig, programs: Vec<Program>) -> RunSummary {
    let mut world = World::new(cfg, programs, NoHooks);
    world.create_file("f");
    world.run()
}

fn async_write_program(bytes: f64) -> Program {
    Program::from_ops(vec![
        Op::IWrite {
            file: FileId(0),
            bytes,
            tag: ReqTag(0),
        },
        Op::Compute { seconds: 0.01 },
        Op::Wait { tag: ReqTag(0) },
    ])
}

#[test]
fn empty_plan_reproduces_baseline_exactly() {
    let mk = |faults: FaultPlan| {
        let cfg = WorldConfig::new(4).with_faults(faults);
        let programs = (0..4).map(|_| async_write_program(64e6)).collect();
        run_with(cfg, programs)
    };
    let base = mk(FaultPlan::empty());
    // A plan with only neutral magnitudes must be indistinguishable.
    let neutral = mk(FaultPlan {
        seed: 99,
        channel_faults: vec![ChannelFaultWindow {
            channel: FaultChannel::Both,
            start: 0.0,
            end: 100.0,
            factor: 1.0,
        }],
        io_errors: Some(IoErrorModel::with_prob(0.0)),
        stragglers: vec![StragglerSpec {
            rank: 1,
            factor: 1.0,
        }],
        ..FaultPlan::default()
    });
    assert_eq!(base.end_time, neutral.end_time);
    assert_eq!(base.accounting, neutral.accounting);
    assert!(base.op_errors.is_empty() && neutral.op_errors.is_empty());
}

#[test]
fn transient_errors_retry_and_extend_the_run() {
    let fail_some = FaultPlan {
        seed: 7,
        io_errors: Some(IoErrorModel::with_prob(0.2)),
        ..FaultPlan::default()
    };
    let base = run_with(
        WorldConfig::new(2),
        (0..2).map(|_| async_write_program(64e6)).collect(),
    );
    let faulty = run_with(
        WorldConfig::new(2).with_faults(fail_some.clone()),
        (0..2).map(|_| async_write_program(64e6)).collect(),
    );
    // prob 0.2 over 64 sub-requests per rank: some retries must happen, and
    // every backoff is accounted.
    let retry: f64 = faulty.accounting.iter().map(|a| a.retry).sum();
    assert!(retry > 0.0, "expected retry backoff time, got none");
    assert!(faulty.end_time >= base.end_time);
    // Retries are bounded and the run completed without deadlock.
    assert!(faulty.end_time.as_secs() < base.end_time.as_secs() + 60.0);
    // Same plan, same seed: bit-identical replay.
    let replay = run_with(
        WorldConfig::new(2).with_faults(fail_some),
        (0..2).map(|_| async_write_program(64e6)).collect(),
    );
    assert_eq!(faulty.end_time, replay.end_time);
    assert_eq!(faulty.accounting, replay.accounting);
    assert_eq!(faulty.op_errors, replay.op_errors);
}

#[test]
fn certain_failure_exhausts_retries_and_surfaces_error() {
    let always_fail = FaultPlan {
        seed: 1,
        io_errors: Some(IoErrorModel {
            prob: 1.0,
            kinds: vec![IoErrorKind::Timeout],
        }),
        ..FaultPlan::default()
    };
    let cfg = WorldConfig::new(1).with_faults(always_fail.clone());
    let summary = run_with(cfg, vec![async_write_program(4e6)]);
    assert_eq!(summary.op_errors.len(), 1, "one op, one terminal error");
    let err = summary.op_errors[0];
    assert_eq!(err.rank, 0);
    assert_eq!(err.tag, Some(ReqTag(0)));
    assert_eq!(err.kind, IoErrorKind::Timeout);
    assert_eq!(err.attempts, always_fail.retry.max_retries + 1);
    // The failed wait returned instead of hanging; the rank finished.
    assert!(summary.finished_at[0] > SimTime::ZERO);
    // All backoffs were slept in virtual time.
    let expected_backoff: f64 = (0..always_fail.retry.max_retries)
        .map(|r| always_fail.retry.backoff(r))
        .sum();
    assert!((summary.accounting[0].retry - expected_backoff).abs() < 1e-12);
}

#[test]
fn sync_op_failure_releases_the_rank() {
    let always_fail = FaultPlan {
        seed: 3,
        io_errors: Some(IoErrorModel {
            prob: 1.0,
            kinds: vec![IoErrorKind::NoSpace],
        }),
        ..FaultPlan::default()
    };
    let program = Program::from_ops(vec![
        Op::Write {
            file: FileId(0),
            bytes: 4e6,
        },
        Op::Compute { seconds: 0.001 },
    ]);
    let summary = run_with(WorldConfig::new(1).with_faults(always_fail), vec![program]);
    assert_eq!(summary.op_errors.len(), 1);
    assert_eq!(summary.op_errors[0].tag, None, "blocking call has no tag");
    assert_eq!(summary.op_errors[0].kind, IoErrorKind::NoSpace);
    // The rank ran its compute after the failed write.
    assert!(summary.accounting[0].compute > 0.0);
}

#[test]
fn cancellation_aborts_request_with_ecanceled() {
    let plan = FaultPlan {
        cancellations: vec![CancelSpec {
            rank: 0,
            op_index: 0,
        }],
        ..FaultPlan::default()
    };
    let summary = run_with(
        WorldConfig::new(1).with_faults(plan),
        vec![async_write_program(64e6)],
    );
    assert_eq!(summary.op_errors.len(), 1);
    assert_eq!(summary.op_errors[0].kind, IoErrorKind::Cancelled);
    // Cancelled after the first in-flight sub-request: far sooner than the
    // full 64 MB transfer.
    let full = run_with(WorldConfig::new(1), vec![async_write_program(64e6)]);
    assert!(summary.op_errors[0].at < full.end_time.as_secs());
}

#[test]
fn straggler_rank_slows_only_itself() {
    let plan = FaultPlan {
        stragglers: vec![StragglerSpec {
            rank: 1,
            factor: 3.0,
        }],
        ..FaultPlan::default()
    };
    let programs: Vec<Program> = (0..2)
        .map(|_| Program::from_ops(vec![Op::Compute { seconds: 0.1 }]))
        .collect();
    let summary = run_with(WorldConfig::new(2).with_faults(plan), programs);
    assert!((summary.accounting[0].compute - 0.1).abs() < 1e-12);
    assert!((summary.accounting[1].compute - 0.3).abs() < 1e-12);
}

#[test]
fn outage_window_freezes_then_run_completes() {
    // 1 GB at the default 106 GB/s takes ~9.4 ms; a [5ms, 50ms) write
    // outage must stall the transfer and push completion past 50 ms.
    let plan = FaultPlan {
        channel_faults: vec![ChannelFaultWindow {
            channel: FaultChannel::Write,
            start: 0.005,
            end: 0.050,
            factor: 0.0,
        }],
        ..FaultPlan::default()
    };
    let program = Program::from_ops(vec![Op::Write {
        file: FileId(0),
        bytes: 1e9,
    }]);
    let base = run_with(WorldConfig::new(1), vec![program.clone()]);
    assert!(base.end_time.as_secs() < 0.02);
    let faulty = run_with(WorldConfig::new(1).with_faults(plan), vec![program]);
    assert!(
        faulty.end_time.as_secs() > 0.050,
        "outage must delay completion, got {}",
        faulty.end_time.as_secs()
    );
    assert!(
        faulty.end_time.as_secs() < base.end_time.as_secs() + 0.050 + 1e-6,
        "outage stalls, it does not lose progress"
    );
}

#[test]
fn degraded_window_slows_reads_proportionally() {
    // Half-capacity read window covering the whole transfer → 2× duration.
    let plan = FaultPlan {
        channel_faults: vec![ChannelFaultWindow {
            channel: FaultChannel::Read,
            start: 0.0,
            end: 1e3,
            factor: 0.5,
        }],
        ..FaultPlan::default()
    };
    let program = Program::from_ops(vec![Op::Read {
        file: FileId(0),
        bytes: 1e9,
    }]);
    let base = run_with(WorldConfig::new(1), vec![program.clone()]);
    let slow = run_with(WorldConfig::new(1).with_faults(plan), vec![program]);
    let ratio = slow.end_time.as_secs() / base.end_time.as_secs();
    assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
}

#[test]
fn wait_and_test_report_failure_instead_of_hanging() {
    // Observer checks that a failed request flows through the hook surface:
    // retries first, then the terminal error, then the wait exits.
    #[derive(Default)]
    struct Obs {
        retries: u32,
        errors: Vec<(usize, Option<ReqTag>, IoErrorKind)>,
        wait_exited: bool,
    }
    impl IoHooks for Obs {
        fn on_io_retry(
            &mut self,
            _t: SimTime,
            _rank: usize,
            _tag: Option<ReqTag>,
            _kind: IoErrorKind,
            _retry: u32,
            _backoff: f64,
        ) {
            self.retries += 1;
        }
        fn on_op_error(
            &mut self,
            _t: SimTime,
            rank: usize,
            tag: Option<ReqTag>,
            kind: IoErrorKind,
            _attempts: u32,
        ) {
            self.errors.push((rank, tag, kind));
        }
        fn on_wait_exit(
            &mut self,
            _t: SimTime,
            _rank: usize,
            _tag: ReqTag,
            _limits: &mut Limits,
        ) -> f64 {
            self.wait_exited = true;
            0.0
        }
    }
    let plan = FaultPlan {
        seed: 5,
        io_errors: Some(IoErrorModel {
            prob: 1.0,
            kinds: vec![IoErrorKind::Io],
        }),
        ..FaultPlan::default()
    };
    let mut world = World::new(
        WorldConfig::new(1).with_faults(plan.clone()),
        vec![async_write_program(4e6)],
        Obs::default(),
    );
    world.create_file("f");
    let summary = world.run();
    let obs = world.into_hooks();
    assert_eq!(obs.retries, plan.retry.max_retries);
    assert_eq!(obs.errors, vec![(0, Some(ReqTag(0)), IoErrorKind::Io)]);
    assert!(obs.wait_exited, "the failed wait must exit");
    assert_eq!(summary.op_errors.len(), 1);
}

#[test]
fn fault_window_composes_with_capacity_noise_channel() {
    // A degraded window on top of the nominal capacity still lets the run
    // finish; sanity-check against a plan hitting both channels.
    let plan = FaultPlan {
        channel_faults: vec![ChannelFaultWindow {
            channel: FaultChannel::Both,
            start: 0.0,
            end: 10.0,
            factor: 0.25,
        }],
        ..FaultPlan::default()
    };
    let program = Program::from_ops(vec![
        Op::Write {
            file: FileId(0),
            bytes: 2e8,
        },
        Op::Read {
            file: FileId(0),
            bytes: 2e8,
        },
    ]);
    let summary = run_with(WorldConfig::new(1).with_faults(plan), vec![program]);
    assert!(summary.op_errors.is_empty());
    let _ = Channel::Write; // channel vocabulary re-exported for callers
    assert!(summary.end_time.as_secs() > 0.0);
}

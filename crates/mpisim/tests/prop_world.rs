//! Property-based invariants of the runtime: time accounting closes, bytes
//! are conserved, async never loses to sync, determinism holds.

use mpisim::{FileId, NoHooks, Op, Program, ReqTag, World, WorldConfig};
use pfsim::PfsConfig;
use proptest::prelude::*;
use simcore::Noise;

/// A generated periodic workload.
#[derive(Clone, Debug)]
struct Workload {
    ranks: usize,
    segments: usize,
    block_mb: f64,
    compute_s: f64,
    capacity_mbs: f64,
    with_barrier: bool,
    seed: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        1usize..6,
        1usize..6,
        0.5f64..40.0,
        0.01f64..0.5,
        50.0f64..2000.0,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(ranks, segments, block_mb, compute_s, capacity_mbs, with_barrier, seed)| Workload {
                ranks,
                segments,
                block_mb,
                compute_s,
                capacity_mbs,
                with_barrier,
                seed,
            },
        )
}

fn program(w: &Workload, asynchronous: bool) -> Program {
    let mut ops = Vec::new();
    for k in 0..w.segments as u32 {
        if asynchronous {
            ops.push(Op::IWrite {
                file: FileId(0),
                bytes: w.block_mb * 1e6,
                tag: ReqTag(k),
            });
            ops.push(Op::Compute {
                seconds: w.compute_s,
            });
            ops.push(Op::Wait { tag: ReqTag(k) });
        } else {
            ops.push(Op::Compute {
                seconds: w.compute_s,
            });
            ops.push(Op::Write {
                file: FileId(0),
                bytes: w.block_mb * 1e6,
            });
        }
        if w.with_barrier {
            ops.push(Op::Barrier);
        }
    }
    Program::from_ops(ops)
}

fn world(w: &Workload, asynchronous: bool) -> World<NoHooks> {
    let mut cfg = WorldConfig::new(w.ranks).with_seed(w.seed);
    cfg.pfs = PfsConfig {
        write_capacity: w.capacity_mbs * 1e6,
        read_capacity: w.capacity_mbs * 1e6,
    };
    cfg.compute_noise = Noise::UniformRel(0.05);
    let mut wd = World::new(cfg, vec![program(w, asynchronous); w.ranks], NoHooks);
    wd.create_file("f");
    wd
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-rank accounting closes: every second of a rank's lifetime is in
    /// exactly one bucket.
    #[test]
    fn accounting_identity(w in arb_workload(), asynchronous in any::<bool>()) {
        let s = world(&w, asynchronous).run();
        for (rank, acct) in s.accounting.iter().enumerate() {
            let sum = acct.compute
                + acct.memcpy
                + acct.sync_write
                + acct.sync_read
                + acct.wait_write
                + acct.wait_read
                + acct.collective
                + acct.overhead;
            let end = s.finished_at[rank].as_secs();
            prop_assert!(
                (sum - end).abs() < 1e-6 * end.max(1.0),
                "rank {rank}: buckets {sum} vs end {end}"
            );
        }
    }

    /// All written bytes arrive: the file byte count matches the program.
    #[test]
    fn bytes_conserved(w in arb_workload(), asynchronous in any::<bool>()) {
        let mut wd = world(&w, asynchronous);
        wd.run();
        let expected = w.ranks as f64 * w.segments as f64 * w.block_mb * 1e6;
        prop_assert!((wd.file_bytes(FileId(0)) - expected).abs() < 1.0);
    }

    /// The async variant never runs longer than the sync variant (overlap
    /// can only help; barriers keep the phases aligned).
    #[test]
    fn async_never_slower_than_sync(w in arb_workload()) {
        let sync = world(&w, false).run().makespan();
        let asy = world(&w, true).run().makespan();
        prop_assert!(
            asy <= sync * (1.0 + 1e-9) + 1e-9,
            "async {asy} vs sync {sync}"
        );
    }

    /// Makespan is bounded below by compute alone and above by the serial
    /// sum of compute and I/O through the shared channel.
    #[test]
    fn makespan_bounds(w in arb_workload(), asynchronous in any::<bool>()) {
        let s = world(&w, asynchronous).run();
        let mk = s.makespan();
        let min_compute = w.segments as f64 * w.compute_s * 0.95; // noise floor
        prop_assert!(mk >= min_compute - 1e-9, "makespan {mk} < compute {min_compute}");
        let io_serial =
            w.ranks as f64 * w.segments as f64 * w.block_mb * 1e6 / (w.capacity_mbs * 1e6);
        let max = w.segments as f64 * w.compute_s * 1.05 + io_serial + 1.0;
        prop_assert!(mk <= max, "makespan {mk} > bound {max}");
    }

    /// Identical seeds give identical runs; different seeds (with noise)
    /// exist that differ — determinism without degeneracy.
    #[test]
    fn determinism(w in arb_workload()) {
        let a = world(&w, true).run();
        let b = world(&w, true).run();
        prop_assert_eq!(a.makespan(), b.makespan());
        for (x, y) in a.finished_at.iter().zip(&b.finished_at) {
            prop_assert_eq!(x, y);
        }
    }

    /// A limiter driven by a well-tempered strategy keeps the runtime within
    /// a few percent on uniform periodic workloads.
    #[test]
    fn gentle_limiting_is_harmless(mut w in arb_workload()) {
        // Uniform phases; ensure the I/O actually fits its window at B·1.3.
        w.with_barrier = false;
        let base = world(&w, true).run().makespan();

        let mut cfg = WorldConfig::new(w.ranks).with_seed(w.seed).with_limiter(true);
        cfg.pfs = PfsConfig {
            write_capacity: w.capacity_mbs * 1e6,
            read_capacity: w.capacity_mbs * 1e6,
        };
        cfg.compute_noise = Noise::UniformRel(0.05);
        let tracer = tmio_shim::tracer(w.ranks);
        let mut wd = World::new(cfg, vec![program(&w, true); w.ranks], tracer);
        wd.create_file("f");
        let lim = wd.run().makespan();
        prop_assert!(
            lim <= base * 1.35 + 0.2,
            "limited {lim} vs base {base}"
        );
    }
}

/// Minimal local re-implementation of a direct-strategy limiter so this
/// crate's tests do not depend on `tmio` (which depends on `mpisim`): set
/// the limit to 1.3 × bytes/window at each wait.
mod tmio_shim {
    use mpisim::{Channel, IoHooks, Limits, ReqTag};
    use simcore::SimTime;
    use std::collections::HashMap;

    pub struct MiniTracer {
        submit: HashMap<(usize, u32), (SimTime, f64)>,
    }

    pub fn tracer(_ranks: usize) -> MiniTracer {
        MiniTracer {
            submit: HashMap::new(),
        }
    }

    impl IoHooks for MiniTracer {
        fn on_async_submit(
            &mut self,
            t: SimTime,
            rank: usize,
            tag: ReqTag,
            bytes: f64,
            _channel: Channel,
            _limits: &mut Limits,
        ) -> f64 {
            self.submit.insert((rank, tag.0), (t, bytes));
            0.0
        }

        fn on_wait_enter(
            &mut self,
            t: SimTime,
            rank: usize,
            tag: ReqTag,
            _done: bool,
            limits: &mut Limits,
        ) -> f64 {
            if let Some((ts, bytes)) = self.submit.remove(&(rank, tag.0)) {
                let window = (t - ts).max(1e-9);
                limits.set(rank, Some((bytes / window * 1.3).max(1024.0)));
            }
            0.0
        }
    }
}

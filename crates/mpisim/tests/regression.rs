//! Regression tests for past engine bugs.

use mpisim::{NoHooks, Op, Program, World, WorldConfig};

/// Two equal ranks submitting merged sync writes once produced a PFS group
/// whose residual bytes mapped to a time increment below the ulp of the
/// clock, spinning `advance_to` at dt = 0 forever. The fluid engine now
/// snaps such residues to completion.
#[test]
fn merged_sync_writes_terminate() {
    let ops = vec![
        Op::Compute { seconds: 0.5 },
        Op::Write {
            file: mpisim::FileId(0),
            bytes: 1e9,
        },
        Op::Barrier,
    ];
    let mut w = World::new(
        WorldConfig::new(2),
        vec![Program::from_ops(ops); 2],
        NoHooks,
    );
    w.create_file("x");
    let s = w.run();
    // 2 GB over the 106 GB/s write channel ≈ 18.9 ms after the 0.5 s compute.
    assert!(
        s.makespan() > 0.5 && s.makespan() < 0.53,
        "makespan {}",
        s.makespan()
    );
}

/// Same shape at a large absolute time offset, where the clock ulp is coarser.
#[test]
fn merged_writes_terminate_at_large_times() {
    let ops = vec![
        Op::Compute { seconds: 50_000.0 },
        Op::Write {
            file: mpisim::FileId(0),
            bytes: 1e9,
        },
        Op::Barrier,
    ];
    let mut w = World::new(
        WorldConfig::new(2),
        vec![Program::from_ops(ops); 2],
        NoHooks,
    );
    w.create_file("x");
    let s = w.run();
    assert!(s.makespan() >= 50_000.0 && s.makespan() < 50_001.0);
}

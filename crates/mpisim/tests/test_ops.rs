//! Tests for `MPI_Test` and the poll-wait completion pattern.

use mpisim::{threaded::Threaded, FileId, NoHooks, Op, Program, ReqTag, World, WorldConfig};
use pfsim::PfsConfig;

const MB: f64 = 1e6;

fn cfg(n: usize, cap: f64) -> WorldConfig {
    let mut c = WorldConfig::new(n);
    c.pfs = PfsConfig {
        write_capacity: cap,
        read_capacity: cap,
    };
    c
}

#[test]
fn test_probe_keeps_request_live() {
    // Test before and after completion; the request still needs its wait.
    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 10.0 * MB,
            tag: ReqTag(0),
        },
        Op::Test { tag: ReqTag(0) }, // immediately after submit: not done
        Op::Compute { seconds: 1.0 },
        Op::Test { tag: ReqTag(0) }, // long after: done
        Op::Wait { tag: ReqTag(0) },
    ];
    let p = Program::from_ops(ops);
    assert!(p.validate().is_ok());
    let mut w = World::new(cfg(1, 100.0 * MB), vec![p], NoHooks);
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 1.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
}

#[test]
fn poll_wait_completes_and_accounts_lost_time() {
    // 200 MB at 100 MB/s = 2 s of I/O; only 0.5 s hidden -> ~1.5 s polled.
    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 200.0 * MB,
            tag: ReqTag(0),
        },
        Op::Compute { seconds: 0.5 },
        Op::PollWait {
            tag: ReqTag(0),
            interval: 0.01,
        },
    ];
    let mut w = World::new(cfg(1, 100.0 * MB), vec![Program::from_ops(ops)], NoHooks);
    w.create_file("f");
    let s = w.run();
    // Completion lands on a poll boundary: within one interval of 2.0 s.
    assert!(
        s.makespan() >= 2.0 && s.makespan() < 2.02,
        "makespan {}",
        s.makespan()
    );
    let lost = s.accounting[0].wait_write;
    assert!((lost - 1.5).abs() < 0.03, "lost {lost}");
}

#[test]
fn poll_wait_returns_immediately_when_done() {
    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 1.0 * MB,
            tag: ReqTag(0),
        },
        Op::Compute { seconds: 1.0 },
        Op::PollWait {
            tag: ReqTag(0),
            interval: 0.05,
        },
    ];
    let mut w = World::new(cfg(1, 100.0 * MB), vec![Program::from_ops(ops)], NoHooks);
    w.create_file("f");
    let s = w.run();
    assert!((s.makespan() - 1.0).abs() < 1e-6);
    assert!(s.accounting[0].wait_write < 1e-9);
}

#[test]
fn threaded_test_reports_status() {
    let mut tw = Threaded::new(cfg(1, 100.0 * MB), NoHooks);
    let f = tw.create_file("f");
    let (summary, _) = tw.run(move |ctx| {
        let req = ctx.iwrite(f, 50.0 * MB); // 0.5 s of I/O
        assert!(!ctx.test(&req), "cannot be done at submit time");
        ctx.compute(1.0);
        assert!(ctx.test(&req), "must be done after 1 s");
        ctx.wait(req);
    });
    assert!((summary.makespan() - 1.0).abs() < 1e-6);
}

#[test]
fn threaded_poll_wait() {
    let mut tw = Threaded::new(cfg(1, 100.0 * MB), NoHooks);
    let f = tw.create_file("f");
    let (summary, _) = tw.run(move |ctx| {
        let req = ctx.iwrite(f, 100.0 * MB); // 1 s of I/O
        ctx.compute(0.2);
        ctx.poll_wait(req, 0.01);
    });
    assert!(summary.makespan() >= 1.0 && summary.makespan() < 1.02);
}

#[test]
#[should_panic(expected = "unknown request")]
fn test_on_unknown_request_panics() {
    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 1.0,
            tag: ReqTag(0),
        },
        Op::Wait { tag: ReqTag(0) },
        Op::Test { tag: ReqTag(0) }, // already freed
    ];
    // Program::validate would reject this; bypass it via a custom driver.
    struct Raw(Vec<Op>, usize);
    impl mpisim::RankDriver for Raw {
        fn next_op(&mut self, _rank: usize, _now: simcore::SimTime) -> Option<Op> {
            let op = self.0.get(self.1).copied();
            self.1 += 1;
            op
        }
    }
    let mut w: World<NoHooks> = World::with_driver(cfg(1, 1e9), Box::new(Raw(ops, 0)), NoHooks);
    w.create_file("f");
    w.run();
}

//! Stress tests of the closure-per-rank front end: many ranks, mixed op
//! types, rank-dependent control flow, and equivalence with scripted runs.

use mpisim::{threaded::Threaded, NoHooks, WorldConfig};
use pfsim::PfsConfig;

fn cfg(n: usize) -> WorldConfig {
    let mut c = WorldConfig::new(n);
    c.pfs = PfsConfig {
        write_capacity: 1e9,
        read_capacity: 1e9,
    };
    c
}

#[test]
fn sixty_four_ranks_mixed_ops() {
    let mut tw = Threaded::new(cfg(64), NoHooks);
    let f = tw.create_file("out");
    let (summary, _) = tw.run(move |ctx| {
        for k in 0..5 {
            let w = ctx.iwrite(f, 2e6);
            let r = ctx.iread(f, 1e6);
            ctx.compute(0.02 + 0.001 * (ctx.rank() % 4) as f64);
            ctx.bcast(1024.0);
            ctx.wait(w);
            ctx.wait(r);
            if k % 2 == 0 {
                ctx.memcpy(1e6);
            }
            ctx.barrier();
        }
    });
    assert!(summary.makespan() > 0.1);
    // Every rank finished at the same barrier-aligned time.
    let t0 = summary.finished_at[0];
    for t in &summary.finished_at {
        assert_eq!(*t, t0, "barrier alignment");
    }
}

#[test]
fn rank_dependent_branches() {
    // Odd ranks write, even ranks read; all meet at barriers. Exercises
    // truly dynamic per-rank control flow (impossible to pre-script as a
    // single shared program).
    let mut tw = Threaded::new(cfg(8), NoHooks);
    let f = tw.create_file("out");
    let (summary, _) = tw.run(move |ctx| {
        for _ in 0..3 {
            if ctx.rank() % 2 == 1 {
                let req = ctx.iwrite(f, 4e6);
                ctx.compute(0.05);
                ctx.wait(req);
            } else {
                ctx.compute(0.03);
                ctx.read(f, 4e6);
            }
            ctx.barrier();
        }
    });
    assert!(summary.makespan() > 0.09);
    // Even ranks did sync reads, odd ranks did not.
    for (rank, a) in summary.accounting.iter().enumerate() {
        if rank % 2 == 0 {
            assert!(a.sync_read > 0.0, "rank {rank} read");
            assert_eq!(a.wait_write, 0.0);
        } else {
            assert_eq!(a.sync_read, 0.0, "rank {rank} wrote async");
        }
    }
}

#[test]
fn collective_io_through_threaded_api() {
    let mut tw = Threaded::new(cfg(9), NoHooks);
    let f = tw.create_file("out");
    let (summary, _) = tw.run(move |ctx| {
        ctx.compute(0.01);
        ctx.write_all(f, 1e6);
        ctx.read_all(f, 1e6);
    });
    // 9 MB write + 9 MB read over 1 GB/s plus shuffles.
    assert!(
        summary.makespan() > 0.028,
        "makespan {}",
        summary.makespan()
    );
    for a in &summary.accounting {
        assert!(a.sync_write > 0.0 && a.sync_read > 0.0);
    }
}

#[test]
fn repeated_runs_are_identical() {
    let run = || {
        let mut tw = Threaded::new(cfg(16), NoHooks);
        let f = tw.create_file("out");
        let (summary, _) = tw.run(move |ctx| {
            for _ in 0..4 {
                let w = ctx.iwrite(f, 1e6 * (1 + ctx.rank() % 3) as f64);
                ctx.compute(0.01);
                ctx.wait(w);
            }
        });
        summary.finished_at
    };
    assert_eq!(run(), run(), "threaded execution is deterministic");
}

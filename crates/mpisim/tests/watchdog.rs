//! Supervision behaviour of the event loop: the progress watchdog turns
//! never-completing runs (live-lock under an endless outage, a `Wait`
//! whose request is frozen) into typed [`SimError`]s with a diagnostic
//! [`StallSnapshot`] instead of spinning or hanging forever.

use mpisim::{
    FaultPlan, FileId, NoHooks, Op, Program, ReqTag, SimError, WatchdogCfg, World, WorldConfig,
};
use simcore::{ChannelFaultWindow, FaultChannel};

/// A write-channel outage from t=0 that never lifts.
fn endless_outage() -> FaultPlan {
    FaultPlan {
        seed: 1,
        channel_faults: vec![ChannelFaultWindow {
            channel: FaultChannel::Write,
            start: 0.0,
            end: f64::INFINITY,
            factor: 0.0,
        }],
        ..FaultPlan::default()
    }
}

fn try_run(cfg: WorldConfig, program: Program) -> Result<mpisim::RunSummary, SimError> {
    let mut world = World::new(cfg, vec![program], NoHooks);
    world.create_file("f");
    world.try_run()
}

#[test]
fn poll_wait_under_endless_outage_trips_the_watchdog() {
    // The classic busy-poll pattern: each probe burns compute and fires
    // fresh events, so the queue never drains — without the watchdog this
    // run spins forever in wall-clock time.
    let program = Program::from_ops(vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 8e6,
            tag: ReqTag(0),
        },
        Op::PollWait {
            tag: ReqTag(0),
            interval: 0.001,
        },
    ]);
    let cfg = WorldConfig::new(1)
        .with_faults(endless_outage())
        .with_watchdog(WatchdogCfg {
            max_futile_events: 500,
            max_stall: f64::INFINITY,
        });
    let err = try_run(cfg, program).expect_err("outage-frozen poll loop must fail");
    assert!(err.to_string().contains("watchdog: no progress"), "{err}");
    let SimError::Stalled(snap) = err else {
        panic!("expected Stalled, got {err}");
    };
    // The snapshot names the culprit: the frozen request and the polling rank.
    assert!(snap.futile_events > 500, "{snap:?}");
    assert_eq!(snap.blocked_ranks.len(), 1, "{snap:?}");
    assert!(snap.blocked_ranks[0].contains("rank 0"), "{snap:?}");
    assert!(
        snap.pending_ops.iter().any(|o| o.contains("ReqTag(0)")),
        "pending op with its tag expected in {snap:?}"
    );
    assert!(snap.at >= snap.last_advance);
}

#[test]
fn stall_time_bound_trips_independently_of_event_count() {
    // Same frozen poll loop, but bounded by virtual no-progress time: each
    // probe advances the clock 1 ms, so 1 s of stall is ~1000 probes —
    // well under the generous event bound.
    let program = Program::from_ops(vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 8e6,
            tag: ReqTag(0),
        },
        Op::PollWait {
            tag: ReqTag(0),
            interval: 0.001,
        },
    ]);
    let cfg = WorldConfig::new(1)
        .with_faults(endless_outage())
        .with_watchdog(WatchdogCfg {
            max_futile_events: u64::MAX,
            max_stall: 1.0,
        });
    let err = try_run(cfg, program).expect_err("stall-time bound must fail the run");
    let SimError::Stalled(snap) = err else {
        panic!("expected Stalled, got {err}");
    };
    assert!(snap.at - snap.last_advance > 1.0, "{snap:?}");
}

#[test]
fn frozen_wait_is_reported_as_deadlock() {
    // A blocking `Wait` on the frozen request fires no further events: the
    // queue drains with the rank still blocked — the deadlock shape, not
    // the live-lock shape.
    let program = Program::from_ops(vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 8e6,
            tag: ReqTag(0),
        },
        Op::Wait { tag: ReqTag(0) },
    ]);
    let cfg = WorldConfig::new(1).with_faults(endless_outage());
    let err = try_run(cfg, program).expect_err("frozen wait must fail");
    assert!(err.to_string().contains("deadlock"), "{err}");
    let SimError::Deadlock(snap) = err else {
        panic!("expected Deadlock, got {err}");
    };
    assert_eq!(snap.queue_depth, 0, "{snap:?}");
    assert!(snap.blocked_ranks[0].contains("rank 0"), "{snap:?}");
    assert!(
        snap.pending_ops.iter().any(|o| o.contains("ReqTag(0)")),
        "{snap:?}"
    );
}

#[test]
fn default_watchdog_never_trips_on_healthy_runs() {
    // A fault-free run with blocking and non-blocking I/O, collectives and
    // polling finishes untouched under the default thresholds.
    let mk = || {
        Program::from_ops(vec![
            Op::Barrier,
            Op::IWrite {
                file: FileId(0),
                bytes: 64e6,
                tag: ReqTag(0),
            },
            Op::Compute { seconds: 0.05 },
            Op::PollWait {
                tag: ReqTag(0),
                interval: 0.001,
            },
            Op::Write {
                file: FileId(0),
                bytes: 16e6,
            },
            Op::Barrier,
        ])
    };
    let mut world = World::new(WorldConfig::new(4), (0..4).map(|_| mk()).collect(), NoHooks);
    world.create_file("f");
    let summary = world.try_run().expect("healthy run must pass the watchdog");
    assert!(summary.end_time.as_secs() > 0.0);
}

//! Integration tests of the scripted world: timing semantics, overlap,
//! pacing, collectives, and accounting.

use mpisim::{NoHooks, Op, Program, World, WorldConfig};
use pfsim::PfsConfig;

fn cfg(n: usize, cap: f64) -> WorldConfig {
    let mut c = WorldConfig::new(n);
    c.pfs = PfsConfig {
        write_capacity: cap,
        read_capacity: cap,
    };
    c
}

fn uniform_world(n: usize, cap: f64, ops: Vec<Op>) -> World<NoHooks> {
    let programs = vec![Program::from_ops(ops); n];
    World::new(cfg(n, cap), programs, NoHooks)
}

const MB: f64 = 1e6;

#[test]
fn compute_only_runtime() {
    let mut w = uniform_world(4, 1e9, vec![Op::Compute { seconds: 2.0 }]);
    let s = w.run();
    assert!((s.makespan() - 2.0).abs() < 1e-9);
    for a in &s.accounting {
        assert!((a.compute - 2.0).abs() < 1e-9);
    }
}

#[test]
fn sync_write_time_adds_to_runtime() {
    // 1 rank, 100 MB at 100 MB/s = 1 s of I/O after 1 s compute.
    let mut w = uniform_world(
        1,
        100.0 * MB,
        vec![
            Op::Compute { seconds: 1.0 },
            Op::Write {
                file: mpisim::FileId(0),
                bytes: 100.0 * MB,
            },
        ],
    );
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 2.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    assert!((s.accounting[0].sync_write - 1.0).abs() < 1e-6);
}

#[test]
fn async_write_fully_hidden() {
    let mut w = uniform_world(
        1,
        100.0 * MB,
        vec![
            Op::IWrite {
                file: mpisim::FileId(0),
                bytes: 50.0 * MB,
                tag: mpisim::ReqTag(0),
            },
            Op::Compute { seconds: 1.0 }, // I/O takes 0.5 s, hidden
            Op::Wait {
                tag: mpisim::ReqTag(0),
            },
        ],
    );
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 1.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    assert!(s.accounting[0].wait_write < 1e-9);
}

#[test]
fn async_write_partially_visible() {
    // I/O takes 2 s but the compute window is 1 s -> 1 s lost in wait.
    let mut w = uniform_world(
        1,
        100.0 * MB,
        vec![
            Op::IWrite {
                file: mpisim::FileId(0),
                bytes: 200.0 * MB,
                tag: mpisim::ReqTag(0),
            },
            Op::Compute { seconds: 1.0 },
            Op::Wait {
                tag: mpisim::ReqTag(0),
            },
        ],
    );
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 2.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    assert!((s.accounting[0].wait_write - 1.0).abs() < 1e-6);
}

#[test]
fn reads_and_writes_use_separate_channels() {
    let mut w = uniform_world(
        1,
        100.0 * MB,
        vec![
            Op::IWrite {
                file: mpisim::FileId(0),
                bytes: 100.0 * MB,
                tag: mpisim::ReqTag(0),
            },
            Op::IRead {
                file: mpisim::FileId(0),
                bytes: 100.0 * MB,
                tag: mpisim::ReqTag(1),
            },
            Op::Compute { seconds: 2.0 },
            Op::Wait {
                tag: mpisim::ReqTag(0),
            },
            Op::Wait {
                tag: mpisim::ReqTag(1),
            },
        ],
    );
    w.create_file("f");
    let s = w.run();
    // Both transfers take 1 s in parallel on separate channels, hidden by 2 s.
    assert!(
        (s.makespan() - 2.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
}

#[test]
fn contention_slows_sync_writers() {
    // 4 ranks writing 100 MB each over a 100 MB/s channel: 4 s total.
    let mut w = uniform_world(
        4,
        100.0 * MB,
        vec![Op::Write {
            file: mpisim::FileId(0),
            bytes: 100.0 * MB,
        }],
    );
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 4.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
}

#[test]
fn barrier_synchronizes() {
    let mk = |secs: f64| {
        Program::from_ops(vec![
            Op::Compute { seconds: secs },
            Op::Barrier,
            Op::Compute { seconds: 0.5 },
        ])
    };
    let mut w = World::new(cfg(2, 1e9), vec![mk(1.0), mk(3.0)], NoHooks);
    let s = w.run();
    // Slow rank reaches barrier at 3.0; both finish ≈ 3.5.
    assert!(
        (s.makespan() - 3.5).abs() < 1e-3,
        "makespan {}",
        s.makespan()
    );
    assert!(
        s.accounting[0].collective > 1.9,
        "fast rank waited in barrier"
    );
}

#[test]
fn bcast_costs_scale_with_bytes() {
    let mut w1 = uniform_world(8, 1e9, vec![Op::Bcast { bytes: 0.0 }]);
    let small = w1.run().makespan();
    let mut w2 = uniform_world(8, 1e9, vec![Op::Bcast { bytes: 125e9 }]);
    let big = w2.run().makespan();
    // 125 GB over 12.5 GB/s net = 10 s extra.
    assert!(big > small + 9.9, "bcast bytes ignored: {big} vs {small}");
}

#[test]
fn memcpy_modeled_as_bandwidth() {
    let mut w = uniform_world(1, 1e9, vec![Op::Memcpy { bytes: 10e9 }]);
    let s = w.run();
    // Default memcpy bandwidth 10 GB/s -> 1 s.
    assert!((s.makespan() - 1.0).abs() < 1e-9);
    assert!((s.accounting[0].memcpy - 1.0).abs() < 1e-12);
}

#[test]
fn limiter_disabled_ignores_limits() {
    // With the limiter off, a stored limit must not slow I/O down.
    let mut c = cfg(1, 100.0 * MB);
    c.limiter_enabled = false;
    let p = Program::from_ops(vec![Op::Write {
        file: mpisim::FileId(0),
        bytes: 100.0 * MB,
    }]);
    let mut w = World::new(c, vec![p], NoHooks);
    w.create_file("f");
    let s = w.run();
    assert!((s.makespan() - 1.0).abs() < 1e-6);
}

#[test]
fn file_bytes_accumulate() {
    let mut w = uniform_world(
        2,
        1e9,
        vec![
            Op::Write {
                file: mpisim::FileId(0),
                bytes: 7.0 * MB,
            },
            Op::IWrite {
                file: mpisim::FileId(0),
                bytes: 3.0 * MB,
                tag: mpisim::ReqTag(0),
            },
            Op::Wait {
                tag: mpisim::ReqTag(0),
            },
        ],
    );
    let f = w.create_file("f");
    w.run();
    assert_eq!(w.file_bytes(f), 20.0 * MB);
}

#[test]
fn deterministic_with_noise() {
    use simcore::Noise;
    let run = || {
        let mut c = cfg(8, 1e9)
            .with_compute_noise(Noise::UniformRel(0.2))
            .with_seed(7);
        c.record_pfs = false;
        let ops = vec![
            Op::Compute { seconds: 1.0 },
            Op::Write {
                file: mpisim::FileId(0),
                bytes: 10.0 * MB,
            },
            Op::Compute { seconds: 1.0 },
        ];
        let mut w = World::new(c, vec![Program::from_ops(ops); 8], NoHooks);
        w.create_file("f");
        w.run().makespan()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert!(a > 2.0, "noise must not be a no-op in expectation check");
}

#[test]
fn different_seeds_differ() {
    use simcore::Noise;
    let run = |seed| {
        let c = cfg(4, 1e9)
            .with_compute_noise(Noise::UniformRel(0.2))
            .with_seed(seed);
        let ops = vec![Op::Compute { seconds: 1.0 }];
        let mut w = World::new(c, vec![Program::from_ops(ops); 4], NoHooks);
        w.run().makespan()
    };
    assert_ne!(run(1), run(2));
}

#[test]
#[should_panic(expected = "program invalid")]
fn invalid_program_rejected() {
    let p = Program::from_ops(vec![Op::Wait {
        tag: mpisim::ReqTag(0),
    }]);
    let _ = World::new(cfg(1, 1e9), vec![p], NoHooks);
}

#[test]
#[should_panic(expected = "collective mismatch")]
fn mismatched_collectives_panic() {
    let a = Program::from_ops(vec![Op::Barrier]);
    let b = Program::from_ops(vec![Op::Bcast { bytes: 8.0 }]);
    let mut w = World::new(cfg(2, 1e9), vec![a, b], NoHooks);
    w.run();
}

#[test]
fn pfs_series_recorded() {
    let mut w = uniform_world(
        1,
        100.0 * MB,
        vec![Op::Write {
            file: mpisim::FileId(0),
            bytes: 100.0 * MB,
        }],
    );
    w.create_file("f");
    w.run();
    let s = w.pfs_series(mpisim::Channel::Write);
    let moved = s.integral(simcore::SimTime::ZERO, simcore::SimTime::from_secs(10.0));
    assert!((moved - 100.0 * MB).abs() < 1.0, "bytes moved {moved}");
}

/// The central pacing test: a limited async write is stretched to its limit
/// and still hidden when the compute window suffices.
#[test]
fn limited_async_write_stretches_to_limit() {
    struct SetLimit;
    impl mpisim::IoHooks for SetLimit {
        fn on_async_submit(
            &mut self,
            _t: simcore::SimTime,
            rank: usize,
            _tag: mpisim::ReqTag,
            _bytes: f64,
            _channel: mpisim::Channel,
            limits: &mut mpisim::Limits,
        ) -> f64 {
            limits.set(rank, Some(10.0 * MB)); // 10 MB/s
            0.0
        }
    }
    let mut c = cfg(1, 100.0 * MB);
    c.limiter_enabled = true;
    c.subreq_bytes = MB;
    let ops = vec![
        Op::IWrite {
            file: mpisim::FileId(0),
            bytes: 20.0 * MB,
            tag: mpisim::ReqTag(0),
        },
        Op::Compute { seconds: 3.0 },
        Op::Wait {
            tag: mpisim::ReqTag(0),
        },
    ];
    let mut w = World::new(c, vec![Program::from_ops(ops)], SetLimit);
    w.create_file("f");
    let s = w.run();
    // 20 MB at 10 MB/s = 2 s of paced I/O, hidden in the 3 s window.
    assert!(
        (s.makespan() - 3.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    // The peak PFS rate is bounded by ~capacity only during bursts, but the
    // average over the paced interval is ~10 MB/s: check the burst flattening
    // by integrating over the first 2 s.
    let moved = w
        .pfs_series(mpisim::Channel::Write)
        .integral(simcore::SimTime::ZERO, simcore::SimTime::from_secs(2.0));
    assert!(
        (moved - 20.0 * MB).abs() / MB < 1.2,
        "paced transfer should take ~2 s, moved {moved}"
    );
}

/// Case B: when the PFS is slower than the limit, no extra sleeping happens.
#[test]
fn limit_above_capacity_adds_no_delay() {
    struct SetLimit;
    impl mpisim::IoHooks for SetLimit {
        fn on_async_submit(
            &mut self,
            _t: simcore::SimTime,
            rank: usize,
            _tag: mpisim::ReqTag,
            _bytes: f64,
            _channel: mpisim::Channel,
            limits: &mut mpisim::Limits,
        ) -> f64 {
            limits.set(rank, Some(1e12)); // far above capacity
            0.0
        }
    }
    let mut c = cfg(1, 100.0 * MB);
    c.limiter_enabled = true;
    c.subreq_bytes = MB;
    let ops = vec![
        Op::IWrite {
            file: mpisim::FileId(0),
            bytes: 100.0 * MB,
            tag: mpisim::ReqTag(0),
        },
        Op::Wait {
            tag: mpisim::ReqTag(0),
        },
    ];
    let mut w = World::new(c, vec![Program::from_ops(ops)], SetLimit);
    w.create_file("f");
    let s = w.run();
    assert!(
        (s.makespan() - 1.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
}

/// Deficit accounting: a slow first sub-request reduces later sleeps so the
/// overall request still meets the limit-rate schedule.
#[test]
fn deficit_reduces_later_sleeps() {
    struct SetLimit;
    impl mpisim::IoHooks for SetLimit {
        fn on_async_submit(
            &mut self,
            _t: simcore::SimTime,
            rank: usize,
            _tag: mpisim::ReqTag,
            _bytes: f64,
            _channel: mpisim::Channel,
            limits: &mut mpisim::Limits,
        ) -> f64 {
            limits.set(rank, Some(50.0 * MB));
            0.0
        }
    }
    // Capacity starts at 10 MB/s (slower than the 50 MB/s limit) and rises to
    // 1 GB/s at t=1: the first sub-requests run slow and bank deficit, later
    // ones run fast; the banked deficit shortens their sleeps.
    let mut c = cfg(1, 10.0 * MB);
    c.limiter_enabled = true;
    c.subreq_bytes = 5.0 * MB;
    let ops = vec![
        Op::IWrite {
            file: mpisim::FileId(0),
            bytes: 50.0 * MB,
            tag: mpisim::ReqTag(0),
        },
        Op::Compute { seconds: 10.0 },
        Op::Wait {
            tag: mpisim::ReqTag(0),
        },
    ];
    let mut w = World::new(c, vec![Program::from_ops(ops)], SetLimit);
    w.create_file("f");
    // Schedule is exercised through capacity change events:
    // (uses the capacity-noise hookless path by direct PFS access is not
    // exposed; instead rely on contention: a second rank is not present, so
    // emulate by low capacity the whole run.)
    let s = w.run();
    // At 10 MB/s the 50 MB take 5 s; the limit would demand only 1 s.
    // Deficit means no *additional* sleeps: total I/O ≈ 5 s < compute 10 s.
    assert!(
        (s.makespan() - 10.0).abs() < 1e-6,
        "makespan {}",
        s.makespan()
    );
    assert!(s.accounting[0].wait_write < 1e-9);
}

#[test]
fn capacity_noise_changes_makespan_deterministically() {
    use simcore::Noise;
    let run = |seed| {
        let mut c = cfg(1, 100.0 * MB).with_seed(seed);
        c.capacity_noise = Some(mpisim::CapacityNoiseCfg {
            period: 0.1,
            noise: Noise::UniformRel(0.5),
        });
        let ops = vec![Op::Write {
            file: mpisim::FileId(0),
            bytes: 200.0 * MB,
        }];
        let mut w = World::new(c, vec![Program::from_ops(ops)], NoHooks);
        w.create_file("f");
        w.run().makespan()
    };
    let a = run(3);
    assert_eq!(a, run(3));
    assert!(
        (a - 2.0).abs() > 1e-3,
        "noise should perturb the 2 s nominal time"
    );
}

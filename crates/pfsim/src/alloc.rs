//! Bounded max-min ("water-filling") bandwidth allocation.
//!
//! Given flows with weights `w_i` and optional rate caps `cap_i`, and a
//! channel capacity `C`, the allocation is
//!
//! ```text
//! rate_i = min(cap_i, θ · w_i)
//! ```
//!
//! with `θ` the largest level such that `Σ rate_i ≤ C` (progressive filling).
//! This is the classic fluid model of a shared parallel file system: flows
//! below their fair share are granted their cap, the rest split the residual
//! in proportion to their weights.

use simcore::Invariant;

/// One allocation request: `count` identical flows, each with weight `weight`
/// and optional per-flow cap `cap` (bytes/s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Demand {
    /// Number of identical flows represented by this entry.
    pub count: usize,
    /// Scheduling weight of each flow (> 0).
    pub weight: f64,
    /// Optional per-flow rate cap in bytes/s.
    pub cap: Option<f64>,
}

/// Result of the water-filling solve.
#[derive(Clone, Debug, PartialEq)]
pub struct Allocation {
    /// Per-entry *per-flow* rate, aligned with the input demands.
    pub rates: Vec<f64>,
    /// The water level θ (`f64::INFINITY` when capacity is not binding).
    pub theta: f64,
}

/// Reusable buffers for repeated [`water_fill_into`] solves.
///
/// The fluid engine re-solves the allocation on every state change; keeping
/// the sort/freeze buffers resident makes the hot path allocation-free.
#[derive(Default, Debug)]
pub struct WaterFillScratch {
    order: Vec<usize>,
    frozen: Vec<bool>,
}

/// Solves the bounded max-min allocation for `capacity` bytes/s.
///
/// Complexity: O(n log n) in the number of demand entries (not flows — callers
/// should aggregate identical flows into one entry).
///
/// ```
/// use pfsim::alloc::{water_fill, Demand};
/// // A capped flow and an elastic one share a 100 B/s channel:
/// let alloc = water_fill(100.0, &[
///     Demand { count: 1, weight: 1.0, cap: Some(10.0) },
///     Demand { count: 1, weight: 1.0, cap: None },
/// ]);
/// assert_eq!(alloc.rates, vec![10.0, 90.0]); // work-conserving
/// ```
pub fn water_fill(capacity: f64, demands: &[Demand]) -> Allocation {
    let mut scratch = WaterFillScratch::default();
    let mut rates = Vec::with_capacity(demands.len());
    let theta = water_fill_into(capacity, demands, &mut scratch, &mut rates);
    Allocation { rates, theta }
}

/// Allocation-free variant of [`water_fill`]: writes per-flow rates into
/// `rates` (cleared first) and returns θ, reusing `scratch` between calls.
///
/// Produces bit-identical results to [`water_fill`]. When no demand carries a
/// cap — the dominant case for synchronized bursts — the solve skips the
/// breakpoint sort entirely and runs in O(n).
pub fn water_fill_into(
    capacity: f64,
    demands: &[Demand],
    scratch: &mut WaterFillScratch,
    rates: &mut Vec<f64>,
) -> f64 {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    rates.clear();
    let mut any_cap = false;
    let mut total_weight = 0.0f64;
    for d in demands {
        assert!(d.weight > 0.0, "weights must be positive");
        if let Some(c) = d.cap {
            assert!(c >= 0.0, "caps must be non-negative");
            any_cap = true;
        }
        total_weight += d.weight * d.count as f64;
    }

    // Fast path: with no caps the first breakpoint walk iteration binds θ
    // immediately, so the sort is pure overhead. Same float operations as
    // the general path, hence bit-identical rates.
    if !any_cap {
        if demands.is_empty() {
            return f64::INFINITY;
        }
        let theta = capacity / total_weight;
        rates.extend(demands.iter().map(|d| theta * d.weight));
        return theta;
    }

    // Breakpoint of entry i: the θ at which it becomes cap-limited.
    // Sort entry indices by breakpoint ascending (uncapped = ∞ last).
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..demands.len());
    let breakpoint = |d: &Demand| d.cap.map_or(f64::INFINITY, |c| c / d.weight);
    order.sort_by(|&a, &b| {
        breakpoint(&demands[a])
            .partial_cmp(&breakpoint(&demands[b]))
            .invariant("NaN-free")
    });

    // Walk breakpoints from the smallest: entries whose breakpoint is below
    // the candidate θ are frozen at their cap.
    let mut remaining_capacity = capacity;
    let mut active_weight: f64 = total_weight;
    let mut theta = f64::INFINITY;
    let frozen = &mut scratch.frozen;
    frozen.clear();
    frozen.resize(demands.len(), false);

    for &i in order.iter() {
        let d = &demands[i];
        let bp = breakpoint(d);
        if active_weight <= 0.0 {
            break;
        }
        let candidate = remaining_capacity / active_weight;
        if candidate <= bp {
            // Every remaining entry is capacity-limited at this θ.
            theta = candidate;
            break;
        }
        // Entry i is cap-limited: freeze it and release capacity accordingly.
        if let Some(c) = d.cap {
            frozen[i] = true;
            remaining_capacity -= c * d.count as f64;
            active_weight -= d.weight * d.count as f64;
            if remaining_capacity < 0.0 {
                // Caps alone exceed capacity: scale back by re-solving with
                // caps treated as weights is not the fluid model we want —
                // instead θ must bind below this breakpoint. Undo and bind.
                remaining_capacity += c * d.count as f64;
                active_weight += d.weight * d.count as f64;
                frozen[i] = false;
                theta = remaining_capacity / active_weight;
                break;
            }
        }
    }

    rates.extend(demands.iter().enumerate().map(|(i, d)| {
        let fair = if theta.is_infinite() {
            f64::INFINITY
        } else {
            theta * d.weight
        };
        let r = match d.cap {
            Some(c) if frozen[i] || c <= fair => c,
            _ => fair,
        };
        if r.is_infinite() {
            // Uncapped flow with non-binding capacity can only happen
            // with infinite capacity; treat as "all you want".
            capacity
        } else {
            r
        }
    }));

    theta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(a: &Allocation, d: &[Demand]) -> f64 {
        a.rates.iter().zip(d).map(|(r, d)| r * d.count as f64).sum()
    }

    #[test]
    fn equal_split_without_caps() {
        let d = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
        ];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![50.0, 50.0]);
    }

    #[test]
    fn weighted_split() {
        let d = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
            Demand {
                count: 1,
                weight: 3.0,
                cap: None,
            },
        ];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![25.0, 75.0]);
    }

    #[test]
    fn cap_releases_bandwidth_to_others() {
        let d = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(10.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
        ];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![10.0, 90.0]);
    }

    #[test]
    fn caps_below_capacity_grant_all_caps() {
        let d = vec![
            Demand {
                count: 2,
                weight: 1.0,
                cap: Some(10.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(20.0),
            },
        ];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![10.0, 20.0]);
        assert!(total(&a, &d) <= 100.0);
    }

    #[test]
    fn caps_above_capacity_water_fill() {
        // Two flows capped at 80 each, capacity 100 -> each gets 50.
        let d = vec![Demand {
            count: 2,
            weight: 1.0,
            cap: Some(80.0),
        }];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![50.0]);
    }

    #[test]
    fn mixed_caps_partial_binding() {
        // caps 10, 40, none; capacity 100.
        // flow0 -> 10 (capped); remaining 90 split between flow1 (cap 40) and
        // flow2: fair = 45 > 40, so flow1 -> 40, flow2 -> 50.
        let d = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(10.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(40.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
        ];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![10.0, 40.0, 50.0]);
    }

    #[test]
    fn grouped_counts_match_individual() {
        let grouped = vec![
            Demand {
                count: 3,
                weight: 1.0,
                cap: Some(20.0),
            },
            Demand {
                count: 1,
                weight: 2.0,
                cap: None,
            },
        ];
        let individual = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(20.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(20.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(20.0),
            },
            Demand {
                count: 1,
                weight: 2.0,
                cap: None,
            },
        ];
        let ag = water_fill(90.0, &grouped);
        let ai = water_fill(90.0, &individual);
        assert!((ag.rates[0] - ai.rates[0]).abs() < 1e-9);
        assert!((ag.rates[1] - ai.rates[3]).abs() < 1e-9);
    }

    #[test]
    fn single_flow_gets_min_of_cap_and_capacity() {
        let d = vec![Demand {
            count: 1,
            weight: 1.0,
            cap: Some(250.0),
        }];
        assert_eq!(water_fill(100.0, &d).rates, vec![100.0]);
        let d = vec![Demand {
            count: 1,
            weight: 1.0,
            cap: Some(50.0),
        }];
        assert_eq!(water_fill(100.0, &d).rates, vec![50.0]);
    }

    #[test]
    fn zero_capacity_yields_zero_rates() {
        let d = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(5.0),
            },
        ];
        let a = water_fill(0.0, &d);
        assert_eq!(a.rates, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_cap_flow_is_stalled() {
        let d = vec![
            Demand {
                count: 1,
                weight: 1.0,
                cap: Some(0.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
        ];
        let a = water_fill(100.0, &d);
        assert_eq!(a.rates, vec![0.0, 100.0]);
    }

    #[test]
    fn empty_demands() {
        let a = water_fill(100.0, &[]);
        assert!(a.rates.is_empty());
    }

    #[test]
    fn conservation_never_exceeds_capacity() {
        // A few handcrafted mixes.
        let cases: Vec<(f64, Vec<Demand>)> = vec![
            (
                100.0,
                vec![
                    Demand {
                        count: 5,
                        weight: 1.0,
                        cap: Some(30.0),
                    },
                    Demand {
                        count: 2,
                        weight: 4.0,
                        cap: None,
                    },
                ],
            ),
            (
                1.0,
                vec![Demand {
                    count: 100,
                    weight: 0.5,
                    cap: Some(0.01),
                }],
            ),
            (
                106e9,
                vec![
                    Demand {
                        count: 9216,
                        weight: 1.0,
                        cap: Some(5e6),
                    },
                    Demand {
                        count: 1,
                        weight: 96.0,
                        cap: None,
                    },
                ],
            ),
        ];
        for (cap, d) in cases {
            let a = water_fill(cap, &d);
            assert!(total(&a, &d) <= cap * (1.0 + 1e-9), "over capacity");
        }
    }

    #[test]
    fn into_variant_matches_allocating_variant_across_reuse() {
        // One scratch reused across solves of different shapes, including
        // the no-cap fast path and the empty case, must match `water_fill`
        // bit-for-bit.
        let cases: Vec<(f64, Vec<Demand>)> = vec![
            (100.0, vec![]),
            (
                100.0,
                vec![Demand {
                    count: 3,
                    weight: 1.5,
                    cap: None,
                }],
            ),
            (
                90.0,
                vec![
                    Demand {
                        count: 1,
                        weight: 1.0,
                        cap: Some(10.0),
                    },
                    Demand {
                        count: 2,
                        weight: 2.0,
                        cap: None,
                    },
                    Demand {
                        count: 1,
                        weight: 1.0,
                        cap: Some(40.0),
                    },
                ],
            ),
            (
                0.0,
                vec![Demand {
                    count: 4,
                    weight: 1.0,
                    cap: Some(5.0),
                }],
            ),
            (
                106e9,
                vec![
                    Demand {
                        count: 9216,
                        weight: 1.0,
                        cap: Some(5e6),
                    },
                    Demand {
                        count: 1,
                        weight: 96.0,
                        cap: None,
                    },
                ],
            ),
        ];
        let mut scratch = WaterFillScratch::default();
        let mut rates = Vec::new();
        for (cap, d) in &cases {
            let reference = water_fill(*cap, d);
            let theta = water_fill_into(*cap, d, &mut scratch, &mut rates);
            assert_eq!(reference.rates, rates);
            assert_eq!(reference.theta, theta);
        }
    }

    #[test]
    fn work_conserving_when_demand_exceeds_capacity() {
        // If at least one uncapped flow exists, all capacity is used.
        let d = vec![
            Demand {
                count: 3,
                weight: 1.0,
                cap: Some(10.0),
            },
            Demand {
                count: 1,
                weight: 1.0,
                cap: None,
            },
        ];
        let a = water_fill(200.0, &d);
        assert!((total(&a, &d) - 200.0).abs() < 1e-9);
    }
}

//! Burst-buffer tier (the paper's future-work extension, Sec. VIII).
//!
//! A node-local burst buffer absorbs write bursts at NVMe speed and drains
//! them to the PFS in the background. This gives *synchronous* I/O the same
//! structure asynchronous I/O has in the paper: the visible cost is the
//! absorption, and what the shared PFS needs is only the **drain
//! bandwidth** — burst bytes divided by the inter-burst period. The
//! analytic model here computes absorption completion times and the
//! required drain bandwidth; `mpisim` uses it as an optional write path.

use serde::{Deserialize, Serialize};

/// Burst-buffer parameters (per node / per rank).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BurstBufferConfig {
    /// Buffer capacity in bytes.
    pub size_bytes: f64,
    /// Rate at which the application can write into the buffer, bytes/s.
    pub absorb_rate: f64,
    /// Rate at which the buffer drains to the PFS, bytes/s.
    pub drain_rate: f64,
}

impl Default for BurstBufferConfig {
    /// A DataWarp-ish node-local tier: 256 GB at 5 GB/s absorb, 1 GB/s drain.
    fn default() -> Self {
        BurstBufferConfig {
            size_bytes: 256e9,
            absorb_rate: 5e9,
            drain_rate: 1e9,
        }
    }
}

/// The analytic burst-buffer state: occupancy decays at the drain rate and
/// grows with absorbed bursts. All methods take absolute times in seconds
/// and must be called with non-decreasing `t`.
#[derive(Clone, Debug)]
pub struct BurstBuffer {
    cfg: BurstBufferConfig,
    occupied: f64,
    last_t: f64,
}

impl BurstBuffer {
    /// An empty buffer.
    pub fn new(cfg: BurstBufferConfig) -> Self {
        assert!(cfg.size_bytes > 0.0 && cfg.absorb_rate > 0.0 && cfg.drain_rate > 0.0);
        BurstBuffer {
            cfg,
            occupied: 0.0,
            last_t: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BurstBufferConfig {
        &self.cfg
    }

    fn advance(&mut self, t: f64) {
        assert!(t >= self.last_t - 1e-12, "time must not go backwards");
        let dt = (t - self.last_t).max(0.0);
        self.occupied = (self.occupied - self.cfg.drain_rate * dt).max(0.0);
        self.last_t = t;
    }

    /// Occupancy at time `t` (advances internal state).
    pub fn occupancy(&mut self, t: f64) -> f64 {
        self.advance(t);
        self.occupied
    }

    /// Absorbs a burst of `bytes` starting at time `t`; returns the time at
    /// which the *application's write call* completes.
    ///
    /// While space is available the burst lands at `absorb_rate` (the
    /// buffer keeps draining underneath); once the buffer is full the rest
    /// is written through at `drain_rate`.
    pub fn absorb(&mut self, t: f64, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        self.advance(t);
        let a = self.cfg.absorb_rate;
        let d = self.cfg.drain_rate;
        let mut remaining = bytes;
        let mut now = t;

        // Phase 1: absorb at full speed until the buffer fills (net fill
        // rate a − d when a > d) or the burst ends.
        if a > d {
            let free = self.cfg.size_bytes - self.occupied;
            let t_fill = free / (a - d);
            let t_burst = remaining / a;
            if t_burst <= t_fill {
                self.occupied += remaining * (1.0 - d / a);
                self.occupied = self.occupied.max(0.0);
                self.last_t = now + t_burst;
                return now + t_burst;
            }
            // Buffer fills first.
            let absorbed = a * t_fill;
            remaining -= absorbed;
            self.occupied = self.cfg.size_bytes;
            now += t_fill;
        } else {
            // Absorption no faster than draining: the buffer never fills
            // beyond its current level; the whole burst goes at `a`.
            let t_burst = remaining / a;
            self.occupied = (self.occupied - (d - a) * t_burst).max(0.0);
            self.last_t = now + t_burst;
            return now + t_burst;
        }

        // Phase 2: write-through at the drain rate (buffer stays full).
        let t_through = remaining / d;
        self.last_t = now + t_through;
        now + t_through
    }

    /// Time at which the buffer becomes empty if nothing else arrives.
    pub fn drained_at(&mut self, t: f64) -> f64 {
        self.advance(t);
        t + self.occupied / self.cfg.drain_rate
    }
}

/// The future-work metric: the drain bandwidth a periodic synchronous
/// workload needs so its bursts stay absorbed. A burst of `burst_bytes`
/// every `period` seconds is sustainable iff the buffer can hold one burst
/// and the drain clears it before the next one:
/// `B_drain = burst_bytes / period`.
///
/// Returns `None` when a single burst exceeds the buffer (no drain rate can
/// hide it; the write-through path dominates).
pub fn required_drain_bandwidth(
    burst_bytes: f64,
    period: f64,
    cfg: &BurstBufferConfig,
) -> Option<f64> {
    assert!(period > 0.0);
    if burst_bytes > cfg.size_bytes {
        return None;
    }
    Some(burst_bytes / period)
}

/// True when the periodic workload `(burst_bytes, period)` runs at absorb
/// speed indefinitely under `cfg` (the steady-state check behind
/// [`required_drain_bandwidth`]).
pub fn sustainable(burst_bytes: f64, period: f64, cfg: &BurstBufferConfig) -> bool {
    match required_drain_bandwidth(burst_bytes, period, cfg) {
        Some(b) => b <= cfg.drain_rate,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: f64, absorb: f64, drain: f64) -> BurstBufferConfig {
        BurstBufferConfig {
            size_bytes: size,
            absorb_rate: absorb,
            drain_rate: drain,
        }
    }

    #[test]
    fn small_burst_absorbed_at_full_speed() {
        let mut bb = BurstBuffer::new(cfg(100.0, 10.0, 1.0));
        let done = bb.absorb(0.0, 50.0);
        assert!((done - 5.0).abs() < 1e-9, "50 B at 10 B/s");
        // Occupancy: 50 absorbed minus 5 s × 1 B/s drained under the burst.
        assert!((bb.occupancy(5.0) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_drains_over_time() {
        let mut bb = BurstBuffer::new(cfg(100.0, 10.0, 1.0));
        bb.absorb(0.0, 50.0);
        assert!((bb.occupancy(25.0) - 25.0).abs() < 1e-9);
        assert_eq!(bb.occupancy(100.0), 0.0);
    }

    #[test]
    fn overflow_writes_through_at_drain_rate() {
        // 100 B buffer, burst of 300 B: ~11.1 s to fill (net 9 B/s),
        // then ~188.9 B at 1 B/s.
        let mut bb = BurstBuffer::new(cfg(100.0, 10.0, 1.0));
        let done = bb.absorb(0.0, 300.0);
        let t_fill = 100.0 / 9.0;
        let absorbed = 10.0 * t_fill;
        let expected = t_fill + (300.0 - absorbed) / 1.0;
        assert!((done - expected).abs() < 1e-9, "done {done} vs {expected}");
    }

    #[test]
    fn back_to_back_bursts_see_leftover_occupancy() {
        let mut bb = BurstBuffer::new(cfg(100.0, 10.0, 1.0));
        let d1 = bb.absorb(0.0, 90.0);
        // Immediately after, the buffer is nearly full: the second burst
        // fills it quickly and write-through dominates.
        let d2 = bb.absorb(d1, 90.0);
        assert!(d2 - d1 > 9.0 * 2.0, "second burst must be much slower");
    }

    #[test]
    fn widely_spaced_bursts_stay_fast() {
        let mut bb = BurstBuffer::new(cfg(100.0, 10.0, 1.0));
        let mut t = 0.0;
        for _ in 0..10 {
            let done = bb.absorb(t, 80.0);
            assert!((done - t - 8.0).abs() < 1e-9, "each burst at absorb speed");
            t = done + 100.0; // plenty of drain time
        }
    }

    #[test]
    fn slow_absorb_never_overflows() {
        let mut bb = BurstBuffer::new(cfg(10.0, 1.0, 2.0));
        let done = bb.absorb(0.0, 100.0);
        assert!((done - 100.0).abs() < 1e-9);
        assert_eq!(bb.occupancy(done), 0.0);
    }

    #[test]
    fn required_drain_matches_paper_definition() {
        let c = cfg(100e9, 5e9, 1e9);
        // 38 GB burst every 60 s -> 0.633 GB/s of drain.
        let b = required_drain_bandwidth(38e9, 60.0, &c).unwrap();
        assert!((b - 38e9 / 60.0).abs() < 1.0);
        assert!(sustainable(38e9, 60.0, &c));
        // Every 30 s it would need 1.27 GB/s > drain rate.
        assert!(!sustainable(38e9, 30.0, &c));
        // A burst larger than the buffer cannot be hidden at all.
        assert_eq!(required_drain_bandwidth(200e9, 60.0, &c), None);
    }

    #[test]
    fn drained_at_is_consistent() {
        let mut bb = BurstBuffer::new(cfg(100.0, 10.0, 1.0));
        bb.absorb(0.0, 50.0);
        let t_empty = bb.drained_at(5.0);
        assert!((t_empty - 50.0).abs() < 1e-9); // 45 left at t=5, 1 B/s
        assert_eq!(bb.occupancy(t_empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_cannot_reverse() {
        let mut bb = BurstBuffer::new(cfg(10.0, 1.0, 1.0));
        bb.absorb(5.0, 1.0);
        bb.absorb(1.0, 1.0);
    }
}

//! # pfsim — fluid-flow parallel file system model
//!
//! The shared-storage substrate for the "I/O Behind the Scenes" reproduction.
//! The real system (IBM Spectrum Scale on Lichtenberg, 106 GB/s write /
//! 120 GB/s read) is modelled as two independent channels whose capacity is
//! shared among concurrent transfers by **bounded max-min fairness**
//! (water-filling): each flow gets `min(cap, θ·weight)` bytes/s, with `θ`
//! chosen so the channel is fully used whenever demand allows.
//!
//! * [`alloc::water_fill`] — the allocation solver,
//! * [`Pfs`] — the event-driven engine with flow groups, per-flow caps,
//!   weights, capacity noise and bandwidth recording,
//! * [`reference::Reference`] — a brute-force timestep model used by the
//!   property tests to cross-validate the engine,
//! * [`burstbuffer::BurstBuffer`] — an analytic node-local burst-buffer
//!   tier (the paper's future-work extension for synchronous I/O).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod burstbuffer;
mod pfs;
pub mod reference;

pub use burstbuffer::{BurstBuffer, BurstBufferConfig};
pub use pfs::{Channel, FlowId, FlowSpec, MeterId, Pfs, PfsConfig};

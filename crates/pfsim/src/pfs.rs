//! Event-driven fluid parallel-file-system engine.
//!
//! Flows progress at the rates produced by [`crate::alloc::water_fill`];
//! rates are piecewise-constant between *events* (submissions, completions,
//! cap or capacity changes). The engine is passive: a host simulation calls
//! [`Pfs::advance_to`] to move virtual time forward and collects completed
//! flows, and uses [`Pfs::next_completion`] to know when to call back.
//!
//! Identical flows submitted at the same instant merge into *flow groups*
//! that progress and complete together, which keeps 9216-rank synchronized
//! bursts O(1) instead of O(ranks) per event.

use crate::alloc::{water_fill_into, Demand, WaterFillScratch};
use simcore::{SimTime, StepSeries};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifies a single flow (one logical transfer) for completion callbacks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Identifies a bandwidth meter (a recorded aggregate rate series).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MeterId(usize);

/// Transfer direction; the two channels have independent capacities, matching
/// the paper's Lichtenberg numbers (106 GB/s write, 120 GB/s read).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Channel {
    /// Writes to the PFS.
    Write,
    /// Reads from the PFS.
    Read,
}

impl Channel {
    fn index(self) -> usize {
        match self {
            Channel::Write => 0,
            Channel::Read => 1,
        }
    }
}

/// Specification of a new flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Bytes to transfer. Zero-byte flows complete immediately.
    pub bytes: f64,
    /// Scheduling weight (jobs use node counts; ranks use 1).
    pub weight: f64,
    /// Optional rate cap in bytes/s.
    pub cap: Option<f64>,
    /// Optional meter to record this flow's aggregate rate into.
    pub meter: Option<MeterId>,
}

impl FlowSpec {
    /// Convenience: an uncapped weight-1 unmetered flow of `bytes`.
    pub fn simple(bytes: f64) -> Self {
        FlowSpec {
            bytes,
            weight: 1.0,
            cap: None,
            meter: None,
        }
    }
}

/// A group of identical flows progressing in lockstep.
#[derive(Clone, Debug)]
struct Group {
    members: Vec<FlowId>,
    /// Remaining bytes of each member (identical across members).
    remaining: f64,
    weight: f64,
    cap: Option<f64>,
    meter: Option<MeterId>,
    /// Per-member rate from the last allocation.
    rate: f64,
}

/// Configuration of the PFS model.
#[derive(Clone, Copy, Debug)]
pub struct PfsConfig {
    /// Write channel capacity, bytes/s.
    pub write_capacity: f64,
    /// Read channel capacity, bytes/s.
    pub read_capacity: f64,
}

impl Default for PfsConfig {
    /// Lichtenberg II defaults from the paper: 106 GB/s write, 120 GB/s read.
    fn default() -> Self {
        PfsConfig {
            write_capacity: 106e9,
            read_capacity: 120e9,
        }
    }
}

/// One entry of a channel's completion-time index: the absolute time the
/// group was going to complete at, as computed by the reallocation of
/// generation `gen`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CtEntry {
    at: SimTime,
    gen: u64,
}

struct ChannelState {
    capacity: f64,
    /// Fault-plan capacity multiplier (1 = healthy, 0 = outage). Kept
    /// separate from `capacity` so capacity noise and injected faults
    /// compose instead of overwriting each other.
    fault_factor: f64,
    groups: Vec<Group>,
    total_series: StepSeries,
    /// Resident demand buffer, rebuilt in place by each reallocation.
    demands: Vec<Demand>,
    /// Resident rate output buffer for the water-fill solve.
    rates: Vec<f64>,
    /// Resident sort/freeze buffers for the water-fill solve.
    fill: WaterFillScratch,
    /// Min-heap of absolute completion times for groups with positive rate.
    ///
    /// Rates are piecewise-constant between reallocations, so a group's
    /// absolute completion time is invariant while an allocation is live;
    /// the heap top answers `next_completion` in O(1) instead of a scan
    /// over all groups. Every group mutation goes through `reallocate`,
    /// which bumps `gen` and rebuilds the index (O(g) heapify into the
    /// retained buffer) — entries with a stale generation cannot be
    /// observed, which the peeks assert in debug builds.
    index: BinaryHeap<Reverse<CtEntry>>,
    /// Allocation generation, bumped by each reallocation.
    gen: u64,
}

impl ChannelState {
    fn new(capacity: f64) -> Self {
        ChannelState {
            capacity,
            fault_factor: 1.0,
            groups: Vec::new(),
            total_series: StepSeries::new(),
            demands: Vec::new(),
            rates: Vec::new(),
            fill: WaterFillScratch::default(),
            index: BinaryHeap::new(),
            gen: 0,
        }
    }

    /// Earliest indexed completion on this channel, if any flow is live and
    /// not stalled.
    #[inline]
    fn next_completion(&self) -> Option<SimTime> {
        self.index.peek().map(|Reverse(e)| {
            debug_assert_eq!(e.gen, self.gen, "stale completion-index entry observed");
            e.at
        })
    }
}

/// The fluid PFS engine. See module docs.
pub struct Pfs {
    channels: [ChannelState; 2],
    now: SimTime,
    next_flow: u64,
    next_meter: usize,
    meter_series: Vec<StepSeries>,
    /// flow -> (channel, group slot) lookup for cap changes.
    locator: HashMap<FlowId, Channel>,
    record: bool,
    /// Resident per-meter rate buffer for series recording.
    meter_rates: Vec<f64>,
    /// Recycled group-member buffers: retiring a group returns its `members`
    /// vector here, and the next group creation reuses it, so steady-state
    /// submit/complete churn performs no heap allocation.
    member_pool: Vec<Vec<FlowId>>,
}

/// Bytes below which a flow counts as finished (guards FP drift).
const EPSILON_BYTES: f64 = 1e-6;

impl Pfs {
    /// Creates a PFS with the given channel capacities. Recording of rate
    /// series is enabled by default.
    pub fn new(config: PfsConfig) -> Self {
        assert!(config.write_capacity >= 0.0 && config.read_capacity >= 0.0);
        Pfs {
            channels: [
                ChannelState::new(config.write_capacity),
                ChannelState::new(config.read_capacity),
            ],
            now: SimTime::ZERO,
            next_flow: 0,
            next_meter: 0,
            meter_series: Vec::new(),
            locator: HashMap::new(),
            record: true,
            meter_rates: Vec::new(),
            member_pool: Vec::new(),
        }
    }

    /// Disables rate-series recording (large sweeps that only need times).
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
    }

    /// Current virtual time of the PFS state.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Allocates a new bandwidth meter.
    pub fn meter(&mut self) -> MeterId {
        let id = MeterId(self.next_meter);
        self.next_meter += 1;
        self.meter_series.push(StepSeries::new());
        id
    }

    /// The recorded aggregate rate of a meter.
    pub fn meter_series(&self, meter: MeterId) -> &StepSeries {
        &self.meter_series[meter.0]
    }

    /// The recorded aggregate rate of a whole channel.
    pub fn total_series(&self, channel: Channel) -> &StepSeries {
        &self.channels[channel.index()].total_series
    }

    /// Number of in-flight flows on a channel.
    pub fn active_flows(&self, channel: Channel) -> usize {
        self.channels[channel.index()]
            .groups
            .iter()
            .map(|g| g.members.len())
            .sum()
    }

    /// Submits `count` identical flows at time `t`; returns their ids.
    ///
    /// `t` must be ≥ all previously observed times. Zero-byte flows are
    /// returned as completed immediately via the `completed` out-list of the
    /// next [`Pfs::advance_to`]; to keep the API simple they are instead
    /// reported by this call's return value `(ids, completed_now)`.
    pub fn submit_many(
        &mut self,
        t: SimTime,
        channel: Channel,
        spec: FlowSpec,
        count: usize,
    ) -> Vec<FlowId> {
        assert!(spec.bytes >= 0.0, "bytes must be non-negative");
        assert!(spec.weight > 0.0, "weight must be positive");
        assert!(count > 0, "need at least one flow");
        // Settle state up to t (no completions may be pending before t).
        let done = self.advance_to(t);
        assert!(
            done.is_empty(),
            "advance_to before submit returned unharvested completions; \
             call advance_to(t) and handle them first"
        );

        let ids: Vec<FlowId> = (0..count)
            .map(|_| {
                let id = FlowId(self.next_flow);
                self.next_flow += 1;
                self.locator.insert(id, channel);
                id
            })
            .collect();

        let ch = &mut self.channels[channel.index()];
        // Merge with an existing identical group (same remaining/cap/weight/
        // meter) — the common case for synchronized bursts.
        let found = ch.groups.iter_mut().find(|g| {
            g.remaining == spec.bytes
                && g.cap == spec.cap
                && g.weight == spec.weight
                && g.meter == spec.meter
        });
        match found {
            Some(g) => g.members.extend_from_slice(&ids),
            None => {
                let mut members = self.member_pool.pop().unwrap_or_default();
                members.extend_from_slice(&ids);
                ch.groups.push(Group {
                    members,
                    remaining: spec.bytes,
                    weight: spec.weight,
                    cap: spec.cap,
                    meter: spec.meter,
                    rate: 0.0,
                });
            }
        }
        self.reallocate(channel);
        ids
    }

    /// Submits a single flow. See [`Pfs::submit_many`].
    ///
    /// Unlike the batch variant this path is allocation-free in steady state:
    /// the id goes straight into a (possibly recycled) group-member buffer.
    pub fn submit(&mut self, t: SimTime, channel: Channel, spec: FlowSpec) -> FlowId {
        assert!(spec.bytes >= 0.0, "bytes must be non-negative");
        assert!(spec.weight > 0.0, "weight must be positive");
        let done = self.advance_to(t);
        assert!(
            done.is_empty(),
            "advance_to before submit returned unharvested completions; \
             call advance_to(t) and handle them first"
        );
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.locator.insert(id, channel);
        let ch = &mut self.channels[channel.index()];
        let found = ch.groups.iter_mut().find(|g| {
            g.remaining == spec.bytes
                && g.cap == spec.cap
                && g.weight == spec.weight
                && g.meter == spec.meter
        });
        match found {
            Some(g) => g.members.push(id),
            None => {
                let mut members = self.member_pool.pop().unwrap_or_default();
                members.push(id);
                ch.groups.push(Group {
                    members,
                    remaining: spec.bytes,
                    weight: spec.weight,
                    cap: spec.cap,
                    meter: spec.meter,
                    rate: 0.0,
                });
            }
        }
        self.reallocate(channel);
        id
    }

    /// Changes the rate cap of one in-flight flow at time `t`.
    ///
    /// The flow is split out of its group if needed. No-op for unknown or
    /// already-completed flows.
    pub fn set_cap(&mut self, t: SimTime, flow: FlowId, cap: Option<f64>) {
        let done = self.advance_to(t);
        assert!(done.is_empty(), "handle completions before set_cap");
        let Some(&channel) = self.locator.get(&flow) else {
            return;
        };
        let ch = &mut self.channels[channel.index()];
        let Some(gi) = ch.groups.iter().position(|g| g.members.contains(&flow)) else {
            return;
        };
        if ch.groups[gi].cap == cap {
            return;
        }
        if ch.groups[gi].members.len() == 1 {
            ch.groups[gi].cap = cap;
        } else {
            // Split this member into its own group.
            let mut members = self.member_pool.pop().unwrap_or_default();
            members.push(flow);
            let g = &mut ch.groups[gi];
            g.members.retain(|&m| m != flow);
            let split = Group {
                members,
                remaining: g.remaining,
                weight: g.weight,
                cap,
                meter: g.meter,
                rate: 0.0,
            };
            ch.groups.push(split);
        }
        self.reallocate(channel);
    }

    /// Changes a channel's capacity at time `t` (capacity noise, Fig. 14).
    pub fn set_capacity(&mut self, t: SimTime, channel: Channel, capacity: f64) {
        assert!(capacity >= 0.0);
        let done = self.advance_to(t);
        assert!(done.is_empty(), "handle completions before set_capacity");
        self.channels[channel.index()].capacity = capacity;
        self.reallocate(channel);
    }

    /// Applies a fault-plan capacity multiplier to a channel at time `t`
    /// (0 = outage: every flow water-fills to rate 0 and completions freeze
    /// until the factor is restored). Composes with [`Pfs::set_capacity`]:
    /// the effective capacity is `capacity × fault_factor`.
    pub fn set_fault_factor(&mut self, t: SimTime, channel: Channel, factor: f64) {
        assert!(factor >= 0.0, "fault factor must be non-negative");
        let done = self.advance_to(t);
        assert!(
            done.is_empty(),
            "handle completions before set_fault_factor"
        );
        self.channels[channel.index()].fault_factor = factor;
        self.reallocate(channel);
    }

    /// The current fault-plan capacity multiplier of a channel.
    pub fn fault_factor(&self, channel: Channel) -> f64 {
        self.channels[channel.index()].fault_factor
    }

    /// Earliest future completion across both channels, if any flow is live.
    /// Returns `None` when idle or when all live flows are stalled (rate 0).
    ///
    /// O(1): both channels answer from their completion-time index.
    pub fn next_completion(&self) -> Option<SimTime> {
        match (
            self.channels[0].next_completion(),
            self.channels[1].next_completion(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Advances the fluid state to time `t`, returning every flow that
    /// completed at or before `t` with its completion time, in time order.
    ///
    /// Allocates only when completions exist; event-loop callers should
    /// prefer [`Pfs::advance_into`] with a resident buffer.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<(SimTime, FlowId)> {
        let mut completed = Vec::new();
        self.advance_into(t, &mut completed);
        completed
    }

    /// Allocation-free form of [`Pfs::advance_to`]: appends completions to
    /// `completed` (not cleared first) and recycles retired group buffers.
    pub fn advance_into(&mut self, t: SimTime, completed: &mut Vec<(SimTime, FlowId)>) {
        assert!(
            t >= self.now,
            "PFS cannot move backwards: {t:?} < {:?}",
            self.now
        );
        loop {
            // The earliest internal completion comes straight off the index
            // (the same helper `next_completion` exposes), replacing the
            // per-step O(groups) scan this loop head used to share with it.
            let step_to = match self.next_completion() {
                Some(ct) if ct <= t => ct,
                _ => {
                    self.progress_all(t);
                    self.now = t;
                    return;
                }
            };
            self.progress_all(step_to);
            self.now = step_to;
            // Harvest groups that reached zero. The threshold must absorb
            // float residue from `remaining -= rate·dt`, AND the case where a
            // group's remaining maps to a time increment below the ulp of
            // `now` (otherwise the loop would spin at dt = 0 forever): any
            // remaining the clock cannot resolve counts as finished.
            let time_ulp = step_to.as_secs().abs() * 2.3e-16 + 1e-18;
            for channel in [Channel::Write, Channel::Read] {
                let idx = channel.index();
                // Only sweep a channel whose index says a completion is due
                // now; the other channel's groups cannot have reached zero
                // (their indexed completions lie strictly in the future).
                match self.channels[idx].next_completion() {
                    Some(due) if due <= step_to => {}
                    _ => continue,
                }
                let mut finished_any = false;
                let mut i = 0;
                while i < self.channels[idx].groups.len() {
                    let g = &self.channels[idx].groups[i];
                    let eps = EPSILON_BYTES.max(g.rate * time_ulp * 4.0);
                    if g.remaining <= eps {
                        let mut g = self.channels[idx].groups.swap_remove(i);
                        for &m in &g.members {
                            self.locator.remove(&m);
                            completed.push((step_to, m));
                        }
                        g.members.clear();
                        self.member_pool.push(g.members);
                        finished_any = true;
                    } else {
                        i += 1;
                    }
                }
                if finished_any {
                    self.reallocate(channel);
                } else {
                    // Defensive: the due entry's group did not pass the
                    // byte-epsilon check (cannot happen — progress_all snaps
                    // a fully-covered group to exactly zero). Drop the entry
                    // so the loop is guaranteed to make progress.
                    debug_assert!(finished_any, "due completion harvested nothing");
                    self.channels[idx].index.pop();
                }
            }
        }
    }

    /// Moves every group's remaining bytes forward to absolute time `t` at
    /// current rates (no completions may occur strictly inside the interval).
    fn progress_all(&mut self, t: SimTime) {
        let dt = t - self.now;
        if dt <= 0.0 {
            return;
        }
        for ch in &mut self.channels {
            for g in &mut ch.groups {
                if g.rate > 0.0 {
                    let moved = g.rate * dt;
                    // Snap to exactly zero when the step covers the group's
                    // remaining bytes, so FP residue cannot survive the step.
                    g.remaining = if moved >= g.remaining {
                        0.0
                    } else {
                        g.remaining - moved
                    };
                }
            }
        }
    }

    /// Test support: asserts that the incremental allocator state and the
    /// completion-time index agree with a from-scratch recomputation.
    ///
    /// Rates must match *bitwise* (the incremental path runs the same solve
    /// into resident buffers); indexed completion times may differ from a
    /// rescan by FP ulps because they were computed against an earlier `now`.
    #[doc(hidden)]
    pub fn validate_invariants(&self) {
        for (ci, ch) in self.channels.iter().enumerate() {
            let demands: Vec<Demand> = ch
                .groups
                .iter()
                .map(|g| Demand {
                    count: g.members.len(),
                    weight: g.weight,
                    cap: g.cap,
                })
                .collect();
            let fresh = crate::alloc::water_fill(ch.capacity * ch.fault_factor, &demands);
            for (gi, (g, r)) in ch.groups.iter().zip(&fresh.rates).enumerate() {
                assert!(
                    g.rate == *r,
                    "channel {ci} group {gi}: incremental rate {} != from-scratch {}",
                    g.rate,
                    r
                );
            }
            let scan = ch
                .groups
                .iter()
                .filter(|g| g.rate > 0.0)
                .map(|g| self.now.after(g.remaining / g.rate))
                .min();
            match (ch.next_completion(), scan) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let (a, b) = (a.as_secs(), b.as_secs());
                    assert!(
                        (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                        "channel {ci}: indexed completion {a} != rescanned {b}"
                    );
                }
                (a, b) => panic!("channel {ci}: index {a:?} vs rescan {b:?}"),
            }
        }
    }

    /// Recomputes rates on `channel` after a state change, rebuilds the
    /// channel's completion-time index, and records series.
    ///
    /// Allocation-free on the hot path: demands, rates, sort scratch and the
    /// index buffer are all resident in the channel state. Only the dirty
    /// channel is touched — the other channel's allocation and index remain
    /// valid because channels never share capacity.
    fn reallocate(&mut self, channel: Channel) {
        let now = self.now;
        let ch = &mut self.channels[channel.index()];
        ch.demands.clear();
        ch.demands.extend(ch.groups.iter().map(|g| Demand {
            count: g.members.len(),
            weight: g.weight,
            cap: g.cap,
        }));
        water_fill_into(
            ch.capacity * ch.fault_factor,
            &ch.demands,
            &mut ch.fill,
            &mut ch.rates,
        );
        for (g, &r) in ch.groups.iter_mut().zip(&ch.rates) {
            g.rate = r;
        }
        // Rebuild the completion-time index: a reallocation may change every
        // rate on this channel, so all prior entries are invalid. Reuse the
        // heap's buffer and heapify in O(g). Stalled groups (rate 0) carry
        // no entry, matching `next_completion`'s contract.
        ch.gen += 1;
        let gen = ch.gen;
        let mut buf = std::mem::take(&mut ch.index).into_vec();
        buf.clear();
        buf.extend(ch.groups.iter().filter(|g| g.rate > 0.0).map(|g| {
            Reverse(CtEntry {
                at: now.after(g.remaining / g.rate),
                gen,
            })
        }));
        ch.index = BinaryHeap::from(buf);
        if self.record {
            self.record_series(channel);
        }
    }

    fn record_series(&mut self, channel: Channel) {
        let idx = channel.index();
        let total: f64 = self.channels[idx]
            .groups
            .iter()
            .map(|g| g.rate * g.members.len() as f64)
            .sum();
        let now = self.now;
        self.channels[idx].total_series.push(now, total);
        // Meter rates are summed across BOTH channels (a meter may track read
        // and write flows of the same job). Every allocated meter is updated
        // so rates fall back to 0 once its flows complete.
        self.meter_rates.clear();
        self.meter_rates.resize(self.meter_series.len(), 0.0);
        for ch in &self.channels {
            for g in &ch.groups {
                if let Some(m) = g.meter {
                    self.meter_rates[m.0] += g.rate * g.members.len() as f64;
                }
            }
        }
        for (s, &r) in self.meter_series.iter_mut().zip(&self.meter_rates) {
            // StepSeries run-length-codes, so repeated zeros cost nothing.
            s.push(now, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn pfs(cap: f64) -> Pfs {
        Pfs::new(PfsConfig {
            write_capacity: cap,
            read_capacity: cap,
        })
    }

    #[test]
    fn single_flow_completes_at_bytes_over_capacity() {
        let mut p = pfs(100.0);
        let id = p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        assert_eq!(p.next_completion(), Some(t(10.0)));
        let done = p.advance_to(t(20.0));
        assert_eq!(done, vec![(t(10.0), id)]);
    }

    #[test]
    fn two_flows_share_equally() {
        let mut p = pfs(100.0);
        let a = p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        let b = p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        // Each runs at 50 B/s -> both complete at 20 s.
        let done = p.advance_to(t(30.0));
        let times: Vec<f64> = done.iter().map(|d| d.0.as_secs()).collect();
        assert_eq!(done.len(), 2);
        assert!((times[0] - 20.0).abs() < 1e-9 && (times[1] - 20.0).abs() < 1e-9);
        let ids: Vec<FlowId> = done.iter().map(|d| d.1).collect();
        assert!(ids.contains(&a) && ids.contains(&b));
    }

    #[test]
    fn late_arrival_slows_first_flow() {
        let mut p = pfs(100.0);
        let a = p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        // At t=5, a has 500 left. New flow of 250 arrives; both at 50 B/s.
        let b = p.submit(t(5.0), Channel::Write, FlowSpec::simple(250.0));
        // b finishes at 5 + 250/50 = 10; then a runs at 100 with 250 left
        // (a did 500 + 5*50 = 750 by t=10) -> finishes at 12.5.
        let done = p.advance_to(t(20.0));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].1, b);
        assert!((done[0].0.as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(done[1].1, a);
        assert!((done[1].0.as_secs() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn channels_are_independent() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        p.submit(t(0.0), Channel::Read, FlowSpec::simple(1000.0));
        // No interference: both complete at t=10.
        let done = p.advance_to(t(15.0));
        assert_eq!(done.len(), 2);
        for (ct, _) in done {
            assert!((ct.as_secs() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capped_flow_obeys_cap() {
        let mut p = pfs(100.0);
        let spec = FlowSpec {
            bytes: 100.0,
            weight: 1.0,
            cap: Some(10.0),
            meter: None,
        };
        p.submit(t(0.0), Channel::Write, spec);
        let done = p.advance_to(t(20.0));
        assert!((done[0].0.as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cap_change_mid_flight() {
        let mut p = pfs(100.0);
        let id = p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        // After 5 s at 100 B/s: 500 left. Cap to 25 B/s -> 20 more seconds.
        p.set_cap(t(5.0), id, Some(25.0));
        let done = p.advance_to(t(100.0));
        assert!((done[0].0.as_secs() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn group_merge_keeps_individual_ids() {
        let mut p = pfs(100.0);
        let ids = p.submit_many(t(0.0), Channel::Write, FlowSpec::simple(50.0), 4);
        assert_eq!(ids.len(), 4);
        assert_eq!(p.active_flows(Channel::Write), 4);
        // One group internally.
        assert_eq!(p.channels[0].groups.len(), 1);
        let done = p.advance_to(t(10.0));
        assert_eq!(done.len(), 4);
        // 4 flows à 50 B at 25 B/s each -> t = 2.
        assert!((done[0].0.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn same_spec_same_time_submits_merge() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(50.0));
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(50.0));
        assert_eq!(p.channels[0].groups.len(), 1);
    }

    #[test]
    fn split_on_cap_change_in_group() {
        let mut p = pfs(100.0);
        let ids = p.submit_many(t(0.0), Channel::Write, FlowSpec::simple(100.0), 2);
        p.set_cap(t(0.0), ids[0], Some(10.0));
        // ids[0] at 10 B/s (done at 10 s); ids[1] at 90 B/s (done at ~1.11 s).
        let done = p.advance_to(t(20.0));
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].1, ids[1]);
        assert!((done[0].0.as_secs() - 100.0 / 90.0).abs() < 1e-9);
        assert_eq!(done[1].1, ids[0]);
        assert!((done[1].0.as_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_change_respected() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        p.set_capacity(t(5.0), Channel::Write, 50.0);
        // 500 left at 50 B/s -> completes at 15 s.
        let done = p.advance_to(t(30.0));
        assert!((done[0].0.as_secs() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn fault_factor_degrades_effective_capacity() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        // Half capacity from t = 5: 500 left at 50 B/s -> completes at 15 s.
        p.set_fault_factor(t(5.0), Channel::Write, 0.5);
        assert_eq!(p.fault_factor(Channel::Write), 0.5);
        let done = p.advance_to(t(30.0));
        assert!((done[0].0.as_secs() - 15.0).abs() < 1e-9);
        p.validate_invariants();
    }

    #[test]
    fn fault_outage_freezes_then_resumes() {
        let mut p = pfs(100.0);
        let id = p.submit(t(0.0), Channel::Write, FlowSpec::simple(100.0));
        // Dead channel: the flow water-fills to rate 0 and completions freeze.
        p.set_fault_factor(t(0.5), Channel::Write, 0.0);
        assert_eq!(p.next_completion(), None);
        assert!(p.advance_to(t(10.0)).is_empty());
        // Recovery: 50 B remain at full speed -> completes at 10.5 s.
        p.set_fault_factor(t(10.0), Channel::Write, 1.0);
        let done = p.advance_to(t(20.0));
        assert_eq!(done, vec![(t(10.5), id)]);
    }

    #[test]
    fn fault_factor_composes_with_capacity_noise() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        p.set_fault_factor(t(0.0), Channel::Write, 0.5);
        // Capacity noise halves the nominal too: effective 25 B/s.
        p.set_capacity(t(0.0), Channel::Write, 50.0);
        let done = p.advance_to(t(100.0));
        assert!((done[0].0.as_secs() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn neutral_fault_factor_changes_nothing() {
        let mut a = pfs(100.0);
        let mut b = pfs(100.0);
        a.submit(t(0.0), Channel::Write, FlowSpec::simple(777.0));
        b.submit(t(0.0), Channel::Write, FlowSpec::simple(777.0));
        b.set_fault_factor(t(0.0), Channel::Write, 1.0);
        assert_eq!(a.next_completion(), b.next_completion());
        let da = a.advance_to(t(50.0));
        let db = b.advance_to(t(50.0));
        assert_eq!(da[0].0, db[0].0);
    }

    #[test]
    fn stalled_flow_resumes_on_capacity() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(100.0));
        p.set_capacity(t(0.0), Channel::Write, 0.0);
        assert_eq!(p.next_completion(), None);
        p.set_capacity(t(10.0), Channel::Write, 100.0);
        let done = p.advance_to(t(20.0));
        assert!((done[0].0.as_secs() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_jobs_share_by_weight() {
        let mut p = pfs(120.0);
        let a = p.submit(
            t(0.0),
            Channel::Write,
            FlowSpec {
                bytes: 300.0,
                weight: 2.0,
                cap: None,
                meter: None,
            },
        );
        let b = p.submit(
            t(0.0),
            Channel::Write,
            FlowSpec {
                bytes: 300.0,
                weight: 1.0,
                cap: None,
                meter: None,
            },
        );
        // a at 80, b at 40. a done at 3.75; then b at 120 with 150 left ->
        // 3.75 + 1.25 = 5.0.
        let done = p.advance_to(t(10.0));
        assert_eq!(done[0].1, a);
        assert!((done[0].0.as_secs() - 3.75).abs() < 1e-9);
        assert_eq!(done[1].1, b);
        assert!((done[1].0.as_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn total_series_records_rates() {
        let mut p = pfs(100.0);
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(1000.0));
        p.submit(t(5.0), Channel::Write, FlowSpec::simple(250.0));
        p.advance_to(t(20.0));
        let s = p.total_series(Channel::Write);
        assert_eq!(s.value_at(t(1.0)), 100.0);
        assert_eq!(s.value_at(t(6.0)), 100.0); // still work-conserving
        assert_eq!(s.value_at(t(15.0)), 0.0);
        // Total bytes moved = integral = 1250.
        assert!((s.integral(t(0.0), t(20.0)) - 1250.0).abs() < 1e-6);
    }

    #[test]
    fn meter_tracks_only_its_flows() {
        let mut p = pfs(100.0);
        let m = p.meter();
        p.submit(
            t(0.0),
            Channel::Write,
            FlowSpec {
                bytes: 500.0,
                weight: 1.0,
                cap: None,
                meter: Some(m),
            },
        );
        p.submit(t(0.0), Channel::Write, FlowSpec::simple(500.0));
        p.advance_to(t(20.0));
        let s = p.meter_series(m);
        assert_eq!(s.value_at(t(1.0)), 50.0);
        assert!((s.integral(t(0.0), t(20.0)) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn next_completion_none_when_idle() {
        let p = pfs(100.0);
        assert_eq!(p.next_completion(), None);
    }

    #[test]
    fn completion_index_matches_linear_scan() {
        let mut p = pfs(100.0);
        // Mixed state: several group shapes across both channels, with
        // progress and a cap change between submissions.
        p.submit_many(t(0.0), Channel::Write, FlowSpec::simple(500.0), 3);
        p.submit(
            t(0.0),
            Channel::Read,
            FlowSpec {
                bytes: 900.0,
                weight: 2.0,
                cap: Some(30.0),
                meter: None,
            },
        );
        let capped = p.submit(
            t(1.0),
            Channel::Write,
            FlowSpec {
                bytes: 400.0,
                weight: 1.0,
                cap: Some(20.0),
                meter: None,
            },
        );
        p.advance_to(t(2.0));
        p.set_cap(t(2.5), capped, Some(40.0));
        // The pre-index implementation: linear scan over live groups.
        let scanned = {
            let mut best: Option<f64> = None;
            for ch in &p.channels {
                for g in &ch.groups {
                    if g.rate > 0.0 {
                        let ct = p.now.after(g.remaining / g.rate).as_secs();
                        best = Some(best.map_or(ct, |b: f64| b.min(ct)));
                    }
                }
            }
            best
        };
        let indexed = p.next_completion().map(|s| s.as_secs());
        match (indexed, scanned) {
            // Stored completion times may differ from a rescan by FP noise
            // accumulated in `remaining`, never more.
            (Some(a), Some(b)) => assert!((a - b).abs() <= 1e-9 * b.max(1.0), "{a} vs {b}"),
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
        // Draining must terminate, complete everything, in time order.
        let done = p.advance_to(t(1000.0));
        assert_eq!(done.len(), 5);
        assert_eq!(
            p.active_flows(Channel::Write) + p.active_flows(Channel::Read),
            0
        );
        assert!(done.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(p.next_completion(), None);
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let mut p = pfs(100.0);
        let id = p.submit(t(1.0), Channel::Write, FlowSpec::simple(0.0));
        let done = p.advance_to(t(1.0));
        assert_eq!(done, vec![(t(1.0), id)]);
    }
}

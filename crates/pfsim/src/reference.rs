//! Brute-force timestep reference model of the fluid PFS.
//!
//! Integrates flow progress with small fixed timesteps using the same
//! allocation function as the event-driven engine. Only used by tests and
//! property-based cross-validation: completion times from [`Reference`] must
//! agree with [`crate::Pfs`] to within one timestep.

use crate::alloc::{water_fill, Demand};

/// A flow in the reference model.
#[derive(Clone, Debug)]
pub struct RefFlow {
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Bytes to transfer.
    pub bytes: f64,
    /// Scheduling weight.
    pub weight: f64,
    /// Optional rate cap.
    pub cap: Option<f64>,
}

/// Timestep integrator over one channel.
pub struct Reference {
    capacity: f64,
    dt: f64,
}

impl Reference {
    /// Creates a reference model for a channel of `capacity` bytes/s using
    /// timestep `dt` seconds.
    pub fn new(capacity: f64, dt: f64) -> Self {
        assert!(dt > 0.0);
        Reference { capacity, dt }
    }

    /// Simulates the flows and returns each flow's completion time, aligned
    /// with the input order. Panics if any flow fails to finish within
    /// `horizon` seconds.
    pub fn completion_times(&self, flows: &[RefFlow], horizon: f64) -> Vec<f64> {
        let n = flows.len();
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes).collect();
        let mut done_at: Vec<Option<f64>> = vec![None; n];
        let mut t = 0.0;
        while t < horizon {
            // Active = arrived and not finished.
            let active: Vec<usize> = (0..n)
                .filter(|&i| flows[i].arrival <= t && done_at[i].is_none())
                .collect();
            if !active.is_empty() {
                let demands: Vec<Demand> = active
                    .iter()
                    .map(|&i| Demand {
                        count: 1,
                        weight: flows[i].weight,
                        cap: flows[i].cap,
                    })
                    .collect();
                let alloc = water_fill(self.capacity, &demands);
                for (k, &i) in active.iter().enumerate() {
                    remaining[i] -= alloc.rates[k] * self.dt;
                    if remaining[i] <= 0.0 {
                        done_at[i] = Some(t + self.dt);
                    }
                }
            }
            t += self.dt;
            if done_at.iter().all(|d| d.is_some()) {
                break;
            }
        }
        done_at
            .into_iter()
            .enumerate()
            .map(|(i, d)| d.unwrap_or_else(|| panic!("flow {i} did not finish by {horizon}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_matches_analytic() {
        let r = Reference::new(100.0, 0.001);
        let done = r.completion_times(
            &[RefFlow {
                arrival: 0.0,
                bytes: 1000.0,
                weight: 1.0,
                cap: None,
            }],
            100.0,
        );
        assert!((done[0] - 10.0).abs() < 0.01);
    }

    #[test]
    fn two_flows_match_analytic() {
        let r = Reference::new(100.0, 0.001);
        let done = r.completion_times(
            &[
                RefFlow {
                    arrival: 0.0,
                    bytes: 1000.0,
                    weight: 1.0,
                    cap: None,
                },
                RefFlow {
                    arrival: 5.0,
                    bytes: 250.0,
                    weight: 1.0,
                    cap: None,
                },
            ],
            100.0,
        );
        assert!((done[1] - 10.0).abs() < 0.01, "{}", done[1]);
        assert!((done[0] - 12.5).abs() < 0.01, "{}", done[0]);
    }
}

//! Property-based cross-validation of the event-driven PFS engine against
//! the brute-force timestep reference, plus invariant checks.

use pfsim::alloc::{water_fill, Demand};
use pfsim::reference::{RefFlow, Reference};
use pfsim::{Channel, FlowSpec, Pfs, PfsConfig};
use proptest::prelude::*;
use simcore::SimTime;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn arb_flow() -> impl Strategy<Value = RefFlow> {
    (
        0.0f64..5.0,    // arrival
        1.0f64..2000.0, // bytes
        prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)],
        prop_oneof![
            Just(None),
            (5.0f64..150.0).prop_map(Some) // cap
        ],
    )
        .prop_map(|(arrival, bytes, weight, cap)| RefFlow {
            arrival,
            bytes,
            weight,
            cap,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Engine completion times match the timestep reference within 2·dt·rate
    /// worth of bytes (i.e. one timestep of slack).
    #[test]
    fn engine_matches_reference(flows in prop::collection::vec(arb_flow(), 1..7)) {
        let capacity = 100.0;
        let dt = 0.002;
        let reference = Reference::new(capacity, dt);
        let ref_times = reference.completion_times(&flows, 10_000.0);

        let mut p = Pfs::new(PfsConfig { write_capacity: capacity, read_capacity: capacity });
        // Submit in arrival order; collect completions.
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by(|&a, &b| flows[a].arrival.partial_cmp(&flows[b].arrival).unwrap());
        let mut id_of = vec![None; flows.len()];
        let mut done: Vec<(SimTime, pfsim::FlowId)> = Vec::new();
        for &i in &order {
            let f = &flows[i];
            // Drain completions that happen before this arrival.
            done.extend(p.advance_to(t(f.arrival)));
            let id = p.submit(
                t(f.arrival),
                Channel::Write,
                FlowSpec { bytes: f.bytes, weight: f.weight, cap: f.cap, meter: None },
            );
            id_of[i] = Some(id);
        }
        done.extend(p.advance_to(t(20_000.0)));

        for (i, f) in flows.iter().enumerate() {
            let id = id_of[i].unwrap();
            let engine_time = done
                .iter()
                .find(|(_, d)| *d == id)
                .map(|(ct, _)| ct.as_secs())
                .expect("flow completed in engine");
            // The reference quantizes to dt and can lag by up to a few steps
            // when rates change inside a step; allow a small absolute slack
            // scaled by how long the flow ran.
            let slack = (engine_time - f.arrival).max(1.0) * 0.01 + 3.0 * dt;
            prop_assert!(
                (engine_time - ref_times[i]).abs() <= slack,
                "flow {i}: engine {engine_time} vs reference {} (slack {slack})",
                ref_times[i]
            );
        }
    }

    /// Water-filling never exceeds capacity and never exceeds any cap.
    #[test]
    fn water_fill_respects_limits(
        capacity in 0.0f64..1000.0,
        demands in prop::collection::vec(
            (1usize..5, 0.1f64..8.0, prop::option::of(0.0f64..300.0)),
            0..10
        )
    ) {
        let demands: Vec<Demand> = demands
            .into_iter()
            .map(|(count, weight, cap)| Demand { count, weight, cap })
            .collect();
        let alloc = water_fill(capacity, &demands);
        let total: f64 = alloc
            .rates
            .iter()
            .zip(&demands)
            .map(|(r, d)| r * d.count as f64)
            .sum();
        prop_assert!(total <= capacity * (1.0 + 1e-9) + 1e-9, "total {total} > {capacity}");
        for (r, d) in alloc.rates.iter().zip(&demands) {
            prop_assert!(*r >= 0.0);
            if let Some(c) = d.cap {
                prop_assert!(*r <= c + 1e-9, "rate {r} exceeds cap {c}");
            }
        }
    }

    /// Work conservation: with at least one uncapped flow, the whole channel
    /// is used.
    #[test]
    fn water_fill_is_work_conserving(
        capacity in 1.0f64..1000.0,
        capped in prop::collection::vec((1usize..4, 0.5f64..4.0, 0.0f64..300.0), 0..6),
        uncapped_weight in 0.1f64..8.0,
    ) {
        let mut demands: Vec<Demand> = capped
            .into_iter()
            .map(|(count, weight, cap)| Demand { count, weight, cap: Some(cap) })
            .collect();
        demands.push(Demand { count: 1, weight: uncapped_weight, cap: None });
        let alloc = water_fill(capacity, &demands);
        let total: f64 = alloc
            .rates
            .iter()
            .zip(&demands)
            .map(|(r, d)| r * d.count as f64)
            .sum();
        prop_assert!((total - capacity).abs() <= capacity * 1e-9 + 1e-9,
            "not work conserving: {total} vs {capacity}");
    }

    /// Engine conserves bytes: the integral of the recorded total rate equals
    /// the bytes submitted.
    #[test]
    fn engine_conserves_bytes(flows in prop::collection::vec(arb_flow(), 1..6)) {
        let mut p = Pfs::new(PfsConfig { write_capacity: 100.0, read_capacity: 100.0 });
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by(|&a, &b| flows[a].arrival.partial_cmp(&flows[b].arrival).unwrap());
        let mut total_bytes = 0.0;
        for &i in &order {
            let f = &flows[i];
            let _ = p.advance_to(t(f.arrival));
            p.submit(
                t(f.arrival),
                Channel::Write,
                FlowSpec { bytes: f.bytes, weight: f.weight, cap: f.cap, meter: None },
            );
            total_bytes += f.bytes;
        }
        let _ = p.advance_to(t(100_000.0));
        let moved = p
            .total_series(Channel::Write)
            .integral(t(0.0), t(100_000.0));
        prop_assert!(
            (moved - total_bytes).abs() < 1e-3 * total_bytes.max(1.0),
            "moved {moved} vs submitted {total_bytes}"
        );
    }

    /// Completion order respects dominance: with equal weights, no caps and
    /// equal arrival, fewer bytes never finish later.
    #[test]
    fn smaller_flows_finish_first(bytes in prop::collection::vec(1.0f64..1000.0, 2..8)) {
        let mut p = Pfs::new(PfsConfig { write_capacity: 50.0, read_capacity: 50.0 });
        let ids: Vec<_> = bytes
            .iter()
            .map(|&b| p.submit(t(0.0), Channel::Write, FlowSpec::simple(b)))
            .collect();
        let done = p.advance_to(t(1e7));
        let time_of = |id| {
            done.iter()
                .find(|(_, d)| *d == id)
                .map(|(ct, _)| ct.as_secs())
                .unwrap()
        };
        for i in 0..bytes.len() {
            for j in 0..bytes.len() {
                if bytes[i] < bytes[j] {
                    prop_assert!(time_of(ids[i]) <= time_of(ids[j]) + 1e-9);
                }
            }
        }
    }
}

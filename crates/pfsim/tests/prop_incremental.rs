//! Property-based validation of the incremental PFS engine internals:
//! random submit / cap-change / capacity-change / advance sequences must
//! leave the resident allocator state bitwise-equal to a from-scratch
//! `water_fill`, keep the completion-time index consistent with a linear
//! rescan (`Pfs::validate_invariants`), and — on the sequences the timestep
//! reference can express — produce the same completion times.

use pfsim::reference::{RefFlow, Reference};
use pfsim::{Channel, FlowSpec, Pfs, PfsConfig};
use proptest::prelude::*;
use simcore::SimTime;

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// One step of the random engine-driving program.
#[derive(Clone, Debug)]
enum Op {
    /// Submit a flow on the selected channel at the current time.
    Submit {
        read: bool,
        bytes: f64,
        weight: f64,
        cap: Option<f64>,
    },
    /// Re-cap a live flow (selected by index modulo the live set).
    SetCap { pick: usize, cap: Option<f64> },
    /// Rescale a channel's capacity.
    SetCapacity { read: bool, capacity: f64 },
    /// Advance virtual time, harvesting completions.
    Advance { dt: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any::<bool>(),
            1.0f64..2000.0,
            prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)],
            prop::option::of(5.0f64..150.0),
        )
            .prop_map(|(read, bytes, weight, cap)| Op::Submit {
                read,
                bytes,
                weight,
                cap
            }),
        (0usize..64, prop::option::of(5.0f64..150.0))
            .prop_map(|(pick, cap)| Op::SetCap { pick, cap }),
        (any::<bool>(), 20.0f64..300.0)
            .prop_map(|(read, capacity)| Op::SetCapacity { read, capacity }),
        (0.01f64..3.0).prop_map(|dt| Op::Advance { dt }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every operation the resident rates equal a from-scratch
    /// water-fill and the completion index equals a linear rescan; once
    /// capacity is restored and time runs out, every submitted flow has
    /// completed exactly once.
    #[test]
    fn incremental_state_matches_from_scratch(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut p = Pfs::new(PfsConfig { write_capacity: 100.0, read_capacity: 100.0 });
        let mut now = 0.0f64;
        let mut live: Vec<pfsim::FlowId> = Vec::new();
        let mut submitted = 0usize;
        let mut completed: Vec<pfsim::FlowId> = Vec::new();

        for op in &ops {
            match *op {
                Op::Submit { read, bytes, weight, cap } => {
                    let channel = if read { Channel::Read } else { Channel::Write };
                    let id = p.submit(t(now), channel, FlowSpec { bytes, weight, cap, meter: None });
                    live.push(id);
                    submitted += 1;
                }
                Op::SetCap { pick, cap } => {
                    // set_cap requires completions harvested up to `now`.
                    let done = p.advance_to(t(now));
                    for (_, id) in &done {
                        live.retain(|l| l != id);
                        completed.push(*id);
                    }
                    if let Some(&id) = live.get(pick % live.len().max(1)) {
                        p.set_cap(t(now), id, cap);
                    }
                }
                Op::SetCapacity { read, capacity } => {
                    let done = p.advance_to(t(now));
                    for (_, id) in &done {
                        live.retain(|l| l != id);
                        completed.push(*id);
                    }
                    let channel = if read { Channel::Read } else { Channel::Write };
                    p.set_capacity(t(now), channel, capacity);
                }
                Op::Advance { dt } => {
                    now += dt;
                    let done = p.advance_to(t(now));
                    for (at, id) in &done {
                        prop_assert!(at.as_secs() <= now + 1e-9);
                        live.retain(|l| l != id);
                        completed.push(*id);
                    }
                }
            }
            p.validate_invariants();
        }

        // Drain: restore healthy capacities and run the clock out.
        let done = p.advance_to(t(now));
        for (_, id) in &done {
            live.retain(|l| l != id);
            completed.push(*id);
        }
        p.set_capacity(t(now), Channel::Write, 100.0);
        p.set_capacity(t(now), Channel::Read, 100.0);
        p.validate_invariants();
        completed.extend(p.advance_to(t(now + 1e6)).iter().map(|&(_, id)| id));
        p.validate_invariants();

        prop_assert_eq!(completed.len(), submitted, "every flow completes exactly once");
        let mut uniq = completed.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), submitted, "no duplicate completions");
        prop_assert_eq!(p.active_flows(Channel::Write), 0);
        prop_assert_eq!(p.active_flows(Channel::Read), 0);
        prop_assert!(p.next_completion().is_none());
    }

    /// On submit/advance-only programs (what the timestep reference can
    /// express), the incremental engine's completion times still match the
    /// brute-force reference — interleaved harvesting must not change them.
    #[test]
    fn completions_match_reference_with_interleaved_advances(
        flows in prop::collection::vec(
            (0.0f64..5.0, 1.0f64..2000.0, prop_oneof![Just(1.0f64), Just(2.0), Just(4.0)],
             prop::option::of(5.0f64..150.0)),
            1..7
        ),
        extra_advances in prop::collection::vec(0.0f64..8.0, 0..6),
    ) {
        let flows: Vec<RefFlow> = flows
            .into_iter()
            .map(|(arrival, bytes, weight, cap)| RefFlow { arrival, bytes, weight, cap })
            .collect();
        let capacity = 100.0;
        let dt = 0.002;
        let ref_times = Reference::new(capacity, dt).completion_times(&flows, 10_000.0);

        let mut p = Pfs::new(PfsConfig { write_capacity: capacity, read_capacity: capacity });
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by(|&a, &b| flows[a].arrival.partial_cmp(&flows[b].arrival).unwrap());
        // Interleave extra harvest points with the arrivals: the indexed
        // engine must behave identically however often it is polled.
        let mut events: Vec<(f64, Option<usize>)> =
            order.iter().map(|&i| (flows[i].arrival, Some(i))).collect();
        events.extend(extra_advances.iter().map(|&a| (a, None)));
        events.sort_by(|x, y| {
            x.0.partial_cmp(&y.0).unwrap().then(x.1.is_none().cmp(&y.1.is_none()))
        });

        let mut id_of = vec![None; flows.len()];
        let mut done: Vec<(SimTime, pfsim::FlowId)> = Vec::new();
        for (at, what) in events {
            done.extend(p.advance_to(t(at)));
            p.validate_invariants();
            if let Some(i) = what {
                let f = &flows[i];
                let id = p.submit(
                    t(f.arrival),
                    Channel::Write,
                    FlowSpec { bytes: f.bytes, weight: f.weight, cap: f.cap, meter: None },
                );
                id_of[i] = Some(id);
            }
        }
        done.extend(p.advance_to(t(20_000.0)));

        for (i, f) in flows.iter().enumerate() {
            let id = id_of[i].unwrap();
            let engine_time = done
                .iter()
                .find(|(_, d)| *d == id)
                .map(|(ct, _)| ct.as_secs())
                .expect("flow completed in engine");
            let slack = (engine_time - f.arrival).max(1.0) * 0.01 + 3.0 * dt;
            prop_assert!(
                (engine_time - ref_times[i]).abs() <= slack,
                "flow {i}: engine {engine_time} vs reference {} (slack {slack})",
                ref_times[i]
            );
        }
    }
}

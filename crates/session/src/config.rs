//! The experiment configuration: the knobs the paper varies, plus the
//! builder surface every frontend constructs it through.

use mpisim::{WatchdogCfg, WorldConfig};
use pfsim::PfsConfig;
use simcore::{FaultPlan, Noise, SimError, SimResult};
use tmio::{Strategy, TracerConfig};

/// Common experiment configuration (the knobs the paper varies).
///
/// Not `Copy`: the embedded [`FaultPlan`] owns its schedules. Clone
/// explicitly when deriving configs in sweeps.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// MPI ranks.
    pub n_ranks: usize,
    /// Limiting strategy ([`Strategy::None`] = trace only, limiter off).
    pub strategy: Strategy,
    /// Master seed.
    pub seed: u64,
    /// Compute-phase noise. Quantized so synchronized ranks stay in a
    /// bounded number of PFS flow groups (see DESIGN.md §4).
    pub compute_noise: Noise,
    /// PFS capacities (defaults to Lichtenberg's 106/120 GB/s).
    pub pfs: PfsConfig,
    /// ADIO sub-request size, bytes.
    pub subreq_bytes: f64,
    /// Optional PFS capacity noise (I/O variability, Fig. 14).
    pub capacity_noise: Option<mpisim::CapacityNoiseCfg>,
    /// I/O↔compute interference strength (0 = off); see
    /// [`mpisim::WorldConfig::interference_alpha`].
    pub interference_alpha: f64,
    /// Whether the limiter also paces blocking I/O (paper default: true).
    pub limit_sync_ops: bool,
    /// Optional burst-buffer write tier (future-work extension).
    pub burst_buffer: Option<pfsim::BurstBufferConfig>,
    /// Window-end semantics for `B_{i,j}` (paper default: first wait).
    pub te_mode: tmio::TeMode,
    /// Per-request aggregation into `B_{i,j}` (paper default: sum).
    pub aggregation: tmio::Aggregation,
    /// Record PFS rate series (disable in large sweeps).
    pub record_pfs: bool,
    /// Override for TMIO's per-call peri-runtime overhead, seconds
    /// (`None` = the paper-default 2 µs of [`TracerConfig`]).
    pub peri_call_overhead: Option<f64>,
    /// Seeded fault schedule (the chaos harness); the default empty plan
    /// reproduces the fault-free run bit-for-bit.
    pub faults: FaultPlan,
    /// Progress-watchdog thresholds for the run (see
    /// [`mpisim::WatchdogCfg`]). The defaults never trip on legitimate
    /// scenarios; tighten them in chaos runs to fail stalls fast.
    pub watchdog: WatchdogCfg,
}

impl ExpConfig {
    /// Paper-like defaults for `n_ranks` ranks under `strategy`.
    pub fn new(n_ranks: usize, strategy: Strategy) -> Self {
        ExpConfig {
            n_ranks,
            strategy,
            seed: 2024,
            compute_noise: Noise::QuantizedRel {
                amplitude: 0.03,
                levels: 8,
            },
            pfs: PfsConfig::default(),
            subreq_bytes: 1024.0 * 1024.0,
            capacity_noise: None,
            interference_alpha: 0.0,
            limit_sync_ops: true,
            burst_buffer: None,
            te_mode: tmio::TeMode::FirstWait,
            aggregation: tmio::Aggregation::Sum,
            record_pfs: true,
            peri_call_overhead: None,
            faults: FaultPlan::default(),
            watchdog: WatchdogCfg::default(),
        }
    }

    /// Rejects configurations the pipeline cannot execute — NaN, zero or
    /// negative capacities, tolerances and sub-request sizes, bad overhead
    /// overrides, and invalid fault plans (overlapping windows, bad
    /// probabilities) — as typed [`SimError::InvalidConfig`] values.
    /// [`crate::SessionBuilder::build`] calls this, so misconfiguration
    /// surfaces before any run starts.
    pub fn validate(&self) -> SimResult<()> {
        fn tol(field: &str, v: f64) -> SimResult<()> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(SimError::invalid_config(
                    field,
                    format!("tolerance must be finite and positive, got {v}"),
                ))
            }
        }
        match self.strategy {
            Strategy::None => {}
            Strategy::Direct { tol: t } => tol("strategy.tol", t)?,
            Strategy::UpOnly { tol: t } => tol("strategy.tol", t)?,
            Strategy::Adaptive { tol: t, tol_i } => {
                tol("strategy.tol", t)?;
                if !tol_i.is_finite() || tol_i < 0.0 {
                    return Err(SimError::invalid_config(
                        "strategy.tol_i",
                        format!("must be finite and >= 0, got {tol_i}"),
                    ));
                }
            }
            Strategy::Mfu { tol: t, bins } => {
                tol("strategy.tol", t)?;
                if bins == 0 {
                    return Err(SimError::invalid_config(
                        "strategy.bins",
                        "need at least one bin",
                    ));
                }
            }
        }
        if let Some(peri) = self.peri_call_overhead {
            if !peri.is_finite() || peri < 0.0 {
                return Err(SimError::invalid_config(
                    "peri_call_overhead",
                    format!("must be finite and >= 0, got {peri}"),
                ));
            }
        }
        self.world_config().validate()
    }

    /// Disables compute noise (exact analytic checks in tests).
    pub fn exact(mut self) -> Self {
        self.compute_noise = Noise::None;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the compute-phase noise model.
    pub fn with_noise(mut self, noise: Noise) -> Self {
        self.compute_noise = noise;
        self
    }

    /// Sets the PFS channel capacities.
    pub fn with_pfs(mut self, pfs: PfsConfig) -> Self {
        self.pfs = pfs;
        self
    }

    /// Sets the ADIO sub-request size in bytes.
    pub fn with_subreq_bytes(mut self, bytes: f64) -> Self {
        self.subreq_bytes = bytes;
        self
    }

    /// Installs periodic PFS capacity noise (I/O variability, Fig. 14).
    pub fn with_capacity_noise(mut self, noise: mpisim::CapacityNoiseCfg) -> Self {
        self.capacity_noise = Some(noise);
        self
    }

    /// Sets the I/O↔compute interference strength (0 disables it).
    pub fn with_interference(mut self, alpha: f64) -> Self {
        self.interference_alpha = alpha;
        self
    }

    /// Sets whether the limiter also paces blocking I/O.
    pub fn with_limit_sync(mut self, on: bool) -> Self {
        self.limit_sync_ops = on;
        self
    }

    /// Installs the burst-buffer write tier.
    pub fn with_burst_buffer(mut self, bb: pfsim::BurstBufferConfig) -> Self {
        self.burst_buffer = Some(bb);
        self
    }

    /// Sets the window-end semantics for `B_{i,j}`.
    pub fn with_te_mode(mut self, te: tmio::TeMode) -> Self {
        self.te_mode = te;
        self
    }

    /// Sets the per-request aggregation into `B_{i,j}`.
    pub fn with_aggregation(mut self, agg: tmio::Aggregation) -> Self {
        self.aggregation = agg;
        self
    }

    /// Enables or disables PFS rate-series recording.
    pub fn with_record_pfs(mut self, on: bool) -> Self {
        self.record_pfs = on;
        self
    }

    /// Overrides TMIO's per-call peri-runtime overhead, seconds.
    pub fn with_peri_call_overhead(mut self, seconds: f64) -> Self {
        self.peri_call_overhead = Some(seconds);
        self
    }

    /// Installs a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the progress-watchdog thresholds.
    pub fn with_watchdog(mut self, watchdog: WatchdogCfg) -> Self {
        self.watchdog = watchdog;
        self
    }

    pub(crate) fn world_config(&self) -> WorldConfig {
        let mut wc = WorldConfig::new(self.n_ranks)
            .with_limiter(self.strategy.limits())
            .with_compute_noise(self.compute_noise)
            .with_seed(self.seed);
        wc.pfs = self.pfs;
        wc.subreq_bytes = self.subreq_bytes;
        wc.capacity_noise = self.capacity_noise;
        wc.interference_alpha = self.interference_alpha;
        wc.limit_sync_ops = self.limit_sync_ops;
        wc.burst_buffer = self.burst_buffer;
        wc.record_pfs = self.record_pfs;
        wc.faults = self.faults.clone();
        wc.watchdog = self.watchdog;
        wc
    }

    pub(crate) fn tracer_config(&self) -> TracerConfig {
        let mut tc = TracerConfig::with_strategy(self.strategy);
        tc.te_mode = self.te_mode;
        tc.aggregation = self.aggregation;
        if let Some(peri) = self.peri_call_overhead {
            tc.peri_call_overhead = peri;
        }
        tc
    }
}

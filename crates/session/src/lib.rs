//! # session — the canonical run pipeline
//!
//! Every consumer of the simulator (the CLI, the figure harness, the chaos
//! and ablation sweeps, examples and tests) runs through the same three
//! layers instead of hand-wiring workload → [`mpisim::Program`] →
//! [`mpisim::World`] → [`tmio::Tracer`] → [`tmio::Report`] glue:
//!
//! 1. [`Workload`] — what runs: anything that can emit per-rank programs
//!    and the files they touch. The paper's two applications are provided
//!    ([`HaccIo`], [`Wacomm`]); new workloads plug in without touching the
//!    runners, and [`RawWorkload`] lifts ad-hoc op lists into the pipeline.
//! 2. [`ExpConfig`] — how it runs: the knobs the paper varies, with a full
//!    builder surface (`with_seed`, `with_noise`, `with_pfs`, …) and the
//!    seeded [`simcore::FaultPlan`] for chaos runs.
//! 3. [`Session`] / [`SessionBuilder`] — one execution entry point that
//!    composes the config, the workload, the tracer and the fault plan,
//!    and can stream results into a [`MetricsSink`] ([`MemorySink`],
//!    [`CsvSink`], [`JsonReportSink`]).
//!
//! The legacy free functions ([`run_hacc`], [`run_wacomm`], …) are thin
//! wrappers over a [`Session`] and remain the stable convenience API.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod run;
mod sink;
mod workload;

pub use config::ExpConfig;
pub use run::{RunOutput, Session, SessionBuilder};
// Error vocabulary, re-exported so supervising frontends don't need a
// direct simcore dependency.
pub use simcore::{SimError, SimResult, StallSnapshot};
pub use sink::{CsvSink, JsonReportSink, MemorySink, MetricsSink, RunMeta};
pub use workload::{
    run_hacc, run_hacc_sync, run_wacomm, run_wacomm_sync, HaccIo, RawWorkload, Wacomm, Workload,
};

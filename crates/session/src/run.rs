//! The [`Session`]: one execution entry point composing an [`ExpConfig`],
//! a [`Workload`], the TMIO tracer and the fault plan.

use crate::sink::{MetricsSink, RunMeta};
use crate::{ExpConfig, Workload};
use mpisim::{RunSummary, World};
use simcore::{SimError, SimResult, StepSeries};
use tmio::{Report, Tracer, TracerConfig};

/// Everything one run produces.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Runtime summary (makespan, per-rank accounting).
    pub summary: RunSummary,
    /// The TMIO report (phases, windows, decomposition, overheads).
    pub report: Report,
    /// Physical PFS write-rate series.
    pub pfs_write: StepSeries,
    /// Physical PFS read-rate series.
    pub pfs_read: StepSeries,
}

impl RunOutput {
    /// Application runtime (no post-runtime overhead), seconds.
    pub fn app_time(&self) -> f64 {
        self.summary.makespan()
    }

    /// Total runtime including TMIO's modeled post-runtime overhead.
    pub fn total_time(&self) -> f64 {
        self.app_time() + self.report.post_overhead
    }
}

/// A fully composed run: config + workload, ready to execute any number of
/// times (each [`Session::run`] is an independent, deterministic replay).
pub struct Session {
    cfg: ExpConfig,
    workload: Box<dyn Workload>,
}

impl Session {
    /// Starts building a session from an experiment configuration.
    pub fn builder(cfg: ExpConfig) -> SessionBuilder {
        SessionBuilder {
            cfg,
            workload: None,
        }
    }

    /// The experiment configuration this session runs under.
    pub fn config(&self) -> &ExpConfig {
        &self.cfg
    }

    /// Metadata identifying this session's runs in sinks and registries.
    pub fn meta(&self) -> RunMeta {
        RunMeta {
            workload: self.workload.name().to_string(),
            n_ranks: self.cfg.n_ranks,
            strategy: self.cfg.strategy.name(),
            seed: self.cfg.seed,
        }
    }

    /// Runs the workload under the tracer and collects everything.
    ///
    /// # Panics
    /// On any [`SimError`] raised by the engine (deadlock, tripped
    /// watchdog, invalid program); [`Session::try_run`] is the supervised,
    /// non-panicking path.
    pub fn run(&self) -> RunOutput {
        match self.try_run() {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the workload, surfacing engine failures as typed errors.
    pub fn try_run(&self) -> SimResult<RunOutput> {
        let cfg = &self.cfg;
        let tracer = Tracer::new(cfg.n_ranks, cfg.tracer_config());
        let mut world = World::new(
            cfg.world_config(),
            self.workload.programs(cfg.n_ranks),
            tracer,
        );
        for f in self.workload.files(cfg.n_ranks) {
            world.create_file(&f);
        }
        let summary = world.try_run()?;
        let pfs_write = world.pfs_series(mpisim::Channel::Write).clone();
        let pfs_read = world.pfs_series(mpisim::Channel::Read).clone();
        let report = std::mem::replace(
            world.hooks_mut(),
            Tracer::new(0, TracerConfig::trace_only()),
        )
        .into_report();
        Ok(RunOutput {
            summary,
            report,
            pfs_write,
            pfs_read,
        })
    }

    /// Runs and streams the result into `sink` (also returning it).
    pub fn run_into(&self, sink: &mut dyn MetricsSink) -> RunOutput {
        let out = self.run();
        sink.on_run(&self.meta(), &out);
        out
    }

    /// Supervised variant of [`Session::run_into`]: engine failures come
    /// back as typed errors and nothing reaches the sink.
    pub fn try_run_into(&self, sink: &mut dyn MetricsSink) -> SimResult<RunOutput> {
        let out = self.try_run()?;
        sink.on_run(&self.meta(), &out);
        Ok(out)
    }
}

/// Builder for [`Session`]: attach a workload to an [`ExpConfig`].
pub struct SessionBuilder {
    cfg: ExpConfig,
    workload: Option<Box<dyn Workload>>,
}

impl SessionBuilder {
    /// Sets the workload to execute.
    pub fn workload(mut self, w: impl Workload + 'static) -> Self {
        self.workload = Some(Box::new(w));
        self
    }

    /// Sets an already boxed workload (for registry-driven dispatch).
    pub fn workload_boxed(mut self, w: Box<dyn Workload>) -> Self {
        self.workload = Some(w);
        self
    }

    /// Finalizes the session, validating the configuration first.
    ///
    /// # Panics
    /// If no workload was attached or the configuration is invalid
    /// ([`SessionBuilder::try_build`] is the supervised, non-panicking
    /// path).
    pub fn build(self) -> Session {
        match self.try_build() {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finalizes the session, surfacing a missing workload or an invalid
    /// configuration (NaN/zero/negative capacities, tolerances or
    /// sub-request sizes, overlapping fault windows, …) as a typed
    /// [`SimError`] instead of panicking.
    pub fn try_build(self) -> SimResult<Session> {
        self.cfg.validate()?;
        let Some(workload) = self.workload else {
            return Err(SimError::invalid_config(
                "workload",
                "SessionBuilder: no workload attached",
            ));
        };
        Ok(Session {
            cfg: self.cfg,
            workload,
        })
    }
}

//! Streaming metric sinks: where a [`Session`](crate::Session) delivers
//! its results.
//!
//! Frontends no longer post-process [`RunOutput`] each in their own way —
//! they pick a backend: [`MemorySink`] (collect in memory), [`CsvSink`]
//! (stream rows to `results/*.csv`), or [`JsonReportSink`] (the full TMIO
//! trace in the format the real library emits at `MPI_Finalize`).

use crate::RunOutput;
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Metadata identifying one run in a sink.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// Workload name (e.g. `hacc`, `wacomm-sync`).
    pub workload: String,
    /// MPI ranks.
    pub n_ranks: usize,
    /// Limiting-strategy name.
    pub strategy: &'static str,
    /// Master seed.
    pub seed: u64,
}

/// A streaming consumer of run results.
pub trait MetricsSink {
    /// Called once per completed run with its metadata and full output.
    fn on_run(&mut self, meta: &RunMeta, out: &RunOutput);
}

/// Collects every run in memory (tests, ad-hoc analysis).
#[derive(Default)]
pub struct MemorySink {
    /// The collected runs, in completion order.
    pub runs: Vec<(RunMeta, RunOutput)>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsSink for MemorySink {
    fn on_run(&mut self, meta: &RunMeta, out: &RunOutput) {
        self.runs.push((meta.clone(), out.clone()));
    }
}

/// The temp-file sibling a path is staged through before the atomic rename.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".into());
    path.with_file_name(format!(".{name}.tmp"))
}

/// Streams CSV rows to a file — the shared backend behind every
/// figure/ablation/chaos CSV. Rows accumulate in a temp-file sibling;
/// [`CsvSink::finish`] flushes and atomically renames it into place, so an
/// interrupted run never leaves a truncated CSV at the final path (the
/// stale temp file is removed on drop).
pub struct CsvSink {
    w: BufWriter<fs::File>,
    path: PathBuf,
    tmp: PathBuf,
    rows: usize,
    /// First write error, held until [`CsvSink::finish`] surfaces it (the
    /// streaming [`MetricsSink`] interface has no error channel).
    err: Option<std::io::Error>,
    finished: bool,
}

impl CsvSink {
    /// Creates the temp sibling of `path` and writes `header` immediately.
    pub fn create(path: impl Into<PathBuf>, header: &str) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let tmp = tmp_sibling(&path);
        let mut w = BufWriter::new(fs::File::create(&tmp)?);
        writeln!(w, "{header}")?;
        Ok(CsvSink {
            w,
            path,
            tmp,
            rows: 0,
            err: None,
            finished: false,
        })
    }

    /// Appends one pre-formatted row.
    pub fn row(&mut self, row: &str) -> std::io::Result<()> {
        writeln!(self.w, "{row}")?;
        self.rows += 1;
        Ok(())
    }

    /// Appends many pre-formatted rows.
    pub fn rows(&mut self, rows: &[String]) -> std::io::Result<()> {
        for r in rows {
            self.row(r)?;
        }
        Ok(())
    }

    /// Rows written so far (excluding the header).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no data row has been written yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The final path (the temp sibling until [`CsvSink::finish`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes, atomically renames the temp file into place, and returns
    /// the final path. Surfaces any write error held from the streaming
    /// [`MetricsSink`] interface.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        self.w.get_ref().sync_all()?;
        fs::rename(&self.tmp, &self.path)?;
        self.finished = true;
        Ok(self.path.clone())
    }

    /// The standard per-run summary header matching the
    /// [`MetricsSink`] impl's row format.
    pub const RUN_HEADER: &'static str =
        "workload,ranks,strategy,seed,app_s,post_s,required_Bps,calls";
}

impl Drop for CsvSink {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

impl MetricsSink for CsvSink {
    fn on_run(&mut self, meta: &RunMeta, out: &RunOutput) {
        let row = format!(
            "{},{},{},{},{:.6},{:.6},{:.1},{}",
            meta.workload,
            meta.n_ranks,
            meta.strategy,
            meta.seed,
            out.app_time(),
            out.report.post_overhead,
            out.report.required_bandwidth(),
            out.report.calls,
        );
        if let Err(e) = self.row(&row) {
            // Sticky: the first error wins and fails finish().
            self.err.get_or_insert(e);
        }
    }
}

/// Writes each run's full TMIO report as JSON — the trace the real TMIO
/// emits at `MPI_Finalize`. The first run goes to the configured path,
/// later runs to `<stem>-<n>.<ext>`.
pub struct JsonReportSink {
    path: PathBuf,
    written: usize,
    /// First write error, held until [`JsonReportSink::finish`].
    err: Option<std::io::Error>,
}

impl JsonReportSink {
    /// Targets `path` for the first (usually only) run's report.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonReportSink {
            path: path.into(),
            written: 0,
            err: None,
        }
    }

    fn nth_path(&self, n: usize) -> PathBuf {
        if n == 0 {
            return self.path.clone();
        }
        let stem = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".into());
        let ext = self
            .path
            .extension()
            .map(|e| format!(".{}", e.to_string_lossy()))
            .unwrap_or_default();
        self.path.with_file_name(format!("{stem}-{n}{ext}"))
    }

    /// Paths written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Surfaces any write error held from the streaming [`MetricsSink`]
    /// interface, returning the number of reports written.
    pub fn finish(mut self) -> std::io::Result<usize> {
        match self.err.take() {
            Some(e) => Err(e),
            None => Ok(self.written),
        }
    }
}

impl MetricsSink for JsonReportSink {
    fn on_run(&mut self, _meta: &RunMeta, out: &RunOutput) {
        let path = self.nth_path(self.written);
        // Stage through a temp sibling + atomic rename: a run killed
        // mid-write never leaves a truncated report at the final path.
        let tmp = tmp_sibling(&path);
        let res = fs::write(&tmp, out.report.to_json()).and_then(|()| fs::rename(&tmp, &path));
        match res {
            Ok(()) => self.written += 1,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                self.err.get_or_insert(e);
            }
        }
    }
}

//! The [`Workload`] abstraction: what runs inside a [`Session`].
//!
//! A workload knows how to emit one [`Program`] per rank and the names of
//! the files those programs touch. The paper's two applications implement
//! it ([`HaccIo`], [`Wacomm`]); anything else plugs in the same way —
//! including raw op lists via [`RawWorkload`] — without touching the
//! runners.

use crate::{ExpConfig, RunOutput, Session};
use hpcwl::hacc::HaccConfig;
use hpcwl::wacomm::WacommConfig;
use mpisim::{FileId, Program};

/// A workload that a [`Session`] can execute: per-rank programs plus the
/// file names they reference.
pub trait Workload {
    /// Short name used in sinks, registries and reports.
    fn name(&self) -> &str;

    /// One program per rank.
    fn programs(&self, n_ranks: usize) -> Vec<Program>;

    /// File names to register with the world before the run, in
    /// [`FileId`] order.
    fn files(&self, n_ranks: usize) -> Vec<String>;
}

/// The modified HACC-IO benchmark (Fig. 12 structure). Each rank writes to
/// its own file, as in the paper's non-collective setting.
#[derive(Clone, Copy, Debug)]
pub struct HaccIo {
    cfg: HaccConfig,
    sync: bool,
}

impl HaccIo {
    /// The asynchronous (modified) benchmark of the paper.
    pub fn new(cfg: HaccConfig) -> Self {
        HaccIo { cfg, sync: false }
    }

    /// The vanilla synchronous baseline.
    pub fn sync(cfg: HaccConfig) -> Self {
        HaccIo { cfg, sync: true }
    }
}

impl Workload for HaccIo {
    fn name(&self) -> &str {
        if self.sync {
            "hacc-sync"
        } else {
            "hacc"
        }
    }

    fn programs(&self, n_ranks: usize) -> Vec<Program> {
        // One file per rank: the paper uses individual file pointers to
        // distinct files. The simulated registry only tracks byte counts,
        // so a single registered name per rank suffices.
        (0..n_ranks)
            .map(|r| {
                if self.sync {
                    self.cfg.program_sync(FileId(r as u32))
                } else {
                    self.cfg.program(FileId(r as u32))
                }
            })
            .collect()
    }

    fn files(&self, n_ranks: usize) -> Vec<String> {
        (0..n_ranks).map(|r| format!("hacc.{r}.dat")).collect()
    }
}

/// The WaComM-like pollutant transport workload: one shared input file,
/// one output file per rank.
#[derive(Clone, Copy, Debug)]
pub struct Wacomm {
    cfg: WacommConfig,
    sync: bool,
}

impl Wacomm {
    /// The asynchronous per-iteration-write schedule of the paper.
    pub fn new(cfg: WacommConfig) -> Self {
        Wacomm { cfg, sync: false }
    }

    /// The original synchronous WaComM++ baseline.
    pub fn sync(cfg: WacommConfig) -> Self {
        Wacomm { cfg, sync: true }
    }
}

impl Workload for Wacomm {
    fn name(&self) -> &str {
        if self.sync {
            "wacomm-sync"
        } else {
            "wacomm"
        }
    }

    fn programs(&self, n_ranks: usize) -> Vec<Program> {
        let input = FileId(0);
        (0..n_ranks)
            .map(|r| {
                let out = FileId(1 + r as u32);
                if self.sync {
                    self.cfg.program_sync(r, n_ranks, input, out)
                } else {
                    self.cfg.program(r, n_ranks, input, out)
                }
            })
            .collect()
    }

    fn files(&self, n_ranks: usize) -> Vec<String> {
        let mut names = vec!["wacomm.in".to_string()];
        names.extend((0..n_ranks).map(|r| format!("wacomm.{r}.out")));
        names
    }
}

/// An ad-hoc workload from explicit per-rank programs — the escape hatch
/// for synthetic kernels and semantics studies that don't warrant a named
/// workload type.
#[derive(Clone, Debug)]
pub struct RawWorkload {
    name: String,
    programs: Vec<Program>,
    files: Vec<String>,
}

impl RawWorkload {
    /// Wraps explicit per-rank `programs` and the `files` they reference.
    pub fn new(
        name: impl Into<String>,
        programs: Vec<Program>,
        files: Vec<impl Into<String>>,
    ) -> Self {
        RawWorkload {
            name: name.into(),
            programs,
            files: files.into_iter().map(Into::into).collect(),
        }
    }
}

impl Workload for RawWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn programs(&self, n_ranks: usize) -> Vec<Program> {
        assert_eq!(
            self.programs.len(),
            n_ranks,
            "RawWorkload holds {} programs but the session runs {} ranks",
            self.programs.len(),
            n_ranks
        );
        self.programs.clone()
    }

    fn files(&self, _n_ranks: usize) -> Vec<String> {
        self.files.clone()
    }
}

/// Runs the modified HACC-IO benchmark (legacy convenience wrapper over a
/// [`Session`]).
pub fn run_hacc(cfg: &ExpConfig, hacc: &HaccConfig) -> RunOutput {
    Session::builder(cfg.clone())
        .workload(HaccIo::new(*hacc))
        .build()
        .run()
}

/// Runs the vanilla synchronous HACC-IO baseline.
pub fn run_hacc_sync(cfg: &ExpConfig, hacc: &HaccConfig) -> RunOutput {
    Session::builder(cfg.clone())
        .workload(HaccIo::sync(*hacc))
        .build()
        .run()
}

/// Runs the WaComM-like pollutant transport workload.
pub fn run_wacomm(cfg: &ExpConfig, wc: &WacommConfig) -> RunOutput {
    Session::builder(cfg.clone())
        .workload(Wacomm::new(*wc))
        .build()
        .run()
}

/// Runs the original synchronous WaComM++ baseline.
pub fn run_wacomm_sync(cfg: &ExpConfig, wc: &WacommConfig) -> RunOutput {
    Session::builder(cfg.clone())
        .workload(Wacomm::sync(*wc))
        .build()
        .run()
}

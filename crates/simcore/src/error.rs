//! The typed error hierarchy of the simulation stack.
//!
//! Library-path failures surface as a [`SimError`] instead of a panic so
//! supervisors (the session layer, the sweep registry, CI harnesses) can
//! diagnose and recover: an invalid configuration is rejected before the
//! run starts, a run that stops making progress fails with a
//! [`StallSnapshot`] of everything still pending, and internal invariant
//! violations are clearly labelled as bugs.
//!
//! Panics remain reserved for *internal invariants* — states the engine
//! can only reach through a bug, never through user input. Those sites use
//! [`Invariant::invariant`] rather than `unwrap`/`expect`, which the
//! library crates deny via `clippy::unwrap_used`/`clippy::expect_used`, so
//! every remaining panic site is explicit and auditable.

use std::fmt;

/// Result alias used across the simulation crates.
pub type SimResult<T> = Result<T, SimError>;

/// A diagnostic snapshot taken when a run stops making progress: what was
/// pending, how deep the event queue was, and when anything last advanced.
///
/// Attached to [`SimError::Stalled`] (the watchdog tripped while events
/// were still firing) and [`SimError::Deadlock`] (the queue drained with
/// ranks still blocked).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StallSnapshot {
    /// Virtual time when the run was failed, seconds.
    pub at: f64,
    /// Virtual time of the last observed progress (bytes moved, an op
    /// retired, a rank finished), seconds.
    pub last_advance: f64,
    /// Events processed since the last observed progress.
    pub futile_events: u64,
    /// Events still pending when the snapshot was taken.
    pub queue_depth: usize,
    /// Human-readable state of every rank that is not done.
    pub blocked_ranks: Vec<String>,
    /// Human-readable state of every in-flight I/O operation.
    pub pending_ops: Vec<String>,
}

impl fmt::Display for StallSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:.6} s, last advance t={:.6} s, {} futile event(s), queue depth {}",
            self.at, self.last_advance, self.futile_events, self.queue_depth
        )?;
        if !self.blocked_ranks.is_empty() {
            write!(f, "; blocked: [{}]", self.blocked_ranks.join(", "))?;
        }
        if !self.pending_ops.is_empty() {
            write!(f, "; pending ops: [{}]", self.pending_ops.join(", "))?;
        }
        Ok(())
    }
}

/// A typed failure of the simulation stack.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A configuration value was rejected before the run started.
    InvalidConfig {
        /// The offending field, dotted-path style (`pfs.write_capacity`).
        field: String,
        /// Why the value is rejected.
        reason: String,
    },
    /// A rank program (or driver-issued op) references impossible state —
    /// e.g. a wait on an unknown request or mismatched collectives.
    InvalidProgram {
        /// The rank whose program is invalid.
        rank: usize,
        /// What is wrong with it.
        reason: String,
    },
    /// The progress watchdog tripped: events kept firing but nothing
    /// advanced (e.g. a poll loop on a request frozen by an outage).
    Stalled(Box<StallSnapshot>),
    /// The event queue drained while ranks were still blocked (e.g. a
    /// `Wait` whose request can never complete under an endless outage).
    Deadlock(Box<StallSnapshot>),
    /// A run artifact could not be written or read.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, stringified (keeps `SimError: Clone`).
        reason: String,
    },
    /// An internal invariant was violated — a bug in the engine, reported
    /// instead of panicking when a supervised path can carry it.
    Internal(String),
}

impl SimError {
    /// Convenience constructor for configuration rejections.
    pub fn invalid_config(field: impl Into<String>, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for program rejections.
    pub fn invalid_program(rank: usize, reason: impl Into<String>) -> Self {
        SimError::InvalidProgram {
            rank,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for I/O failures.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        SimError::Io {
            path: path.into(),
            reason: err.to_string(),
        }
    }

    /// The stall snapshot, when the error carries one.
    pub fn snapshot(&self) -> Option<&StallSnapshot> {
        match self {
            SimError::Stalled(s) | SimError::Deadlock(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            SimError::InvalidProgram { rank, reason } => {
                write!(f, "invalid program on rank {rank}: {reason}")
            }
            SimError::Stalled(s) => {
                write!(f, "watchdog: no progress ({s})")
            }
            SimError::Deadlock(s) => {
                write!(f, "deadlock: no events pending but ranks are blocked ({s})")
            }
            SimError::Io { path, reason } => write!(f, "io error at {path}: {reason}"),
            SimError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Extension trait for *internal invariants*: states that are unreachable
/// unless the engine itself is buggy. Unlike `unwrap`/`expect` (denied in
/// the library crates), an `invariant` call documents that the failure is
/// a bug, not a user-input path, and every site is greppable.
pub trait Invariant<T> {
    /// Unwraps, panicking with a clearly labelled invariant-violation
    /// message when the value is absent.
    fn invariant(self, what: &str) -> T;
}

impl<T> Invariant<T> for Option<T> {
    #[track_caller]
    #[inline]
    fn invariant(self, what: &str) -> T {
        match self {
            Some(v) => v,
            None => panic!("internal invariant violated: {what}"),
        }
    }
}

impl<T, E: fmt::Display> Invariant<T> for Result<T, E> {
    #[track_caller]
    #[inline]
    fn invariant(self, what: &str) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("internal invariant violated: {what}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::invalid_config("pfs.write_capacity", "must be positive, got -1");
        assert_eq!(
            e.to_string(),
            "invalid config: pfs.write_capacity: must be positive, got -1"
        );
        let snap = StallSnapshot {
            at: 2.5,
            last_advance: 1.0,
            futile_events: 42,
            queue_depth: 3,
            blocked_ranks: vec!["rank 0: Wait(ReqTag(1))".into()],
            pending_ops: vec!["task 0: rank 0 write 1024 B left".into()],
        };
        let e = SimError::Stalled(Box::new(snap.clone()));
        let msg = e.to_string();
        assert!(msg.contains("watchdog"), "{msg}");
        assert!(msg.contains("rank 0: Wait(ReqTag(1))"), "{msg}");
        assert!(msg.contains("queue depth 3"), "{msg}");
        assert_eq!(e.snapshot(), Some(&snap));
        let d = SimError::Deadlock(Box::new(snap));
        assert!(d.to_string().contains("deadlock"), "{d}");
    }

    #[test]
    fn invariant_unwraps() {
        assert_eq!(Some(3).invariant("present"), 3);
        let ok: Result<i32, String> = Ok(7);
        assert_eq!(ok.invariant("ok"), 7);
    }

    #[test]
    #[should_panic(expected = "internal invariant violated: gone")]
    fn invariant_panics_with_label() {
        let n: Option<i32> = None;
        n.invariant("gone");
    }
}

//! Deterministic, seeded fault plans.
//!
//! A [`FaultPlan`] is a schedule of adverse conditions a host simulation
//! replays against an otherwise-healthy run: PFS channel capacity
//! degradation or outage windows, transient per-flow I/O errors with POSIX
//! error codes, straggler ranks, and injected request cancellations. Every
//! element is derived from the plan's seed through [`stream_rng`], so a plan
//! replays bit-identically and a plan with all magnitudes at their neutral
//! values is indistinguishable from no plan at all (see
//! [`FaultPlan::is_inert`]).
//!
//! The plan itself is runtime-agnostic: `pfsim` consumes the channel
//! windows, `mpisim` consumes the error model, stragglers, cancellations and
//! the [`RetryPolicy`] of its ADIO layer.

use crate::error::{SimError, SimResult};
use crate::rng::stream_rng;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which PFS channel a fault window applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultChannel {
    /// The write channel only.
    Write,
    /// The read channel only.
    Read,
    /// Both channels (whole-file-system outage or congestion).
    Both,
}

impl FaultChannel {
    /// Whether the window applies to the channel with the given index
    /// (0 = write, 1 = read; mirrors `pfsim::Channel::index`).
    pub fn applies_to(self, index: usize) -> bool {
        match self {
            FaultChannel::Write => index == 0,
            FaultChannel::Read => index == 1,
            FaultChannel::Both => true,
        }
    }
}

/// A capacity degradation window: over `[start, end)` the channel's nominal
/// capacity is multiplied by `factor` (0 = hard outage, completions freeze;
/// 1 = no effect). Overlapping windows on the same channel compound
/// multiplicatively.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelFaultWindow {
    /// Affected channel(s).
    pub channel: FaultChannel,
    /// Window start, seconds (inclusive).
    pub start: f64,
    /// Window end, seconds (exclusive).
    pub end: f64,
    /// Capacity multiplier in `[0, 1]` while the window is active.
    pub factor: f64,
}

/// POSIX-style error codes for injected I/O failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoErrorKind {
    /// Generic I/O error (`EIO`).
    Io,
    /// Out of space on the target (`ENOSPC`).
    NoSpace,
    /// Operation timed out (`ETIMEDOUT`).
    Timeout,
    /// Stale file handle — e.g. a failed-over PFS server (`ESTALE`).
    Stale,
    /// Request cancelled by the fault plan (`ECANCELED`).
    Cancelled,
}

impl IoErrorKind {
    /// The numeric errno the kind models.
    pub fn code(self) -> i32 {
        match self {
            IoErrorKind::Io => 5,
            IoErrorKind::NoSpace => 28,
            IoErrorKind::Timeout => 110,
            IoErrorKind::Stale => 116,
            IoErrorKind::Cancelled => 125,
        }
    }

    /// The errno's symbolic name.
    pub fn name(self) -> &'static str {
        match self {
            IoErrorKind::Io => "EIO",
            IoErrorKind::NoSpace => "ENOSPC",
            IoErrorKind::Timeout => "ETIMEDOUT",
            IoErrorKind::Stale => "ESTALE",
            IoErrorKind::Cancelled => "ECANCELED",
        }
    }
}

/// Transient sub-request failure model: each sub-request transfer fails with
/// probability `prob`, drawing its error code uniformly from `kinds`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IoErrorModel {
    /// Per-sub-request failure probability in `[0, 1]`.
    pub prob: f64,
    /// Candidate error codes (uniform choice). Must be non-empty when
    /// `prob > 0`.
    pub kinds: Vec<IoErrorKind>,
}

impl IoErrorModel {
    /// A model failing each sub-request with probability `prob` as `EIO`.
    pub fn with_prob(prob: f64) -> Self {
        IoErrorModel {
            prob,
            kinds: vec![IoErrorKind::Io],
        }
    }

    /// Draws one sub-request outcome: `Some(kind)` on failure.
    ///
    /// Draws nothing from `rng` when `prob` is 0, so an inert model cannot
    /// perturb downstream draws.
    pub fn draw(&self, rng: &mut SmallRng) -> Option<IoErrorKind> {
        if self.prob <= 0.0 {
            return None;
        }
        assert!(
            !self.kinds.is_empty(),
            "error model needs at least one kind"
        );
        if rng.gen::<f64>() < self.prob {
            let i = rng.gen_range(0..self.kinds.len());
            Some(self.kinds[i])
        } else {
            None
        }
    }
}

/// A straggler rank: every compute phase of `rank` takes `factor`× its
/// (noise-adjusted) nominal duration. `factor` 1 is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StragglerSpec {
    /// Affected rank.
    pub rank: usize,
    /// Compute-duration multiplier (≥ 1 slows the rank down).
    pub factor: f64,
}

/// Injected cancellation of one asynchronous request: the `op_index`-th
/// async submit (0-based) of `rank` is cancelled by the runtime after its
/// in-flight sub-request, surfacing as an [`IoErrorKind::Cancelled`] op
/// error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CancelSpec {
    /// Affected rank.
    pub rank: usize,
    /// Index of the async submission on that rank (0-based).
    pub op_index: u64,
}

/// Bounded deterministic exponential backoff for sub-request retries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries per sub-request before the op fails.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds (virtual time).
    pub base_backoff: f64,
    /// Multiplier applied per subsequent retry.
    pub multiplier: f64,
    /// Upper bound on a single backoff sleep, seconds.
    pub max_backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 1e-3,
            multiplier: 2.0,
            max_backoff: 0.1,
        }
    }
}

impl RetryPolicy {
    /// The backoff sleep before retry number `retry` (0-based): deterministic
    /// `base·multiplier^retry`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> f64 {
        debug_assert!(self.base_backoff >= 0.0 && self.multiplier >= 0.0);
        (self.base_backoff * self.multiplier.powi(retry as i32)).min(self.max_backoff)
    }
}

/// A seeded schedule of fault events. `FaultPlan::default()` is the empty
/// (fault-free) plan.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all fault-related RNG streams (independent of the world's
    /// noise streams).
    pub seed: u64,
    /// Capacity degradation / outage windows.
    pub channel_faults: Vec<ChannelFaultWindow>,
    /// Transient sub-request error model (`None` = no injected errors).
    pub io_errors: Option<IoErrorModel>,
    /// Straggler ranks.
    pub stragglers: Vec<StragglerSpec>,
    /// Injected async-request cancellations.
    pub cancellations: Vec<CancelSpec>,
    /// Retry/backoff policy of the consuming ADIO layer.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan cannot affect a run: no active capacity windows, no
    /// error probability, no effective stragglers, no cancellations. Inert
    /// plans must reproduce the fault-free run bit-for-bit, so consumers
    /// skip scheduling anything for inert components.
    pub fn is_inert(&self) -> bool {
        self.active_channel_faults().next().is_none()
            && !self.io_errors_active()
            && self.stragglers.iter().all(|s| s.factor == 1.0)
            && self.cancellations.is_empty()
    }

    /// The capacity windows that can actually change behaviour (non-neutral
    /// factor over a non-empty span).
    pub fn active_channel_faults(&self) -> impl Iterator<Item = &ChannelFaultWindow> {
        self.channel_faults
            .iter()
            .filter(|w| w.factor != 1.0 && w.end > w.start)
    }

    /// Whether the transient-error model can fire.
    pub fn io_errors_active(&self) -> bool {
        self.io_errors.as_ref().is_some_and(|m| m.prob > 0.0)
    }

    /// The compound capacity factor on channel `index` (0 = write, 1 = read)
    /// at time `t`: the product of every active window containing `t`
    /// (windows are right-open).
    pub fn capacity_factor(&self, index: usize, t: f64) -> f64 {
        self.active_channel_faults()
            .filter(|w| w.channel.applies_to(index) && w.start <= t && t < w.end)
            .map(|w| w.factor)
            .product()
    }

    /// The compound compute-duration multiplier for `rank` (1 when the rank
    /// has no straggler entry).
    pub fn straggler_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.rank == rank && s.factor != 1.0)
            .map(|s| s.factor)
            .product()
    }

    /// Whether the `op_index`-th async submit of `rank` is cancelled.
    pub fn cancels(&self, rank: usize, op_index: u64) -> bool {
        self.cancellations
            .iter()
            .any(|c| c.rank == rank && c.op_index == op_index)
    }

    /// The RNG for fault decisions of logical stream `stream` (e.g. one I/O
    /// task). Independent of the world's noise streams by construction: the
    /// plan seed is salted before mixing.
    pub fn stream(&self, stream: u64) -> SmallRng {
        stream_rng(self.seed ^ 0x00FA_017F_A017, stream)
    }

    /// Rejects plans a supervised run cannot execute sensibly: NaN or
    /// infinite window edges, factors outside `[0, 1]`, inverted spans
    /// (zero-length windows are inert and allowed),
    /// overlapping active windows on the same channel (a validated config
    /// must schedule one degradation at a time — hand-built plans may still
    /// compound, see [`FaultPlan::capacity_factor`]), out-of-range error
    /// probabilities, non-positive straggler factors, and negative or NaN
    /// retry-policy terms.
    pub fn validate(&self) -> SimResult<()> {
        let bad = |field: &str, reason: String| Err(SimError::invalid_config(field, reason));
        for (i, w) in self.channel_faults.iter().enumerate() {
            let f = format!("faults.channel_faults[{i}]");
            if !w.start.is_finite() || w.start < 0.0 {
                return bad(
                    &f,
                    format!("start must be finite and >= 0, got {}", w.start),
                );
            }
            // Zero-length windows are inert no-ops, so `end == start` passes.
            if !w.end.is_finite() || w.end < w.start {
                return bad(
                    &f,
                    format!(
                        "end must be finite and >= start, got [{}, {})",
                        w.start, w.end
                    ),
                );
            }
            if !w.factor.is_finite() || !(0.0..=1.0).contains(&w.factor) {
                return bad(&f, format!("factor must be in [0, 1], got {}", w.factor));
            }
        }
        let active: Vec<&ChannelFaultWindow> = self.active_channel_faults().collect();
        for (i, a) in active.iter().enumerate() {
            for b in active.iter().skip(i + 1) {
                let share_channel =
                    (0..2).any(|c| a.channel.applies_to(c) && b.channel.applies_to(c));
                if share_channel && a.start < b.end && b.start < a.end {
                    return bad(
                        "faults.channel_faults",
                        format!(
                            "windows [{}, {}) and [{}, {}) overlap on a shared channel",
                            a.start, a.end, b.start, b.end
                        ),
                    );
                }
            }
        }
        if let Some(m) = &self.io_errors {
            if !m.prob.is_finite() || !(0.0..=1.0).contains(&m.prob) {
                return bad(
                    "faults.io_errors.prob",
                    format!("probability must be in [0, 1], got {}", m.prob),
                );
            }
            if m.prob > 0.0 && m.kinds.is_empty() {
                return bad(
                    "faults.io_errors.kinds",
                    "error model with positive probability needs at least one kind".into(),
                );
            }
        }
        for (i, s) in self.stragglers.iter().enumerate() {
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return bad(
                    &format!("faults.stragglers[{i}].factor"),
                    format!("must be finite and positive, got {}", s.factor),
                );
            }
        }
        let r = &self.retry;
        if !r.base_backoff.is_finite() || r.base_backoff < 0.0 {
            return bad(
                "faults.retry.base_backoff",
                format!("must be finite and >= 0, got {}", r.base_backoff),
            );
        }
        if !r.multiplier.is_finite() || r.multiplier < 0.0 {
            return bad(
                "faults.retry.multiplier",
                format!("must be finite and >= 0, got {}", r.multiplier),
            );
        }
        if !r.max_backoff.is_finite() || r.max_backoff < 0.0 {
            return bad(
                "faults.retry.max_backoff",
                format!("must be finite and >= 0, got {}", r.max_backoff),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::default().is_inert());
        assert!(FaultPlan::empty().is_inert());
    }

    #[test]
    fn neutral_magnitudes_stay_inert() {
        let plan = FaultPlan {
            channel_faults: vec![ChannelFaultWindow {
                channel: FaultChannel::Both,
                start: 1.0,
                end: 2.0,
                factor: 1.0,
            }],
            io_errors: Some(IoErrorModel::with_prob(0.0)),
            stragglers: vec![StragglerSpec {
                rank: 0,
                factor: 1.0,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.is_inert());
        assert_eq!(plan.capacity_factor(0, 1.5), 1.0);
        assert_eq!(plan.straggler_factor(0), 1.0);
    }

    #[test]
    fn outage_window_is_right_open() {
        let plan = FaultPlan {
            channel_faults: vec![ChannelFaultWindow {
                channel: FaultChannel::Write,
                start: 1.0,
                end: 2.0,
                factor: 0.0,
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_inert());
        assert_eq!(plan.capacity_factor(0, 0.5), 1.0);
        assert_eq!(plan.capacity_factor(0, 1.0), 0.0);
        assert_eq!(plan.capacity_factor(0, 1.999), 0.0);
        assert_eq!(plan.capacity_factor(0, 2.0), 1.0);
        // Read channel untouched.
        assert_eq!(plan.capacity_factor(1, 1.5), 1.0);
    }

    #[test]
    fn overlapping_windows_compound() {
        let w = |start: f64, end: f64, factor: f64| ChannelFaultWindow {
            channel: FaultChannel::Both,
            start,
            end,
            factor,
        };
        let plan = FaultPlan {
            channel_faults: vec![w(0.0, 10.0, 0.5), w(5.0, 6.0, 0.5)],
            ..FaultPlan::default()
        };
        assert_eq!(plan.capacity_factor(0, 1.0), 0.5);
        assert_eq!(plan.capacity_factor(1, 5.5), 0.25);
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let r = RetryPolicy {
            max_retries: 5,
            base_backoff: 1e-3,
            multiplier: 2.0,
            max_backoff: 3e-3,
        };
        assert_eq!(r.backoff(0), 1e-3);
        assert_eq!(r.backoff(1), 2e-3);
        assert_eq!(r.backoff(2), 3e-3); // capped
        assert_eq!(r.backoff(10), 3e-3);
    }

    #[test]
    fn error_draws_are_deterministic() {
        let model = IoErrorModel {
            prob: 0.5,
            kinds: vec![IoErrorKind::Io, IoErrorKind::Timeout, IoErrorKind::Stale],
        };
        let plan = FaultPlan {
            seed: 7,
            io_errors: Some(model.clone()),
            ..FaultPlan::default()
        };
        let draw_seq = || -> Vec<Option<IoErrorKind>> {
            let mut rng = plan.stream(42);
            (0..64).map(|_| model.draw(&mut rng)).collect()
        };
        let a = draw_seq();
        assert_eq!(a, draw_seq());
        assert!(a.iter().any(|d| d.is_some()), "prob 0.5 should fire in 64");
        assert!(a.iter().any(|d| d.is_none()));
    }

    #[test]
    fn zero_prob_draws_nothing_from_rng() {
        let model = IoErrorModel::with_prob(0.0);
        let mut a = stream_rng(1, 2);
        let mut b = stream_rng(1, 2);
        assert_eq!(model.draw(&mut a), None);
        // `a` must be untouched: next draws match a virgin stream.
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn error_codes_are_posix() {
        assert_eq!(IoErrorKind::Io.code(), 5);
        assert_eq!(IoErrorKind::NoSpace.code(), 28);
        assert_eq!(IoErrorKind::Cancelled.name(), "ECANCELED");
    }

    #[test]
    fn validate_accepts_sane_plans() {
        assert_eq!(FaultPlan::default().validate(), Ok(()));
        let plan = FaultPlan {
            channel_faults: vec![
                ChannelFaultWindow {
                    channel: FaultChannel::Write,
                    start: 1.0,
                    end: 2.0,
                    factor: 0.0,
                },
                ChannelFaultWindow {
                    channel: FaultChannel::Read,
                    start: 1.5,
                    end: 2.5,
                    factor: 0.5,
                },
            ],
            io_errors: Some(IoErrorModel::with_prob(0.05)),
            stragglers: vec![StragglerSpec {
                rank: 0,
                factor: 1.5,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_windows() {
        let w = |start, end, factor| FaultPlan {
            channel_faults: vec![ChannelFaultWindow {
                channel: FaultChannel::Both,
                start,
                end,
                factor,
            }],
            ..FaultPlan::default()
        };
        assert!(w(f64::NAN, 1.0, 0.5).validate().is_err());
        assert!(w(0.0, f64::INFINITY, 0.5).validate().is_err());
        assert!(w(2.0, 1.0, 0.5).validate().is_err());
        assert!(w(0.0, 1.0, -0.1).validate().is_err());
        assert!(w(0.0, 1.0, 1.5).validate().is_err());
        // Overlap on a shared channel is rejected for validated configs.
        let overlap = FaultPlan {
            channel_faults: vec![
                ChannelFaultWindow {
                    channel: FaultChannel::Both,
                    start: 0.0,
                    end: 10.0,
                    factor: 0.5,
                },
                ChannelFaultWindow {
                    channel: FaultChannel::Write,
                    start: 5.0,
                    end: 6.0,
                    factor: 0.5,
                },
            ],
            ..FaultPlan::default()
        };
        assert!(overlap.validate().is_err());
        // Disjoint channels may share a time span.
        let disjoint = FaultPlan {
            channel_faults: vec![
                ChannelFaultWindow {
                    channel: FaultChannel::Write,
                    start: 0.0,
                    end: 10.0,
                    factor: 0.5,
                },
                ChannelFaultWindow {
                    channel: FaultChannel::Read,
                    start: 5.0,
                    end: 6.0,
                    factor: 0.5,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(disjoint.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_models() {
        let plan = FaultPlan {
            io_errors: Some(IoErrorModel {
                prob: 1.5,
                kinds: vec![IoErrorKind::Io],
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            io_errors: Some(IoErrorModel {
                prob: 0.5,
                kinds: vec![],
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            stragglers: vec![StragglerSpec {
                rank: 0,
                factor: 0.0,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            retry: RetryPolicy {
                base_backoff: f64::NAN,
                ..RetryPolicy::default()
            },
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn cancellation_lookup() {
        let plan = FaultPlan {
            cancellations: vec![CancelSpec {
                rank: 2,
                op_index: 1,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.cancels(2, 1));
        assert!(!plan.cancels(2, 0));
        assert!(!plan.cancels(1, 1));
        assert!(!plan.is_inert());
    }
}

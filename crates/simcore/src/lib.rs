//! # simcore — discrete-event simulation core
//!
//! The foundation every other crate in this workspace builds on:
//!
//! * [`SimTime`] — NaN-free virtual time in seconds,
//! * [`EventQueue`] — deterministic time-ordered event queue with FIFO
//!   tie-breaking and O(1) cancellation,
//! * [`GenSlab`] — the queue's generation-stamped slot-arena bookkeeping as
//!   a reusable container (hash-free hot-path id maps),
//! * [`stream_rng`] / [`Noise`] — reproducible per-stream randomness,
//! * [`StepSeries`] — step-function time series for bandwidth plots,
//! * [`stats`] — small numeric helpers for reports.
//!
//! The engine is intentionally minimal: world state lives in the crates that
//! own it (`pfsim`, `mpisim`, `clustersim`); `simcore` only guarantees that
//! events fire in a total, reproducible order.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// Typed errors, stall diagnostics and the internal-invariant helper.
pub mod error;
/// Seeded fault plans replayed by the runtime crates (fault injection).
pub mod fault;
mod queue;
mod rng;
mod series;
mod slab;
/// Numeric helpers (mean, percentiles, percentage splits).
pub mod stats;
mod time;

pub use error::{Invariant, SimError, SimResult, StallSnapshot};
pub use fault::{
    CancelSpec, ChannelFaultWindow, FaultChannel, FaultPlan, IoErrorKind, IoErrorModel,
    RetryPolicy, StragglerSpec,
};
pub use queue::{EventKey, EventQueue};
pub use rng::{rank_phase_stream, stream_rng, Noise};
pub use series::StepSeries;
pub use slab::{GenKey, GenSlab};
pub use time::SimTime;

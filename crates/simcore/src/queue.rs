//! Event queue for discrete-event engines.
//!
//! [`EventQueue`] is a time-ordered priority queue with FIFO tie-breaking:
//! events scheduled for the same instant pop in the order they were pushed,
//! which keeps simulations deterministic regardless of heap internals.
//!
//! Cancellation is supported through [`EventKey`] tokens: `cancel` is O(1)
//! (lazy deletion; cancelled entries are skipped on pop).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Token identifying a scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest seq)
        // is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Scheduled, not yet popped, not cancelled.
    live: std::collections::HashSet<u64>,
    /// Cancelled but still physically in the heap (lazy deletion).
    cancelled: std::collections::HashSet<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// Panics if `time` is in the past (before the last popped event): a DES
    /// must never travel backwards.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventKey {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: {:?} < {:?}",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry {
            time,
            seq,
            payload,
        });
        EventKey(seq)
    }

    /// Schedules `payload` after `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventKey {
        let t = self.now.after(delay);
        self.schedule(t, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled); cancelling an
    /// already-delivered or already-cancelled event is a no-op returning
    /// `false`.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.live.remove(&key.0) {
            return false;
        }
        self.cancelled.insert(key.0);
        true
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.live.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(2.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(2.5));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), "dead");
        q.schedule(t(2.0), "alive");
        assert!(q.cancel(k));
        assert!(!q.cancel(k), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "alive");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (time, _) = q.pop().unwrap();
        assert!((time.as_secs() - 1.5).abs() < 1e-12);
    }

    /// Regression (found by proptest): cancelling an event that was already
    /// popped must be a no-op — it used to corrupt `len()` via a stale
    /// lazy-deletion entry.
    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), "x");
        q.schedule(t(2.0), "y");
        assert_eq!(q.pop().unwrap().1, "x");
        assert!(!q.cancel(k), "event already delivered");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), ());
        q.pop();
        q.schedule(t(1.0), ());
    }
}

//! Event queue for discrete-event engines.
//!
//! [`EventQueue`] is a time-ordered priority queue with FIFO tie-breaking:
//! events scheduled for the same instant pop in the order they were pushed,
//! which keeps simulations deterministic regardless of heap internals.
//!
//! Cancellation is supported through [`EventKey`] tokens: `cancel` is O(1)
//! (lazy deletion; cancelled entries are skipped on pop).
//!
//! Bookkeeping is a generation-stamped slot map rather than hash sets: every
//! scheduled event borrows a slot (recycled through a free list), and the
//! [`EventKey`] packs `(slot, generation)`. Cancel and pop are then plain
//! array probes with no hashing, and memory is bounded by the peak number of
//! concurrently pending events instead of growing with total events ever
//! scheduled.

use crate::error::Invariant;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Token identifying a scheduled event, usable to cancel it.
///
/// Packs `(slot, generation)`; a key is invalidated as soon as its event is
/// delivered or cancelled, even if the slot is later recycled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

impl EventKey {
    fn new(slot: u32, gen: u32) -> Self {
        EventKey((slot as u64) | ((gen as u64) << 32))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

struct Entry<E> {
    time: SimTime,
    /// Monotonic tie-breaker: FIFO among same-time events.
    seq: u64,
    slot: u32,
    gen: u32,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest seq)
        // is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-slot state. `pending` is true while the event scheduled under the
/// current generation has been neither popped nor cancelled.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    pending: bool,
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Scheduled, not yet popped, not cancelled.
    live: usize,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for `capacity` concurrently pending
    /// events, avoiding reallocation in the scheduling hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// Panics if `time` is in the past (before the last popped event): a DES
    /// must never travel backwards.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventKey {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: {:?} < {:?}",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                // Recycled slot: bump the generation so stale keys (and stale
                // heap entries from a cancelled predecessor) no longer match.
                let s = &mut self.slots[slot as usize];
                s.gen = s.gen.wrapping_add(1);
                s.pending = true;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).invariant("slot count fits in u32");
                self.slots.push(Slot {
                    gen: 0,
                    pending: true,
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.live += 1;
        self.heap.push(Entry {
            time,
            seq,
            slot,
            gen,
            payload,
        });
        EventKey::new(slot, gen)
    }

    /// Schedules `payload` after `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventKey {
        let t = self.now.after(delay);
        self.schedule(t, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled); cancelling an
    /// already-delivered or already-cancelled event is a no-op returning
    /// `false`.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slots.get_mut(key.slot() as usize) {
            Some(s) if s.gen == key.gen() && s.pending => {
                s.pending = false;
                self.live -= 1;
                // The physical heap entry stays behind (lazy deletion) but its
                // generation no longer matches once the slot is recycled; the
                // `pending` flag covers the window before recycling.
                self.free.push(key.slot());
                true
            }
            _ => false,
        }
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let s = &mut self.slots[entry.slot as usize];
            if s.gen != entry.gen || !s.pending {
                // Cancelled (and possibly recycled since): discard.
                continue;
            }
            debug_assert!(entry.time >= self.now);
            s.pending = false;
            self.free.push(entry.slot);
            self.live -= 1;
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The next live event — timestamp and payload — without popping it.
    /// Cancelled entries encountered on the way are discarded, exactly as
    /// [`EventQueue::pop`] would.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        // peek_time purges the stale prefix, so the heap top is live.
        self.peek_time()?;
        self.heap.peek().map(|e| (e.time, &e.payload))
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            let s = &self.slots[entry.slot as usize];
            if s.gen == entry.gen && s.pending {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(2.5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(2.5));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), "dead");
        q.schedule(t(2.0), "alive");
        assert!(q.cancel(k));
        assert!(!q.cancel(k), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "alive");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), "first");
        q.pop();
        q.schedule_in(0.5, "second");
        let (time, _) = q.pop().unwrap();
        assert!((time.as_secs() - 1.5).abs() < 1e-12);
    }

    /// Regression (found by proptest): cancelling an event that was already
    /// popped must be a no-op — it used to corrupt `len()` via a stale
    /// lazy-deletion entry.
    #[test]
    fn cancel_after_pop_is_noop() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), "x");
        q.schedule(t(2.0), "y");
        assert_eq!(q.pop().unwrap().1, "x");
        assert!(!q.cancel(k), "event already delivered");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.len(), 0);
    }

    /// A key must stay dead after its slot is recycled by a later event:
    /// cancelling it again must not disturb the new occupant.
    #[test]
    fn stale_key_does_not_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(t(1.0), "a");
        assert!(q.cancel(k1));
        // Reuses k1's slot under a new generation.
        let k2 = q.schedule(t(2.0), "b");
        assert!(!q.cancel(k1), "stale key must not hit the recycled slot");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(k2), "already delivered");
        assert!(q.is_empty());
    }

    /// Cancel + reschedule at the same time leaves a stale physical entry
    /// alongside the live one; the stale entry must be skipped even though it
    /// references the same slot.
    #[test]
    fn stale_heap_entry_on_recycled_slot_is_skipped() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(1.0), "old");
        q.cancel(k);
        q.schedule(t(1.0), "new");
        assert_eq!(q.peek_time(), Some(t(1.0)));
        assert_eq!(q.pop().unwrap().1, "new");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    /// Slots are recycled: heavy churn must not grow bookkeeping beyond the
    /// peak number of concurrently pending events.
    #[test]
    fn slot_recycling_bounds_bookkeeping() {
        let mut q = EventQueue::new();
        for i in 0..10_000 {
            let k = q.schedule(t(i as f64 + 1.0), i);
            if i % 2 == 0 {
                q.cancel(k);
            } else {
                q.pop();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 2,
            "churn leaked {} slots (expected peak-bounded)",
            q.slots.len()
        );
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), ());
        q.pop();
        q.schedule(t(1.0), ());
    }
}

//! Deterministic random-number streams.
//!
//! Every stochastic element of the simulation (compute-phase jitter, PFS
//! capacity noise, workload variability) draws from a stream derived from a
//! master seed plus a stable stream identifier, so any figure can be
//! regenerated bit-identically while streams stay statistically independent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mixes a master seed with a stream identifier into an independent RNG.
///
/// Uses SplitMix64 finalization over the pair, which is the standard way to
/// derive well-distributed per-stream seeds from sequential ids.
pub fn stream_rng(master_seed: u64, stream: u64) -> SmallRng {
    let mut z = master_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Derives a stream id from rank and phase indices (stable pairing).
pub fn rank_phase_stream(rank: usize, phase: usize) -> u64 {
    (rank as u64) << 32 | (phase as u64 & 0xFFFF_FFFF)
}

/// Multiplicative noise models applied to nominal durations or capacities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Noise {
    /// No noise: the nominal value is used unchanged.
    None,
    /// Uniform relative jitter: value × U(1−a, 1+a).
    UniformRel(f64),
    /// Log-normal-ish multiplicative jitter with the given sigma; the factor
    /// is exp(N(0, sigma²)) approximated from 12 uniforms (Irwin–Hall), which
    /// avoids needing a distributions crate and is plenty for jitter.
    LogNormal(f64),
    /// Occasional deep dips: with probability `prob` the factor is `factor`
    /// (≪ 1), otherwise 1. Models production-cluster I/O interference —
    /// another job's burst stealing most of the PFS (the paper's Fig. 14
    /// variability; cross-application interference can reach 200×).
    Spike {
        /// Probability of a dip per draw.
        prob: f64,
        /// Capacity factor during a dip.
        factor: f64,
    },
    /// Uniform relative jitter quantized to `levels` discrete factors. Used
    /// at large rank counts so synchronized ranks collapse into a bounded
    /// number of PFS flow groups (see DESIGN.md §4).
    QuantizedRel {
        /// Half-width of the relative jitter band.
        amplitude: f64,
        /// Number of discrete factor levels across the band.
        levels: u32,
    },
}

impl Noise {
    /// Applies the noise model to `nominal`, drawing from `rng`.
    /// The result is clamped to be non-negative.
    pub fn apply(self, nominal: f64, rng: &mut SmallRng) -> f64 {
        let factor = self.factor(rng);
        (nominal * factor).max(0.0)
    }

    /// Draws just the multiplicative factor.
    pub fn factor(self, rng: &mut SmallRng) -> f64 {
        match self {
            Noise::None => 1.0,
            Noise::UniformRel(a) => {
                debug_assert!((0.0..1.0).contains(&a));
                1.0 + rng.gen_range(-a..=a)
            }
            Noise::LogNormal(sigma) => {
                // Irwin–Hall approximation of a standard normal.
                let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                let z = sum - 6.0;
                (sigma * z).exp()
            }
            Noise::Spike { prob, factor } => {
                debug_assert!((0.0..=1.0).contains(&prob));
                if rng.gen::<f64>() < prob {
                    factor
                } else {
                    1.0
                }
            }
            Noise::QuantizedRel { amplitude, levels } => {
                debug_assert!(levels >= 1);
                let level = rng.gen_range(0..levels);
                if levels == 1 {
                    1.0
                } else {
                    let frac = level as f64 / (levels - 1) as f64; // 0..=1
                    1.0 - amplitude + 2.0 * amplitude * frac
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ_by_id() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_differ_by_seed() {
        let mut a = stream_rng(1, 7);
        let mut b = stream_rng(2, 7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn rank_phase_stream_is_injective_for_small_values() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for rank in 0..64 {
            for phase in 0..64 {
                assert!(seen.insert(rank_phase_stream(rank, phase)));
            }
        }
    }

    #[test]
    fn none_noise_is_identity() {
        let mut rng = stream_rng(0, 0);
        assert_eq!(Noise::None.apply(3.5, &mut rng), 3.5);
    }

    #[test]
    fn uniform_noise_bounded() {
        let mut rng = stream_rng(0, 1);
        for _ in 0..1000 {
            let v = Noise::UniformRel(0.1).apply(10.0, &mut rng);
            assert!((9.0..=11.0).contains(&v), "out of band: {v}");
        }
    }

    #[test]
    fn lognormal_positive_and_centered() {
        let mut rng = stream_rng(0, 2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| Noise::LogNormal(0.05).factor(&mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(mean > 0.98 && mean < 1.02, "mean factor {mean}");
    }

    #[test]
    fn quantized_levels_are_discrete() {
        use std::collections::BTreeSet;
        let mut rng = stream_rng(0, 3);
        let noise = Noise::QuantizedRel {
            amplitude: 0.2,
            levels: 5,
        };
        let mut seen = BTreeSet::new();
        for _ in 0..1000 {
            let f = noise.factor(&mut rng);
            seen.insert((f * 1e9).round() as i64);
        }
        assert!(
            seen.len() <= 5,
            "expected at most 5 levels, got {}",
            seen.len()
        );
        assert!(seen.len() >= 4, "expected the levels to be exercised");
    }

    #[test]
    fn spike_dips_at_expected_rate() {
        let mut rng = stream_rng(0, 5);
        let noise = Noise::Spike {
            prob: 0.25,
            factor: 0.05,
        };
        let n = 10_000;
        let dips = (0..n).filter(|_| noise.factor(&mut rng) < 0.5).count();
        let rate = dips as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "dip rate {rate}");
    }

    #[test]
    fn quantized_single_level_is_identity() {
        let mut rng = stream_rng(0, 4);
        let noise = Noise::QuantizedRel {
            amplitude: 0.2,
            levels: 1,
        };
        assert_eq!(noise.factor(&mut rng), 1.0);
    }
}

//! Step-function time series.
//!
//! Bandwidth plots in the paper (Figs. 2, 8–10, 13–14) are step functions:
//! a value holds from one event to the next. [`StepSeries`] records such
//! series compactly and supports the queries the figure harness needs
//! (integral, maximum, resampling, pointwise addition across series).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A right-open step function: `value(t) = v_k` for `t ∈ [t_k, t_{k+1})`.
/// Before the first point the value is 0.
///
/// ```
/// use simcore::{SimTime, StepSeries};
/// let mut s = StepSeries::new();
/// s.push(SimTime::from_secs(1.0), 50.0); // rate becomes 50 B/s at t=1
/// s.push(SimTime::from_secs(3.0), 0.0);  // transfer ends at t=3
/// assert_eq!(s.value_at(SimTime::from_secs(2.0)), 50.0);
/// assert_eq!(s.integral(SimTime::ZERO, SimTime::from_secs(10.0)), 100.0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct StepSeries {
    points: Vec<(f64, f64)>, // (time_secs, value) — strictly increasing times
}

impl StepSeries {
    /// An empty series (identically zero).
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Records that the value becomes `value` at time `t`.
    ///
    /// Multiple pushes at the same timestamp keep only the last value;
    /// pushes equal to the current value are dropped (run-length coding).
    pub fn push(&mut self, t: SimTime, value: f64) {
        let ts = t.as_secs();
        if let Some(last) = self.points.last_mut() {
            assert!(
                ts >= last.0,
                "StepSeries pushes must be time-ordered: {ts} < {}",
                last.0
            );
            if ts == last.0 {
                last.1 = value;
                // A same-time overwrite can make the previous segment redundant.
                let n = self.points.len();
                if n >= 2 && self.points[n - 2].1 == value {
                    self.points.pop();
                }
                return;
            }
            if last.1 == value {
                return;
            }
        } else if value == 0.0 {
            return; // already implicitly zero
        }
        self.points.push((ts, value));
    }

    /// The value at time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        let ts = t.as_secs();
        match self.points.binary_search_by(|p| p.0.total_cmp(&ts)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// ∫ value dt over `[from, to)`.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        let (a, b) = (from.as_secs(), to.as_secs());
        if b <= a || self.points.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut prev_t = a;
        let mut prev_v = self.value_at(from);
        for &(t, v) in &self.points {
            if t <= a {
                continue;
            }
            if t >= b {
                break;
            }
            total += prev_v * (t - prev_t);
            prev_t = t;
            prev_v = v;
        }
        total += prev_v * (b - prev_t);
        total
    }

    /// Maximum value attained anywhere in the series.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Timestamp of the last change, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.points.last().map(|p| SimTime::from_secs(p.0))
    }

    /// Raw `(time, value)` change points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series is identically zero.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Samples the series at `n` evenly spaced instants across `[from, to]`.
    pub fn resample(&self, from: SimTime, to: SimTime, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two sample points");
        let (a, b) = (from.as_secs(), to.as_secs());
        (0..n)
            .map(|k| {
                let t = a + (b - a) * k as f64 / (n - 1) as f64;
                (t, self.value_at(SimTime::from_secs(t)))
            })
            .collect()
    }

    /// Pointwise sum of several step series (the Eq. 3 "region" summation at
    /// the series level).
    pub fn sum(series: &[&StepSeries]) -> StepSeries {
        // Gather every change point, then evaluate the sum at each.
        let mut times: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        let mut out = StepSeries::new();
        for t in times {
            let st = SimTime::from_secs(t);
            let v: f64 = series.iter().map(|s| s.value_at(st)).sum();
            out.push(st, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_lookup_is_right_open() {
        let mut s = StepSeries::new();
        s.push(t(1.0), 10.0);
        s.push(t(2.0), 0.0);
        assert_eq!(s.value_at(t(0.5)), 0.0);
        assert_eq!(s.value_at(t(1.0)), 10.0);
        assert_eq!(s.value_at(t(1.9)), 10.0);
        assert_eq!(s.value_at(t(2.0)), 0.0);
        assert_eq!(s.value_at(t(5.0)), 0.0);
    }

    #[test]
    fn integral_of_rectangle() {
        let mut s = StepSeries::new();
        s.push(t(1.0), 4.0);
        s.push(t(3.0), 0.0);
        assert!((s.integral(t(0.0), t(10.0)) - 8.0).abs() < 1e-12);
        assert!((s.integral(t(2.0), t(10.0)) - 4.0).abs() < 1e-12);
        assert!((s.integral(t(1.5), t(2.5)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn run_length_dedup() {
        let mut s = StepSeries::new();
        s.push(t(1.0), 5.0);
        s.push(t(2.0), 5.0); // no change
        s.push(t(3.0), 6.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn same_time_overwrite_keeps_last() {
        let mut s = StepSeries::new();
        s.push(t(1.0), 5.0);
        s.push(t(1.0), 7.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(t(1.0)), 7.0);
    }

    #[test]
    fn same_time_overwrite_can_collapse_to_previous() {
        let mut s = StepSeries::new();
        s.push(t(1.0), 5.0);
        s.push(t(2.0), 9.0);
        s.push(t(2.0), 5.0); // back to previous value -> segment vanishes
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(t(3.0)), 5.0);
    }

    #[test]
    fn leading_zero_is_implicit() {
        let mut s = StepSeries::new();
        s.push(t(0.0), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn max_value_found() {
        let mut s = StepSeries::new();
        s.push(t(1.0), 3.0);
        s.push(t(2.0), 9.0);
        s.push(t(3.0), 1.0);
        assert_eq!(s.max_value(), 9.0);
    }

    #[test]
    fn sum_of_series() {
        let mut a = StepSeries::new();
        a.push(t(0.0), 1.0);
        a.push(t(2.0), 0.0);
        let mut b = StepSeries::new();
        b.push(t(1.0), 2.0);
        b.push(t(3.0), 0.0);
        let s = StepSeries::sum(&[&a, &b]);
        assert_eq!(s.value_at(t(0.5)), 1.0);
        assert_eq!(s.value_at(t(1.5)), 3.0);
        assert_eq!(s.value_at(t(2.5)), 2.0);
        assert_eq!(s.value_at(t(3.5)), 0.0);
    }

    #[test]
    fn resample_endpoints() {
        let mut s = StepSeries::new();
        s.push(t(0.0), 2.0);
        s.push(t(10.0), 0.0);
        let samples = s.resample(t(0.0), t(10.0), 11);
        assert_eq!(samples.len(), 11);
        assert_eq!(samples[0], (0.0, 2.0));
        assert_eq!(samples[5].1, 2.0);
        assert_eq!(samples[10].1, 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut s = StepSeries::new();
        s.push(t(2.0), 1.0);
        s.push(t(1.0), 2.0);
    }
}

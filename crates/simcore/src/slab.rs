//! Generation-stamped slot arena — the bookkeeping pattern behind
//! [`crate::EventQueue`], exposed as a reusable container.
//!
//! A [`GenSlab`] hands out [`GenKey`]s that pack `(slot, generation)`.
//! Lookups are plain array probes with no hashing; removing an entry bumps
//! the slot's generation so stale keys can never alias a recycled slot; and
//! memory is bounded by the *peak* number of live entries instead of growing
//! with the total ever inserted. Runtime crates use it wherever a hot loop
//! would otherwise hash transient ids (in-flight I/O tasks, open tracer
//! spans).

use crate::error::Invariant;

/// Token identifying one live entry of a [`GenSlab`].
///
/// Packs `(slot, generation)`; the key dies as soon as its entry is removed,
/// even if the slot is later recycled for a new entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GenKey(u64);

impl GenKey {
    fn new(slot: u32, gen: u32) -> Self {
        GenKey((slot as u64) | ((gen as u64) << 32))
    }

    /// The raw slot index (stable while the entry is live). Useful as a
    /// dense array index for side tables sized like the slab.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The packed `(slot, generation)` representation.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from [`GenKey::as_u64`]. The caller is responsible for
    /// round-tripping values obtained from the same slab.
    pub fn from_u64(v: u64) -> Self {
        GenKey(v)
    }
}

struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// A generation-stamped slot arena (see module docs).
pub struct GenSlab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for GenSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> GenSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty slab pre-sized for `capacity` concurrently live entries,
    /// avoiding reallocation in the insertion hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        GenSlab {
            entries: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (the peak-liveness bound).
    pub fn slot_count(&self) -> usize {
        self.entries.len()
    }

    /// Inserts `val`, returning its key.
    pub fn insert(&mut self, val: T) -> GenKey {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let e = &mut self.entries[slot as usize];
                debug_assert!(e.val.is_none());
                e.val = Some(val);
                GenKey::new(slot, e.gen)
            }
            None => {
                let slot = u32::try_from(self.entries.len()).invariant("slot count fits in u32");
                self.entries.push(Entry {
                    gen: 0,
                    val: Some(val),
                });
                GenKey::new(slot, 0)
            }
        }
    }

    fn entry(&self, key: GenKey) -> Option<&Entry<T>> {
        self.entries
            .get(key.slot() as usize)
            .filter(|e| e.gen == key.gen() && e.val.is_some())
    }

    /// True while `key`'s entry is live.
    pub fn contains(&self, key: GenKey) -> bool {
        self.entry(key).is_some()
    }

    /// Borrows the entry behind `key`, if still live.
    pub fn get(&self, key: GenKey) -> Option<&T> {
        self.entry(key).and_then(|e| e.val.as_ref())
    }

    /// Mutably borrows the entry behind `key`, if still live.
    pub fn get_mut(&mut self, key: GenKey) -> Option<&mut T> {
        self.entries
            .get_mut(key.slot() as usize)
            .filter(|e| e.gen == key.gen())
            .and_then(|e| e.val.as_mut())
    }

    /// Removes and returns the entry behind `key`. Stale keys (already
    /// removed, possibly recycled) return `None` and disturb nothing.
    pub fn remove(&mut self, key: GenKey) -> Option<T> {
        let e = self
            .entries
            .get_mut(key.slot() as usize)
            .filter(|e| e.gen == key.gen())?;
        let val = e.val.take()?;
        // Bump the generation on removal so the outgoing key (and any copy
        // of it) can never match the slot's next occupant.
        e.gen = e.gen.wrapping_add(1);
        self.free.push(key.slot());
        self.len -= 1;
        Some(val)
    }

    /// Iterates live entries in slot order (not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (GenKey, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.val.as_ref().map(|v| (GenKey::new(i as u32, e.gen), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = GenSlab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove is a no-op");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn stale_key_misses_recycled_slot() {
        let mut s = GenSlab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(b.slot(), a.slot(), "slot is recycled");
        assert_eq!(s.get(a), None, "stale key must not alias the new entry");
        assert!(!s.contains(a));
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = GenSlab::new();
        let k = s.insert(10);
        *s.get_mut(k).unwrap() += 5;
        assert_eq!(s.get(k), Some(&15));
    }

    #[test]
    fn churn_is_peak_bounded() {
        let mut s = GenSlab::with_capacity(4);
        for i in 0..10_000 {
            let k = s.insert(i);
            s.remove(k);
        }
        assert!(s.is_empty());
        assert!(
            s.slot_count() <= 1,
            "churn leaked {} slots (expected peak-bounded)",
            s.slot_count()
        );
    }

    #[test]
    fn iter_walks_live_entries() {
        let mut s = GenSlab::new();
        let a = s.insert("a");
        let _b = s.insert("b");
        s.insert("c");
        s.remove(a);
        let got: Vec<&str> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, ["b", "c"]);
    }

    #[test]
    fn key_u64_roundtrip() {
        let mut s = GenSlab::new();
        let k = s.insert(7);
        let k2 = GenKey::from_u64(k.as_u64());
        assert_eq!(s.get(k2), Some(&7));
    }
}

//! Small statistics helpers used by reports and the figure harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated percentile, `q ∈ [0, 1]`. Panics on empty input.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Maximum; 0 for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Sum.
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Normalizes parts to percentages of their total; all zeros if total is 0.
pub fn percentages(parts: &[f64]) -> Vec<f64> {
    let total: f64 = parts.iter().sum();
    if total <= 0.0 {
        return vec![0.0; parts.len()];
    }
    parts.iter().map(|p| 100.0 * p / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert_eq!(percentile(&xs, 0.5), 25.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&xs, 0.5), 25.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let p = percentages(&[1.0, 3.0]);
        assert_eq!(p, vec![25.0, 75.0]);
        assert_eq!(percentages(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}

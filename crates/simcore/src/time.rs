//! Virtual time for the discrete-event core.
//!
//! Time is carried as `f64` seconds inside a [`SimTime`] newtype that
//! guarantees a NaN-free total order, so it can key event queues directly.
//! Durations are plain `f64` seconds; the type only exists where ordering
//! matters.

use crate::error::Invariant;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
///
/// Construction rejects NaN so that `Ord` is total. Negative times are
/// permitted (useful for "before the simulation" sentinels) but the engine
/// never produces them.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);
    /// A time later than any event the engine will schedule.
    pub const FAR_FUTURE: SimTime = SimTime(f64::MAX);

    /// Creates a time from seconds. Panics on NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// The wrapped value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `self + dur` seconds, saturating at `FAR_FUTURE` for infinite durations.
    #[inline]
    pub fn after(self, dur: f64) -> Self {
        debug_assert!(!dur.is_nan(), "duration cannot be NaN");
        debug_assert!(dur >= 0.0, "duration cannot be negative: {dur}");
        let t = self.0 + dur;
        if t.is_finite() {
            SimTime(t)
        } else {
            SimTime::FAR_FUTURE
        }
    }

    /// Duration in seconds from `earlier` to `self` (may be negative).
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// True if this is the `FAR_FUTURE` sentinel.
    #[inline]
    pub fn is_far_future(self) -> bool {
        self.0 == f64::MAX
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are NaN-free by construction.
        self.0
            .partial_cmp(&other.0)
            .invariant("SimTime is NaN-free")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b - a, 1.0);
    }

    #[test]
    fn after_accumulates() {
        let t = SimTime::ZERO.after(0.5).after(0.25);
        assert!((t.as_secs() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn far_future_dominates() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(1e300));
        assert!(SimTime::FAR_FUTURE.is_far_future());
        assert!(!SimTime::ZERO.is_far_future());
    }

    #[test]
    fn after_infinite_duration_saturates() {
        let t = SimTime::from_secs(1.0).after(f64::INFINITY);
        assert!(t.is_far_future());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn add_assign_works() {
        let mut t = SimTime::ZERO;
        t += 2.0;
        assert_eq!(t.as_secs(), 2.0);
    }
}

//! Property tests of the event queue: total order, FIFO ties, cancellation.

use proptest::prelude::*;
use simcore::{EventQueue, SimTime};

proptest! {
    /// Pops are globally ordered by (time, insertion sequence).
    #[test]
    fn pops_sorted_with_fifo_ties(times in prop::collection::vec(0u32..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t as f64), i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t, id));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO on ties");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u32..50, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_secs(t as f64), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, k) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*k));
                cancelled.insert(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, id)) = q.pop() {
            prop_assert!(!cancelled.contains(&id), "cancelled event {id} popped");
            seen.insert(id);
        }
        prop_assert_eq!(seen.len(), times.len() - cancelled.len());
    }

    /// Interleaved schedule/pop keeps the clock monotone and never loses a
    /// live event.
    #[test]
    fn interleaved_ops_keep_invariants(script in prop::collection::vec((0u8..3, 0u32..20), 1..200)) {
        let mut q = EventQueue::new();
        let mut scheduled = 0usize;
        let mut popped = 0usize;
        let mut cancelled = 0usize;
        let mut last_key = None;
        let mut last_now = SimTime::ZERO;
        for (op, dt) in script {
            match op {
                0 => {
                    last_key = Some(q.schedule_in(dt as f64, ()));
                    scheduled += 1;
                }
                1 => {
                    if let Some((t, ())) = q.pop() {
                        prop_assert!(t >= last_now, "clock monotone");
                        last_now = t;
                        popped += 1;
                    }
                }
                _ => {
                    if let Some(k) = last_key.take() {
                        if q.cancel(k) {
                            cancelled += 1;
                        }
                    }
                }
            }
        }
        prop_assert_eq!(q.len(), scheduled - popped - cancelled);
    }
}

//! FTIO-style frequency analysis of I/O behaviour.
//!
//! The paper's companion tool (Tarraf et al., "Capturing periodic I/O using
//! frequency techniques", IPDPS'24) detects the period of an application's
//! I/O phases from its bandwidth signal with a DFT. TMIO "has been recently
//! used together with FTIO to predict online or detect offline the I/O
//! phases of an application" (Sec. VII) — this module provides that
//! capability over the recorded [`StepSeries`]: resample, remove the DC
//! component, run a radix-2 FFT, and report the dominant period with a
//! confidence score.

use simcore::{Invariant, SimTime, StepSeries};

/// Result of period detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodEstimate {
    /// Dominant period, seconds.
    pub period: f64,
    /// Dominant frequency, Hz.
    pub frequency: f64,
    /// Fraction of (DC-free) spectral energy in the dominant frequency and
    /// its harmonics (±1 bin of leakage each) — ≈1 for a periodic burst
    /// train, ~0 for white noise.
    pub confidence: f64,
    /// Magnitude of the dominant component (bytes/s).
    pub amplitude: f64,
}

/// In-place radix-2 decimation-in-time FFT over interleaved complex values.
/// `re`/`im` lengths must be equal powers of two.
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len());
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Detects the dominant period of `series` over `[from, to]`, sampling at
/// `n_samples` points (rounded up to a power of two, min 64).
///
/// Returns `None` for an empty window or a signal with no spectral content
/// beyond DC.
pub fn detect_period(
    series: &StepSeries,
    from: f64,
    to: f64,
    n_samples: usize,
) -> Option<PeriodEstimate> {
    if to <= from {
        return None;
    }
    let n = n_samples.max(64).next_power_of_two();
    let horizon = to - from;
    // Bin the *transferred bytes* (integral over each bin), not point
    // samples: I/O bursts are far shorter than a bin and point sampling
    // would miss them entirely — FTIO works on binned byte counts too.
    let bin = horizon / n as f64;
    let samples: Vec<f64> = (0..n)
        .map(|k| {
            let a = from + k as f64 * bin;
            series.integral(SimTime::from_secs(a), SimTime::from_secs(a + bin)) / bin
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let mut re: Vec<f64> = samples.iter().map(|v| v - mean).collect();
    let mut im = vec![0.0; n];
    if re.iter().all(|v| v.abs() < 1e-12) {
        return None;
    }
    fft(&mut re, &mut im);
    // Power spectrum over positive frequencies (skip DC).
    let half = n / 2;
    let power: Vec<f64> = (0..half).map(|k| re[k] * re[k] + im[k] * im[k]).collect();
    let (k_star, p_star) = power
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.partial_cmp(b.1).invariant("NaN-free"))?;
    let total: f64 = power.iter().skip(1).sum();
    if total <= 0.0 || *p_star <= 0.0 {
        return None;
    }
    // Confidence counts the fundamental and its harmonics (±1 bin of
    // leakage each): a periodic burst train concentrates its energy there
    // even though single-bin energy is low for impulse-like signals.
    // Collect the contributing bins into a set first: for small `k_star`
    // (≤ 2) the ±1 windows of consecutive harmonics overlap, and summing
    // per-window would count shared bins twice — inflating `dominant`
    // beyond `total` (masked only by the final `.min(1.0)` cap).
    let mut bins = std::collections::BTreeSet::new();
    let mut h = k_star;
    while h < half {
        bins.insert(h);
        if h > 1 {
            bins.insert(h - 1);
        }
        if h + 1 < half {
            bins.insert(h + 1);
        }
        h += k_star;
    }
    let dominant: f64 = bins.iter().map(|&k| power[k]).sum();
    let frequency = k_star as f64 / horizon;
    Some(PeriodEstimate {
        period: 1.0 / frequency,
        frequency,
        confidence: (dominant / total).min(1.0),
        amplitude: 2.0 * p_star.sqrt() / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(period: f64, duty: f64, level: f64, horizon: f64) -> StepSeries {
        let mut s = StepSeries::new();
        let mut t = 0.0;
        while t < horizon {
            s.push(SimTime::from_secs(t), level);
            s.push(SimTime::from_secs(t + period * duty), 0.0);
            t += period;
        }
        s
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_cosine_peaks_at_its_bin() {
        let n = 64;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 5.0 * i as f64 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let mags: Vec<f64> = (0..n / 2)
            .map(|k| (re[k].powi(2) + im[k].powi(2)).sqrt())
            .collect();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 5);
        assert!((mags[5] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn fft_parseval_energy_conserved() {
        let n = 128;
        let sig: Vec<f64> = (0..n).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect();
        let mut re = sig.clone();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let time_energy: f64 = sig.iter().map(|v| v * v).sum();
        let freq_energy: f64 =
            (0..n).map(|k| re[k] * re[k] + im[k] * im[k]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn detects_square_wave_period() {
        let s = square_wave(5.0, 0.1, 1e9, 100.0);
        let est = detect_period(&s, 0.0, 100.0, 1024).expect("periodic");
        assert!(
            (est.period - 5.0).abs() < 0.3,
            "period {} should be ≈5 s",
            est.period
        );
        assert!(est.confidence > 0.2, "confidence {}", est.confidence);
    }

    #[test]
    fn detects_longer_period() {
        let s = square_wave(20.0, 0.25, 5e8, 400.0);
        let est = detect_period(&s, 0.0, 400.0, 2048).expect("periodic");
        assert!((est.period - 20.0).abs() < 1.5, "period {}", est.period);
    }

    #[test]
    fn small_fundamental_confidence_not_double_counted() {
        // One long pulse: broad low-frequency spectrum peaking at bin 1
        // (k_star = 1), where consecutive harmonics' ±1 leakage windows all
        // overlap. The old per-window sum counts interior bins up to three
        // times, so the *uncapped* confidence exceeds 1; the set-based sum
        // is a true energy fraction and stays ≤ 1.
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(0.0), 1e9);
        s.push(SimTime::from_secs(40.0), 0.0);
        let (from, to, n) = (0.0, 100.0, 64usize);
        let est = detect_period(&s, from, to, n).expect("spectral content");

        // Recompute the spectrum exactly as detect_period does.
        let bin = (to - from) / n as f64;
        let samples: Vec<f64> = (0..n)
            .map(|k| {
                let a = from + k as f64 * bin;
                s.integral(SimTime::from_secs(a), SimTime::from_secs(a + bin)) / bin
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mut re: Vec<f64> = samples.iter().map(|v| v - mean).collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        let half = n / 2;
        let power: Vec<f64> = (0..half).map(|k| re[k] * re[k] + im[k] * im[k]).collect();
        let k_star = power
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(k_star <= 2, "pulse fundamental must be small, got {k_star}");
        let total: f64 = power.iter().skip(1).sum();

        // The pre-fix per-window sum (overlapping windows double-count).
        let mut old_dominant = 0.0;
        let mut h = k_star;
        while h < half {
            old_dominant += power[h];
            if h > 1 {
                old_dominant += power[h - 1];
            }
            if h + 1 < half {
                old_dominant += power[h + 1];
            }
            h += k_star;
        }
        assert!(
            old_dominant / total > 1.0,
            "uncapped legacy confidence must exceed 1 here: {}",
            old_dominant / total
        );
        assert!(
            est.confidence <= 1.0 && est.confidence > 0.0,
            "set-based confidence is a true fraction: {}",
            est.confidence
        );
        assert!(
            est.confidence < old_dominant / total,
            "dedup must strictly reduce the overlapped sum"
        );
    }

    #[test]
    fn constant_signal_has_no_period() {
        let mut s = StepSeries::new();
        s.push(SimTime::from_secs(0.0), 7.0);
        assert!(detect_period(&s, 0.0, 100.0, 256).is_none());
    }

    #[test]
    fn empty_window_rejected() {
        let s = StepSeries::new();
        assert!(detect_period(&s, 5.0, 5.0, 256).is_none());
        assert!(detect_period(&s, 0.0, 10.0, 256).is_none());
    }

    #[test]
    fn pure_tone_beats_noisy_tone_in_confidence() {
        let clean = square_wave(10.0, 0.5, 1.0, 200.0);
        let mut noisy = StepSeries::new();
        // Same wave with pseudo-random spikes between bursts.
        let mut t = 0.0;
        let mut h = 0x9E3779B97F4A7C15u64;
        while t < 200.0 {
            h = h.wrapping_mul(0x2545F4914F6CDD1D).rotate_left(17);
            let jitter = (h % 100) as f64 / 100.0;
            noisy.push(SimTime::from_secs(t), 1.0 + jitter);
            noisy.push(SimTime::from_secs(t + 5.0), jitter * 0.5);
            t += 10.0;
        }
        let c_clean = detect_period(&clean, 0.0, 200.0, 1024).unwrap().confidence;
        let c_noisy = detect_period(&noisy, 0.0, 200.0, 1024).unwrap().confidence;
        assert!(c_clean > c_noisy, "{c_clean} vs {c_noisy}");
    }
}

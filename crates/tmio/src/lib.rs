//! # tmio — Tracing MPI-IO (the paper's core contribution)
//!
//! Rust reproduction of the TMIO library from *"I/O Behind the Scenes:
//! Bandwidth Requirements of HPC Applications with Asynchronous I/O"*
//! (IEEE CLUSTER 2024):
//!
//! * intercepts asynchronous MPI-IO through the PMPI-analogue
//!   [`mpisim::IoHooks`] boundary ([`Tracer`]),
//! * computes each rank's **required bandwidth** `B_{i,j}` (Eq. 1) and
//!   **throughput** `T_{i,j}` (Eq. 2),
//! * applies the **direct / up-only / adaptive** limiting strategies
//!   (Sec. IV-B) plus the future-work MFU table ([`Strategy`]),
//! * aggregates rank metrics to application level with the region sweep of
//!   Eq. 3 ([`regions`]),
//! * reports the run: time decomposition, overheads, JSON traces
//!   ([`Report`]),
//! * detects periodic I/O behaviour with FTIO-style frequency analysis
//!   ([`ftio`], the companion-tool capability mentioned in Sec. VII),
//! * aggregates regions **online** for schedulers consuming the metric live
//!   ([`online::OnlineAggregator`]),
//! * optionally records the raw event stream ([`trace::TraceLog`], the
//!   machine-readable Fig. 3).
//!
//! ```
//! use tmio::{Strategy, Tracer, TracerConfig};
//! use mpisim::{threaded::Threaded, WorldConfig};
//!
//! let n = 4;
//! let cfg = WorldConfig::new(n).with_limiter(true);
//! let tracer = Tracer::new(n, TracerConfig::with_strategy(
//!     Strategy::Direct { tol: 1.1 }));
//! let mut tw = Threaded::new(cfg, tracer);
//! let f = tw.create_file("ckpt");
//! let (_summary, tracer) = tw.run(move |ctx| {
//!     for _ in 0..5 {
//!         let r = ctx.iwrite(f, 8e6);
//!         ctx.compute(0.01);
//!         ctx.wait(r);
//!     }
//! });
//! let report = tracer.into_report();
//! assert!(report.required_bandwidth() > 0.0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ftio;
pub mod online;
pub mod regions;
mod report;
mod strategy;
pub mod trace;
mod tracer;

pub use regions::{max_region, sweep, IncrementalSweep, Interval};
pub use report::{Decomposition, FaultEventRecord, Report};
pub use strategy::{Strategy, StrategyState, LIMIT_FLOOR};
pub use tracer::{
    Aggregation, AsyncSpan, ChannelKind, PhaseRecord, PostOverheadModel, SyncInterval, TeMode,
    ThroughputWindow, Tracer, TracerConfig,
};

//! Online application-level aggregation (paper Sec. IV-C: the region
//! computation "is done offline in the plotting script … or optionally
//! online if the appropriate flags are provided to TMIO").
//!
//! [`OnlineAggregator`] maintains the Eq. 3 region sum incrementally as
//! phases stream in: inserting an interval `[ts, te) → +B` updates a sorted
//! breakpoint map in O(log n + k) for k breakpoints spanned, and the current
//! application-level maximum is available at any time without a full
//! re-sweep. This is what an I/O scheduler consuming TMIO's metric online
//! would query (Sec. II: "this metric can be considered by the I/O
//! scheduler to dynamically schedule I/O accesses").

use simcore::{SimTime, StepSeries};
use std::collections::BTreeMap;

/// Incremental region aggregator over rank-phase intervals.
///
/// ```
/// use tmio::online::OnlineAggregator;
/// let mut agg = OnlineAggregator::new();
/// agg.insert(0.0, 2.0, 100.0); // rank 0's window
/// agg.insert(1.0, 3.0, 50.0);  // rank 1 overlaps [1, 2)
/// assert_eq!(agg.peak(), 150.0); // the app-level requirement so far
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineAggregator {
    /// Breakpoint -> region value from this breakpoint to the next.
    /// An entry at t holds Σ B of intervals covering [t, next_t).
    levels: BTreeMap<u64, f64>,
    /// Running maximum over all regions ever formed.
    peak: f64,
    /// Number of intervals inserted.
    inserted: usize,
}

/// Total order for f64 times via bit mapping (times are non-negative and
/// NaN-free here).
fn key(t: f64) -> u64 {
    debug_assert!(t >= 0.0 && !t.is_nan());
    t.to_bits()
}

fn unkey(k: u64) -> f64 {
    f64::from_bits(k)
}

impl OnlineAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one rank-phase interval `[ts, te)` carrying `value` (its
    /// `B_{i,j}`); updates the running regions and peak.
    pub fn insert(&mut self, ts: f64, te: f64, value: f64) {
        assert!(te >= ts, "interval reversed");
        if te <= ts || value == 0.0 {
            return;
        }
        self.inserted += 1;
        // Ensure breakpoints exist at ts and te, splitting the covering
        // region so its value is preserved on both sides.
        for t in [ts, te] {
            let k = key(t);
            if !self.levels.contains_key(&k) {
                let prev = self
                    .levels
                    .range(..k)
                    .next_back()
                    .map(|(_, &v)| v)
                    .unwrap_or(0.0);
                self.levels.insert(k, prev);
            }
        }
        // Add `value` to every region inside [ts, te).
        let (a, b) = (key(ts), key(te));
        for (_, v) in self.levels.range_mut(a..b) {
            *v += value;
            self.peak = self.peak.max(*v);
        }
    }

    /// The current application-level requirement: `max_r B_r` over all
    /// regions formed so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The region value at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        self.levels
            .range(..=key(t))
            .next_back()
            .map(|(_, &v)| v)
            .unwrap_or(0.0)
    }

    /// Number of intervals inserted.
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// True if nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Converts the current state into a [`StepSeries`] (identical to the
    /// offline sweep over the same intervals).
    pub fn to_series(&self) -> StepSeries {
        let mut s = StepSeries::new();
        for (&k, &v) in &self.levels {
            s.push(SimTime::from_secs(unkey(k)), v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::{sweep, Interval};

    #[test]
    fn matches_offline_sweep_on_fig4_example() {
        let intervals = [
            Interval {
                ts: 0.0,
                te: 4.0,
                value: 1.0,
            },
            Interval {
                ts: 1.0,
                te: 6.0,
                value: 2.0,
            },
            Interval {
                ts: 2.0,
                te: 8.0,
                value: 4.0,
            },
        ];
        let mut agg = OnlineAggregator::new();
        for iv in &intervals {
            agg.insert(iv.ts, iv.te, iv.value);
        }
        let offline = sweep(&intervals);
        let online = agg.to_series();
        for t in [0.5, 1.5, 3.0, 5.0, 7.0, 9.0] {
            assert_eq!(
                online.value_at(SimTime::from_secs(t)),
                offline.value_at(SimTime::from_secs(t)),
                "mismatch at t={t}"
            );
        }
        assert_eq!(agg.peak(), 7.0);
    }

    #[test]
    fn peak_available_mid_stream() {
        let mut agg = OnlineAggregator::new();
        agg.insert(0.0, 10.0, 5.0);
        assert_eq!(agg.peak(), 5.0);
        agg.insert(2.0, 4.0, 3.0);
        assert_eq!(agg.peak(), 8.0);
        agg.insert(20.0, 30.0, 6.0);
        assert_eq!(agg.peak(), 8.0, "disjoint interval cannot raise the peak");
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let intervals = [
            (0.0, 3.0, 1.0),
            (1.0, 2.0, 10.0),
            (1.5, 4.0, 2.5),
            (0.5, 1.7, 0.5),
        ];
        let mut fwd = OnlineAggregator::new();
        for &(a, b, v) in &intervals {
            fwd.insert(a, b, v);
        }
        let mut rev = OnlineAggregator::new();
        for &(a, b, v) in intervals.iter().rev() {
            rev.insert(a, b, v);
        }
        assert_eq!(fwd.peak(), rev.peak());
        for t in [0.25, 0.75, 1.25, 1.6, 2.5, 3.5, 5.0] {
            assert!(
                (fwd.value_at(t) - rev.value_at(t)).abs() < 1e-12,
                "order dependence at t={t}"
            );
        }
    }

    #[test]
    fn zero_value_and_empty_interval_ignored() {
        let mut agg = OnlineAggregator::new();
        agg.insert(1.0, 1.0, 5.0);
        agg.insert(1.0, 2.0, 0.0);
        assert!(agg.is_empty());
        assert_eq!(agg.peak(), 0.0);
    }

    #[test]
    fn randomized_equivalence_with_offline() {
        // Deterministic pseudo-random intervals; compare against the sweep.
        let mut h = 0xDEADBEEFu64;
        let mut next = || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            (h % 1000) as f64 / 100.0
        };
        let mut intervals = Vec::new();
        for _ in 0..200 {
            let a = next();
            let d = next() * 0.3 + 0.01;
            let v = next() + 0.1;
            intervals.push(Interval {
                ts: a,
                te: a + d,
                value: v,
            });
        }
        let mut agg = OnlineAggregator::new();
        for iv in &intervals {
            agg.insert(iv.ts, iv.te, iv.value);
        }
        let offline = sweep(&intervals);
        assert!(
            (agg.peak() - offline.max_value()).abs() < 1e-9,
            "online {} vs offline {}",
            agg.peak(),
            offline.max_value()
        );
        for i in 0..100 {
            let t = i as f64 * 0.1;
            assert!(
                (agg.value_at(t) - offline.value_at(SimTime::from_secs(t))).abs() < 1e-9,
                "mismatch at {t}"
            );
        }
    }
}

//! Application-level aggregation of rank metrics (paper Sec. IV-C, Eq. 3).
//!
//! Each rank-phase contributes an interval `[ts_{i,j}, te_{i,j})` carrying a
//! value (its required bandwidth `B_{i,j}`, its limit, or its throughput).
//! The application-level metric `B_r` in region `r` is the sum of the values
//! whose interval contains the region start — found with a sweep line over
//! the sorted start/end times, exactly as Fig. 4 illustrates.

use simcore::{Invariant, SimTime, StepSeries};

/// One rank-phase interval with its metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Start of the I/O window (first submit), seconds.
    pub ts: f64,
    /// End of the window (matching wait reached / queue drained), seconds.
    pub te: f64,
    /// The metric value held over `[ts, te)` (e.g. `B_{i,j}` in bytes/s).
    pub value: f64,
}

/// Sweep-line aggregation (Eq. 3): returns the step series of
/// `Σ value` over the overlap regions. Zero-length intervals are ignored
/// (they would contribute to a region of measure zero).
pub fn sweep(intervals: &[Interval]) -> StepSeries {
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        debug_assert!(iv.te >= iv.ts, "interval must not be reversed");
        if iv.te > iv.ts {
            events.push((iv.ts, iv.value));
            events.push((iv.te, -iv.value));
        }
    }
    // Sort by time; at equal times apply removals before additions so that a
    // region never double-counts an interval that ends exactly where another
    // starts (intervals are right-open).
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .invariant("NaN-free")
            .then(a.1.partial_cmp(&b.1).invariant("NaN-free"))
    });
    // Residue guard scale: cancellation residue is proportional to the
    // magnitudes that were summed, so the threshold must be *relative* to
    // the largest interval value. An absolute cutoff would silently zero
    // legitimate small-magnitude metrics (normalized or per-byte values
    // below the cutoff).
    let max_abs = intervals
        .iter()
        .map(|iv| iv.value.abs())
        .fold(0.0, f64::max);
    let residue = 1e-9 * max_abs;
    let mut series = StepSeries::new();
    let mut sum = 0.0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            sum += events[i].1;
            i += 1;
        }
        // Guard tiny FP residue at the end of the sweep.
        if sum.abs() <= residue {
            sum = 0.0;
        }
        series.push(SimTime::from_secs(t), sum);
    }
    series
}

/// The application-level scalar from a sweep: `max_r B_r` — "the minimal
/// required bandwidth at the application level such that … no time is spent
/// waiting" (Sec. IV-C).
pub fn max_region(intervals: &[Interval]) -> f64 {
    sweep(intervals).max_value()
}

/// Streaming form of [`sweep`]: a maintained sorted-edge structure that
/// accepts closed phases *as they arrive* and serves the aggregated series
/// from a cache invalidated on append.
///
/// [`IncrementalSweep::push`] is O(1): the interval's two edges land in an
/// unsorted pending buffer (the simulation hot path pushes once per closed
/// phase, so no per-event sorting or tail shifting happens there). A query
/// sorts only the edges pushed since the previous query and merges them into
/// the kept sorted `(time, delta)` list — O(p log p + n) for p pending
/// edges — so repeated mid-run queries stay incremental instead of
/// re-collecting everything. [`IncrementalSweep::series`] replays the exact
/// accumulation loop of [`sweep`] over the merged edges — same edge order,
/// same summation order, same relative residue guard — so its output is
/// bit-identical to `sweep` over the same intervals (property-tested in
/// this module and in `tests/`).
#[derive(Clone, Debug, Default)]
pub struct IncrementalSweep {
    /// Edge list sorted by `(time, delta)` — removals before additions at
    /// equal times, exactly like the oracle's sort.
    events: Vec<(f64, f64)>,
    /// Edges appended since the last merge, in push order.
    pending: Vec<(f64, f64)>,
    /// Resident merge output buffer, swapped with `events` at each merge.
    scratch: Vec<(f64, f64)>,
    /// Largest `|value|` ever pushed, including zero-length intervals (the
    /// oracle computes its residue scale over *all* intervals).
    max_abs: f64,
    /// Intervals accepted so far (zero-length ones included).
    n_intervals: usize,
    /// Cached aggregation; `None` after an append.
    cache: Option<StepSeries>,
}

impl IncrementalSweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sweep pre-sized for `intervals` pushes.
    pub fn with_capacity(intervals: usize) -> Self {
        IncrementalSweep {
            events: Vec::with_capacity(intervals * 2),
            ..Self::default()
        }
    }

    /// Number of intervals accepted so far.
    pub fn len(&self) -> usize {
        self.n_intervals
    }

    /// True when no interval has been pushed.
    pub fn is_empty(&self) -> bool {
        self.n_intervals == 0
    }

    /// Accepts one closed interval, invalidating the cached series.
    pub fn push(&mut self, iv: Interval) {
        assert!(
            !iv.ts.is_nan() && !iv.te.is_nan() && !iv.value.is_nan(),
            "interval must be NaN-free"
        );
        debug_assert!(iv.te >= iv.ts, "interval must not be reversed");
        self.n_intervals += 1;
        self.max_abs = self.max_abs.max(iv.value.abs());
        if iv.te > iv.ts {
            self.pending.push((iv.ts, iv.value));
            self.pending.push((iv.te, -iv.value));
        }
        self.cache = None;
    }

    /// Sorts the pending edges and merges them into the kept sorted list.
    ///
    /// An unstable sort is fine: only fully-equal `(t, delta)` tuples can be
    /// reordered by it, and identical tuples are interchangeable in the
    /// accumulation. Ties across the two lists keep the older edge first,
    /// matching what edge-by-edge sorted insertion would have produced.
    fn merge_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        out.reserve(self.events.len() + self.pending.len());
        let (mut i, mut j) = (0, 0);
        while i < self.events.len() && j < self.pending.len() {
            let a = self.events[i];
            let b = self.pending[j];
            if a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)).is_le() {
                out.push(a);
                i += 1;
            } else {
                out.push(b);
                j += 1;
            }
        }
        out.extend_from_slice(&self.events[i..]);
        out.extend_from_slice(&self.pending[j..]);
        self.pending.clear();
        self.scratch = std::mem::replace(&mut self.events, out);
    }

    /// The aggregated step series over everything pushed so far, rebuilt
    /// from the maintained edges only when an append invalidated the cache.
    pub fn series(&mut self) -> &StepSeries {
        if self.cache.is_none() {
            self.merge_pending();
            self.cache = Some(self.rebuild());
        }
        self.cache.as_ref().invariant("cache just rebuilt")
    }

    /// `max_r` of the aggregated series (see [`max_region`]).
    pub fn max_value(&mut self) -> f64 {
        self.series().max_value()
    }

    /// Finalizes into the aggregated series.
    pub fn into_series(mut self) -> StepSeries {
        match self.cache.take() {
            // A live cache implies no pending edges: every push clears it.
            Some(s) => s,
            None => {
                self.merge_pending();
                self.rebuild()
            }
        }
    }

    fn rebuild(&self) -> StepSeries {
        // The oracle's accumulation loop, verbatim, over the kept edges.
        let residue = 1e-9 * self.max_abs;
        let mut series = StepSeries::new();
        let mut sum = 0.0;
        let mut i = 0;
        while i < self.events.len() {
            let t = self.events[i].0;
            while i < self.events.len() && self.events[i].0 == t {
                sum += self.events[i].1;
                i += 1;
            }
            if sum.abs() <= residue {
                sum = 0.0;
            }
            series.push(SimTime::from_secs(t), sum);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// The Fig. 4 worked example: three ranks, five regions.
    ///
    /// Windows (chosen to match the figure's ordering):
    ///   B_{1,0}: [0, 4)  value 1
    ///   B_{2,0}: [1, 6)  value 2
    ///   B_{0,0}: [2, 8)  value 4
    /// Regions: [0,1) → 1; [1,2) → 3 (B1+B2); [2,4) → 7 (all);
    ///          [4,6) → 6 (B0+B2); [6,8) → 4 (B0); after 8 → 0.
    #[test]
    fn figure4_worked_example() {
        let intervals = [
            Interval {
                ts: 0.0,
                te: 4.0,
                value: 1.0,
            },
            Interval {
                ts: 1.0,
                te: 6.0,
                value: 2.0,
            },
            Interval {
                ts: 2.0,
                te: 8.0,
                value: 4.0,
            },
        ];
        let s = sweep(&intervals);
        assert_eq!(s.value_at(t(0.5)), 1.0);
        assert_eq!(s.value_at(t(1.5)), 3.0);
        assert_eq!(s.value_at(t(3.0)), 7.0);
        assert_eq!(s.value_at(t(5.0)), 6.0);
        assert_eq!(s.value_at(t(7.0)), 4.0);
        assert_eq!(s.value_at(t(9.0)), 0.0);
        // Five change points before the trailing zero, plus the close.
        assert_eq!(s.len(), 6);
        assert_eq!(max_region(&intervals), 7.0);
    }

    #[test]
    fn empty_input_is_zero() {
        let s = sweep(&[]);
        assert!(s.is_empty());
        assert_eq!(max_region(&[]), 0.0);
    }

    #[test]
    fn disjoint_intervals_do_not_sum() {
        let intervals = [
            Interval {
                ts: 0.0,
                te: 1.0,
                value: 5.0,
            },
            Interval {
                ts: 2.0,
                te: 3.0,
                value: 7.0,
            },
        ];
        let s = sweep(&intervals);
        assert_eq!(s.value_at(t(0.5)), 5.0);
        assert_eq!(s.value_at(t(1.5)), 0.0);
        assert_eq!(s.value_at(t(2.5)), 7.0);
        assert_eq!(max_region(&intervals), 7.0);
    }

    #[test]
    fn touching_intervals_do_not_overlap() {
        // Right-open: [0,2) and [2,4) never coexist.
        let intervals = [
            Interval {
                ts: 0.0,
                te: 2.0,
                value: 3.0,
            },
            Interval {
                ts: 2.0,
                te: 4.0,
                value: 4.0,
            },
        ];
        let s = sweep(&intervals);
        assert_eq!(s.value_at(t(2.0)), 4.0);
        assert_eq!(max_region(&intervals), 4.0);
    }

    #[test]
    fn identical_intervals_stack() {
        let intervals = [
            Interval {
                ts: 1.0,
                te: 2.0,
                value: 2.5,
            },
            Interval {
                ts: 1.0,
                te: 2.0,
                value: 2.5,
            },
        ];
        assert_eq!(max_region(&intervals), 5.0);
    }

    #[test]
    fn zero_length_interval_ignored() {
        let intervals = [Interval {
            ts: 1.0,
            te: 1.0,
            value: 100.0,
        }];
        let s = sweep(&intervals);
        assert_eq!(s.max_value(), 0.0);
    }

    #[test]
    fn tiny_magnitudes_survive_the_residue_guard() {
        // Values far below the old absolute 1e-9 cutoff (e.g. normalized or
        // per-byte metrics): the guard must scale with the input instead of
        // zeroing the whole sweep.
        let intervals = [
            Interval {
                ts: 0.0,
                te: 2.0,
                value: 1e-12,
            },
            Interval {
                ts: 1.0,
                te: 3.0,
                value: 3e-12,
            },
        ];
        let s = sweep(&intervals);
        assert_eq!(s.value_at(t(0.5)), 1e-12);
        assert_eq!(s.value_at(t(1.5)), 4e-12);
        assert_eq!(s.value_at(t(2.5)), 3e-12);
        assert_eq!(s.value_at(t(4.0)), 0.0);
        assert_eq!(max_region(&intervals), 4e-12);
    }

    #[test]
    fn residue_guard_scales_with_magnitude() {
        // Large stacked values cancel with FP residue well above 1e-9
        // absolute; the relative guard still snaps the tail to exactly zero.
        let mut intervals = Vec::new();
        for i in 0..10 {
            intervals.push(Interval {
                ts: i as f64 * 0.1,
                te: 10.0 + i as f64 * 0.7,
                value: 1e10 + (i as f64) * 0.3 + 0.1,
            });
        }
        let s = sweep(&intervals);
        assert_eq!(s.value_at(t(20.0)), 0.0, "tail must be exactly zero");
    }

    #[test]
    fn sweep_integral_equals_sum_of_areas() {
        let intervals = [
            Interval {
                ts: 0.0,
                te: 3.0,
                value: 2.0,
            },
            Interval {
                ts: 1.0,
                te: 2.0,
                value: 10.0,
            },
            Interval {
                ts: 2.5,
                te: 4.0,
                value: 4.0,
            },
        ];
        let s = sweep(&intervals);
        let expected: f64 = intervals.iter().map(|iv| (iv.te - iv.ts) * iv.value).sum();
        let got = s.integral(t(0.0), t(10.0));
        assert!((got - expected).abs() < 1e-9);
    }
}

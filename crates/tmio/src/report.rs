//! TMIO's output: the per-run report with rank records, application-level
//! aggregates (Eq. 3), the time decomposition behind Figs. 6/7/11, and JSON
//! serialization (the real tool's trace-file role).

use crate::regions::{sweep, Interval};
use crate::tracer::{AsyncSpan, ChannelKind, PhaseRecord, SyncInterval, ThroughputWindow};
use serde::{Deserialize, Serialize};
use simcore::{Invariant, StepSeries};
use std::sync::OnceLock;

/// Everything TMIO recorded about one run, plus modeled overheads.
///
/// `Serialize`/`Deserialize` are implemented by hand (below) so the cache
/// fields stay out of the JSON trace format.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of ranks traced.
    pub n_ranks: usize,
    /// Name of the limiting strategy used.
    pub strategy_name: String,
    /// All closed `B_{i,j}` phases.
    pub phases: Vec<PhaseRecord>,
    /// All closed `T_{i,j}` windows.
    pub windows: Vec<ThroughputWindow>,
    /// Per-request async lifetimes.
    pub spans: Vec<AsyncSpan>,
    /// Blocking I/O intervals.
    pub syncs: Vec<SyncInterval>,
    /// Per-rank end times, seconds.
    pub rank_end: Vec<f64>,
    /// Number of intercepted calls.
    pub calls: u64,
    /// Total peri-runtime overhead injected, seconds (across ranks).
    pub peri_overhead: f64,
    /// Modeled post-runtime overhead (finalize gather), seconds.
    pub post_overhead: f64,
    /// Fault events observed during the run (retries and terminal op
    /// errors); empty for fault-free runs.
    pub faults: Vec<FaultEventRecord>,
    /// Total retry backoff time across ranks, seconds (fault injection).
    pub retry_time: f64,
    /// Cached `B_r` sweep (Eq. 3); seeded from the tracer's streaming sweep
    /// or computed lazily on first query. Not serialized.
    pub(crate) required_cache: OnceLock<StepSeries>,
    /// Cached `B_L` sweep. Not serialized.
    pub(crate) limit_cache: OnceLock<StepSeries>,
    /// Cached `T` sweep. Not serialized.
    pub(crate) throughput_cache: OnceLock<StepSeries>,
    /// Cached time decomposition. Not serialized.
    pub(crate) decomposition_cache: OnceLock<Decomposition>,
}

/// The serialized field set, in trace-format order. The hand-written
/// impls below must mirror what `#[derive(Serialize, Deserialize)]`
/// produced before the cache fields existed, keeping the JSON trace
/// format byte-compatible.
macro_rules! report_fields {
    ($m:ident) => {
        $m!(
            n_ranks,
            strategy_name,
            phases,
            windows,
            spans,
            syncs,
            rank_end,
            calls,
            peri_overhead,
            post_overhead,
            faults,
            retry_time
        )
    };
}

impl Serialize for Report {
    fn serialize(&self) -> serde::Value {
        macro_rules! ser {
            ($($f:ident),+) => {
                serde::Value::Map(vec![
                    $((String::from(stringify!($f)), Serialize::serialize(&self.$f)),)+
                ])
            };
        }
        report_fields!(ser)
    }
}

impl Deserialize for Report {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        macro_rules! de {
            ($($f:ident),+) => {
                Report {
                    $($f: Deserialize::deserialize(serde::__field(v, stringify!($f))?)?,)+
                    required_cache: OnceLock::new(),
                    limit_cache: OnceLock::new(),
                    throughput_cache: OnceLock::new(),
                    decomposition_cache: OnceLock::new(),
                }
            };
        }
        Ok(report_fields!(de))
    }
}

/// One observed fault event: a sub-request retry or a terminal op error.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEventRecord {
    /// Virtual time of the event, seconds.
    pub t: f64,
    /// Affected rank.
    pub rank: usize,
    /// Request tag for async ops; `None` for blocking calls.
    pub tag: Option<u32>,
    /// Symbolic errno name (e.g. `"EIO"`).
    pub kind: String,
    /// Numeric errno.
    pub code: i32,
    /// Retry number (1-based) for retries; total attempts for terminal
    /// errors.
    pub retry: u32,
    /// Backoff slept before the retry, seconds (0 for terminal errors).
    pub backoff: f64,
    /// True when the op failed terminally (retries exhausted / cancelled).
    pub terminal: bool,
}

/// Aggregate split of the application time (the stacked bars of
/// Figs. 6/7/11). All values are rank-seconds summed over ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Blocking writes.
    pub sync_write: f64,
    /// Blocking reads.
    pub sync_read: f64,
    /// Async writes' time blocked in the matching wait.
    pub async_write_lost: f64,
    /// Async reads' time blocked in the matching wait.
    pub async_read_lost: f64,
    /// Async writes hidden behind other work.
    pub async_write_exploit: f64,
    /// Async reads hidden behind other work.
    pub async_read_exploit: f64,
    /// Remaining time: compute/communication with no I/O in flight.
    pub compute_io_free: f64,
    /// Retry backoff sleeps of the I/O threads (fault injection); zero in
    /// fault-free runs.
    pub retry_degraded: f64,
    /// Total rank-seconds (Σ rank end times).
    pub total: f64,
}

impl Decomposition {
    /// The stacked-bar percentages in the paper's order:
    /// `[sync write, sync read, async write lost, async read lost,
    ///   async write exploit, async read exploit, compute (I/O free)]`.
    pub fn percentages(&self) -> [f64; 7] {
        let t = self.total.max(1e-12);
        [
            100.0 * self.sync_write / t,
            100.0 * self.sync_read / t,
            100.0 * self.async_write_lost / t,
            100.0 * self.async_read_lost / t,
            100.0 * self.async_write_exploit / t,
            100.0 * self.async_read_exploit / t,
            100.0 * self.compute_io_free / t,
        ]
    }

    /// The stacked percentages with the retry/degraded slice appended (for
    /// fault-injected runs). The first seven entries match
    /// [`Decomposition::percentages`] when no faults fired.
    pub fn percentages_with_faults(&self) -> [f64; 8] {
        let p = self.percentages();
        let t = self.total.max(1e-12);
        [
            p[0],
            p[1],
            p[2],
            p[3],
            p[4],
            p[5],
            p[6],
            100.0 * self.retry_degraded / t,
        ]
    }

    /// "Visible I/O" (Fig. 6): blocking I/O plus async time lost in waits.
    pub fn visible_io(&self) -> f64 {
        self.sync_write + self.sync_read + self.async_write_lost + self.async_read_lost
    }

    /// Total exploitation ("async exploit") time.
    pub fn exploit(&self) -> f64 {
        self.async_write_exploit + self.async_read_exploit
    }
}

impl Report {
    /// Seeds the series caches from the tracer's streaming sweeps so the
    /// first post-run query is free. The incremental sweep is bit-identical
    /// to the from-scratch oracle (property-tested in `regions`), so seeded
    /// and lazily computed series agree exactly.
    pub(crate) fn seed_series_caches(
        &self,
        required: StepSeries,
        limit: StepSeries,
        throughput: StepSeries,
    ) {
        let _ = self.required_cache.set(required);
        let _ = self.limit_cache.set(limit);
        let _ = self.throughput_cache.set(throughput);
    }

    /// Application-level required-bandwidth series `B_r` (Eq. 3, Fig. 4):
    /// the sweep over every rank-phase `[ts, te)` carrying `B_{i,j}`.
    /// Computed once and cached (or pre-seeded by the tracer).
    pub fn required_series(&self) -> &StepSeries {
        self.required_cache.get_or_init(|| {
            let iv: Vec<Interval> = self
                .phases
                .iter()
                .map(|p| Interval {
                    ts: p.ts,
                    te: p.te,
                    value: p.b_required,
                })
                .collect();
            sweep(&iv)
        })
    }

    /// Application-level limit series `B_L`: the sweep carrying each phase's
    /// in-effect limit (phases without a limit contribute nothing).
    /// Computed once and cached (or pre-seeded by the tracer).
    pub fn limit_series(&self) -> &StepSeries {
        self.limit_cache.get_or_init(|| {
            let iv: Vec<Interval> = self
                .phases
                .iter()
                .filter_map(|p| {
                    p.limit_during.map(|l| Interval {
                        ts: p.ts,
                        te: p.te,
                        value: l,
                    })
                })
                .collect();
            sweep(&iv)
        })
    }

    /// Application-level throughput series `T`: the sweep over throughput
    /// windows carrying `T_{i,j}`. Computed once and cached (or pre-seeded
    /// by the tracer).
    pub fn throughput_series(&self) -> &StepSeries {
        self.throughput_cache.get_or_init(|| {
            let iv: Vec<Interval> = self
                .windows
                .iter()
                .map(|w| Interval {
                    ts: w.start,
                    te: w.end,
                    value: w.throughput(),
                })
                .collect();
            sweep(&iv)
        })
    }

    /// `max_r B_r` — the minimal application-level bandwidth such that no
    /// rank ever waits (Sec. IV-C).
    pub fn required_bandwidth(&self) -> f64 {
        self.required_series().max_value()
    }

    /// Time when the limiter first took effect (first phase with a limit in
    /// effect), for the figures' vertical "limit starts" marker.
    pub fn limit_start_time(&self) -> Option<f64> {
        self.phases
            .iter()
            .filter(|p| p.limit_during.is_some())
            .map(|p| p.ts)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// The application makespan (max rank end), seconds.
    pub fn makespan(&self) -> f64 {
        self.rank_end.iter().copied().fold(0.0, f64::max)
    }

    /// The stacked time decomposition (Figs. 6/7/11). Computed once and
    /// cached.
    pub fn decomposition(&self) -> Decomposition {
        *self
            .decomposition_cache
            .get_or_init(|| self.compute_decomposition())
    }

    fn compute_decomposition(&self) -> Decomposition {
        let mut d = Decomposition::default();
        for s in &self.syncs {
            let dur = (s.end - s.begin).max(0.0);
            match s.channel {
                ChannelKind::Write => d.sync_write += dur,
                ChannelKind::Read => d.sync_read += dur,
            }
        }
        for sp in &self.spans {
            match sp.channel {
                ChannelKind::Write => {
                    d.async_write_lost += sp.lost();
                    d.async_write_exploit += sp.exploit();
                }
                ChannelKind::Read => {
                    d.async_read_lost += sp.lost();
                    d.async_read_exploit += sp.exploit();
                }
            }
        }
        d.retry_degraded = self.retry_time;
        d.total = self.rank_end.iter().sum();
        d.compute_io_free = (d.total
            - d.sync_write
            - d.sync_read
            - d.async_write_lost
            - d.async_read_lost
            - d.async_write_exploit
            - d.async_read_exploit
            - d.retry_degraded)
            .max(0.0);
        d
    }

    /// Fig. 5/6 accounting: `(app, peri, post, total)` seconds where
    /// `total = app + post` and `peri` is already inside `app`.
    pub fn overhead_split(&self) -> (f64, f64, f64, f64) {
        let app = self.makespan();
        (
            app,
            self.peri_overhead,
            self.post_overhead,
            app + self.post_overhead,
        )
    }

    /// Serializes to the JSON trace format (the file the real TMIO writes at
    /// `MPI_Finalize` for the plotting scripts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).invariant("report serializes")
    }

    /// Parses a JSON trace produced by [`Report::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{AsyncSpan, ChannelKind, PhaseRecord, SyncInterval, ThroughputWindow};

    fn sample_report() -> Report {
        Report {
            n_ranks: 2,
            strategy_name: "direct".into(),
            phases: vec![
                PhaseRecord {
                    rank: 0,
                    phase: 0,
                    ts: 0.0,
                    te: 2.0,
                    bytes: 200.0,
                    b_required: 100.0,
                    limit_during: None,
                    limit_next: Some(110.0),
                    n_requests: 1,
                },
                PhaseRecord {
                    rank: 1,
                    phase: 0,
                    ts: 1.0,
                    te: 3.0,
                    bytes: 100.0,
                    b_required: 50.0,
                    limit_during: Some(60.0),
                    limit_next: Some(55.0),
                    n_requests: 1,
                },
            ],
            windows: vec![ThroughputWindow {
                rank: 0,
                start: 0.0,
                end: 1.0,
                bytes: 200.0,
            }],
            spans: vec![AsyncSpan {
                rank: 0,
                submit: 0.0,
                complete: 1.0,
                wait_enter: 2.0,
                bytes: 200.0,
                channel: ChannelKind::Write,
            }],
            syncs: vec![SyncInterval {
                rank: 1,
                begin: 3.0,
                end: 3.5,
                bytes: 10.0,
                channel: ChannelKind::Read,
            }],
            rank_end: vec![4.0, 4.0],
            calls: 6,
            peri_overhead: 12e-6,
            post_overhead: 0.05,
            faults: Vec::new(),
            retry_time: 0.0,
            required_cache: OnceLock::new(),
            limit_cache: OnceLock::new(),
            throughput_cache: OnceLock::new(),
            decomposition_cache: OnceLock::new(),
        }
    }

    #[test]
    fn required_series_sums_overlaps() {
        let r = sample_report();
        let s = r.required_series();
        assert_eq!(s.value_at(simcore::SimTime::from_secs(0.5)), 100.0);
        assert_eq!(s.value_at(simcore::SimTime::from_secs(1.5)), 150.0);
        assert_eq!(s.value_at(simcore::SimTime::from_secs(2.5)), 50.0);
        assert_eq!(r.required_bandwidth(), 150.0);
    }

    #[test]
    fn limit_series_only_limited_phases() {
        let r = sample_report();
        let s = r.limit_series();
        assert_eq!(s.value_at(simcore::SimTime::from_secs(0.5)), 0.0);
        assert_eq!(s.value_at(simcore::SimTime::from_secs(1.5)), 60.0);
    }

    #[test]
    fn throughput_series_from_windows() {
        let r = sample_report();
        let s = r.throughput_series();
        assert_eq!(s.value_at(simcore::SimTime::from_secs(0.5)), 200.0);
        assert_eq!(s.value_at(simcore::SimTime::from_secs(1.5)), 0.0);
    }

    #[test]
    fn decomposition_categories() {
        let r = sample_report();
        let d = r.decomposition();
        // Span: exploit = min(1,2)-0 = 1; lost = max(0, 1-2) = 0.
        assert_eq!(d.async_write_exploit, 1.0);
        assert_eq!(d.async_write_lost, 0.0);
        assert_eq!(d.sync_read, 0.5);
        assert_eq!(d.total, 8.0);
        assert_eq!(d.compute_io_free, 8.0 - 1.0 - 0.5);
        let p = d.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn retry_time_becomes_its_own_slice() {
        let mut r = sample_report();
        r.retry_time = 0.5;
        let d = r.decomposition();
        assert_eq!(d.retry_degraded, 0.5);
        // Backoff sleeps come out of the I/O-free remainder.
        assert_eq!(d.compute_io_free, 8.0 - 1.0 - 0.5 - 0.5);
        let p7 = d.percentages();
        let p8 = d.percentages_with_faults();
        assert_eq!(&p8[..7], &p7[..], "seven-way split must not change");
        assert!((p8.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fault_records_roundtrip_json() {
        let mut r = sample_report();
        r.faults.push(FaultEventRecord {
            t: 1.25,
            rank: 1,
            tag: Some(3),
            kind: "EIO".into(),
            code: 5,
            retry: 2,
            backoff: 2e-3,
            terminal: false,
        });
        r.retry_time = 2e-3;
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.retry_time, r.retry_time);
    }

    #[test]
    fn lost_span_counts() {
        let sp = AsyncSpan {
            rank: 0,
            submit: 0.0,
            complete: 3.0,
            wait_enter: 1.0,
            bytes: 1.0,
            channel: ChannelKind::Read,
        };
        assert_eq!(sp.exploit(), 1.0);
        assert_eq!(sp.lost(), 2.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample_report();
        let json = r.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back.n_ranks, 2);
        assert_eq!(back.phases.len(), 2);
        assert_eq!(back.required_bandwidth(), r.required_bandwidth());
    }

    #[test]
    fn limit_start_time_is_earliest_limited_phase() {
        let r = sample_report();
        assert_eq!(r.limit_start_time(), Some(1.0));
    }

    #[test]
    fn overhead_split_adds_post() {
        let r = sample_report();
        let (app, peri, post, total) = r.overhead_split();
        assert_eq!(app, 4.0);
        assert!(peri > 0.0);
        assert_eq!(total, app + post);
    }
}

//! Bandwidth-limit strategies (paper Sec. IV-B).
//!
//! After rank *i* closes I/O phase *j* with required bandwidth `B_{i,j}`,
//! the strategy chooses the throughput limit applied to phase *j+1*:
//!
//! * **direct** — `B_{i,j} · tol`: aggressive, highest exploitation, risks
//!   waiting when the next phase shrinks;
//! * **up-only** — monotone non-decreasing `B_{i,j} · tol`: safe, but
//!   over-provisions after large phases;
//! * **adaptive** — `B_{i,j}·tol + (B_{i,j} − B_{i,j−1})·tol_i`: a
//!   PI-controller-like compromise;
//! * **mfu** — (paper future work, Sec. VI-B) limit from a
//!   most-frequently-used table of past required bandwidths.

use serde::{Deserialize, Serialize};

/// The limit-selection strategy, including the tolerance factor(s) that
/// compensate for effects invisible at the MPI level (thread competition,
/// Sec. IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// No limiting: trace only (runs "without bandwidth limitation").
    None,
    /// `limit ← B · tol`.
    Direct {
        /// Tolerance factor (paper uses 1.1 or 2).
        tol: f64,
    },
    /// `limit ← max(limit, B · tol)`.
    UpOnly {
        /// Tolerance factor.
        tol: f64,
    },
    /// `limit ← B · tol + (B − B_prev) · tol_i` (PI-like; paper's third
    /// strategy "inspired by control theory").
    Adaptive {
        /// Proportional tolerance.
        tol: f64,
        /// Differential tolerance on the phase-to-phase change.
        tol_i: f64,
    },
    /// Most-frequently-used table (paper future work): the limit is the
    /// upper edge of the most frequently observed `B` bin, scaled by `tol`.
    Mfu {
        /// Tolerance factor applied to the MFU bin edge.
        tol: f64,
        /// Number of logarithmic bins in the table.
        bins: usize,
    },
}

impl Strategy {
    /// True when this strategy applies a limit at all.
    pub fn limits(&self) -> bool {
        !matches!(self, Strategy::None)
    }

    /// Short name used in reports and figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::None => "none",
            Strategy::Direct { .. } => "direct",
            Strategy::UpOnly { .. } => "up-only",
            Strategy::Adaptive { .. } => "adaptive",
            Strategy::Mfu { .. } => "mfu",
        }
    }
}

/// Per-rank strategy state (previous B, previous limit, MFU table).
#[derive(Clone, Debug, Default)]
pub struct StrategyState {
    prev_b: Option<f64>,
    prev_limit: Option<f64>,
    mfu_counts: Vec<u32>,
}

/// Lowest limit a strategy will ever emit, bytes/s. Guards against a
/// degenerate phase (B ≈ 0) freezing the next phase's I/O entirely.
pub const LIMIT_FLOOR: f64 = 1024.0;

impl StrategyState {
    /// Computes the limit for the next phase after observing required
    /// bandwidth `b`, updating internal state. Returns `None` for
    /// [`Strategy::None`].
    pub fn next_limit(&mut self, strategy: Strategy, b: f64) -> Option<f64> {
        let b = b.max(0.0);
        let limit = match strategy {
            Strategy::None => None,
            Strategy::Direct { tol } => Some(b * tol),
            Strategy::UpOnly { tol } => {
                let candidate = b * tol;
                Some(match self.prev_limit {
                    Some(prev) => prev.max(candidate),
                    None => candidate,
                })
            }
            Strategy::Adaptive { tol, tol_i } => {
                let diff = match self.prev_b {
                    Some(prev) => b - prev,
                    None => 0.0,
                };
                // Anti-windup: when B alternates between phase types (e.g.
                // HACC-IO's write vs read windows) the raw differential term
                // can drive the limit below the measured requirement — then
                // I/O time exceeds the window, waits appear, windows of
                // *other* ranks inflate through collectives, and the
                // feedback diverges. A PI controller must not undershoot its
                // setpoint: clamp to at least B itself.
                Some((b * tol + diff * tol_i).max(b))
            }
            Strategy::Mfu { tol, bins } => {
                if self.mfu_counts.len() != bins {
                    self.mfu_counts = vec![0; bins];
                }
                let bin = mfu_bin(b, bins);
                self.mfu_counts[bin] += 1;
                let best = self
                    .mfu_counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, c)| (**c, *i))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Some(mfu_bin_upper(best) * tol)
            }
        };
        self.prev_b = Some(b);
        let limit = limit.map(|l| l.max(LIMIT_FLOOR));
        if limit.is_some() {
            self.prev_limit = limit;
        }
        limit
    }

    /// The most recent limit emitted, if any.
    pub fn current_limit(&self) -> Option<f64> {
        self.prev_limit
    }

    /// The most recent required bandwidth observed, if any.
    pub fn prev_b(&self) -> Option<f64> {
        self.prev_b
    }
}

/// Logarithmic binning for the MFU table: bin k covers
/// `[2^(k+9), 2^(k+10))` bytes/s, clamped to the table.
fn mfu_bin(b: f64, bins: usize) -> usize {
    if b < 1024.0 {
        return 0;
    }
    let k = (b / 1024.0).log2().floor() as usize;
    k.min(bins - 1)
}

fn mfu_bin_upper(bin: usize) -> f64 {
    1024.0 * 2f64.powi(bin as i32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_scales_by_tol() {
        let mut s = StrategyState::default();
        assert_eq!(
            s.next_limit(Strategy::Direct { tol: 2.0 }, 100e6),
            Some(200e6)
        );
        assert_eq!(
            s.next_limit(Strategy::Direct { tol: 2.0 }, 50e6),
            Some(100e6)
        );
    }

    #[test]
    fn up_only_never_decreases() {
        let st = Strategy::UpOnly { tol: 1.1 };
        let mut s = StrategyState::default();
        let l1 = s.next_limit(st, 100e6).unwrap();
        let l2 = s.next_limit(st, 10e6).unwrap();
        let l3 = s.next_limit(st, 200e6).unwrap();
        assert!((l1 - 110e6).abs() < 1.0);
        assert_eq!(l2, l1, "smaller B must not lower the limit");
        assert!((l3 - 220e6).abs() < 1.0);
    }

    #[test]
    fn adaptive_tracks_changes() {
        let st = Strategy::Adaptive {
            tol: 1.1,
            tol_i: 0.5,
        };
        let mut s = StrategyState::default();
        let l1 = s.next_limit(st, 100.0e6).unwrap();
        assert!((l1 - 110.0e6).abs() < 1.0, "first phase has no diff term");
        let l2 = s.next_limit(st, 120.0e6).unwrap();
        // 120·1.1 + 20·0.5 = 132 + 10 = 142 MB/s.
        assert!((l2 - 142.0e6).abs() < 1.0, "{l2}");
        let l3 = s.next_limit(st, 80.0e6).unwrap();
        // 80·1.1 + (−40)·0.5 = 68 MB/s < B: anti-windup clamps to B = 80.
        assert!((l3 - 80.0e6).abs() < 1.0, "{l3}");
    }

    #[test]
    fn adaptive_anti_windup_clamps_undershoot() {
        let st = Strategy::Adaptive {
            tol: 1.1,
            tol_i: 0.5,
        };
        let mut s = StrategyState::default();
        s.next_limit(st, 12.7e6); // read-window B
                                  // Write-window B much lower: raw formula would go negative
                                  // (3.8·1.1 + (3.8−12.7)·0.5 = −0.27 MB/s) — must clamp to B.
        let l = s.next_limit(st, 3.8e6).unwrap();
        assert!((l - 3.8e6).abs() < 1.0, "clamped limit {l}");
        assert!(l > LIMIT_FLOOR);
    }

    #[test]
    fn none_strategy_never_limits() {
        let mut s = StrategyState::default();
        assert_eq!(s.next_limit(Strategy::None, 1e9), None);
        assert_eq!(s.current_limit(), None);
    }

    #[test]
    fn floor_prevents_zero_limits() {
        let mut s = StrategyState::default();
        let l = s.next_limit(Strategy::Direct { tol: 1.1 }, 0.0).unwrap();
        assert_eq!(l, LIMIT_FLOOR);
    }

    #[test]
    fn mfu_converges_to_common_bin() {
        let st = Strategy::Mfu { tol: 1.0, bins: 32 };
        let mut s = StrategyState::default();
        // Mostly ~1 MB/s with one outlier at 1 GB/s.
        for _ in 0..10 {
            s.next_limit(st, 1.0e6);
        }
        s.next_limit(st, 1.0e9);
        let l = s.next_limit(st, 1.0e6).unwrap();
        // 1 MB/s falls in bin ⌊log2(1e6/1024)⌋ = 9 -> upper edge 2^10·1024 ≈ 1.05e6.
        assert!(l < 3e6, "MFU should stay near the common value, got {l}");
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::None.name(), "none");
        assert_eq!(Strategy::Direct { tol: 1.0 }.name(), "direct");
        assert_eq!(Strategy::UpOnly { tol: 1.0 }.name(), "up-only");
        assert_eq!(
            Strategy::Adaptive {
                tol: 1.0,
                tol_i: 0.0
            }
            .name(),
            "adaptive"
        );
        assert_eq!(Strategy::Mfu { tol: 1.0, bins: 8 }.name(), "mfu");
    }

    #[test]
    fn adaptive_equals_direct_when_tol_i_zero() {
        let mut a = StrategyState::default();
        let mut d = StrategyState::default();
        for b in [10e6, 50e6, 30e6, 90e6] {
            let la = a.next_limit(
                Strategy::Adaptive {
                    tol: 1.3,
                    tol_i: 0.0,
                },
                b,
            );
            let ld = d.next_limit(Strategy::Direct { tol: 1.3 }, b);
            assert_eq!(la, ld);
        }
    }
}

//! Raw event tracing: the chronological record behind Fig. 3.
//!
//! [`TraceLog`] wraps any [`IoHooks`] observer and additionally records
//! every intercepted event with its timestamp — the machine-readable
//! version of the paper's rank-timeline figure, and the debugging view a
//! TMIO user gets when tracing misbehaving I/O. Serializes to JSON lines.

use mpisim::{Channel, IoHooks, Limits, ReqTag};
use serde::{Deserialize, Serialize};
use simcore::{Invariant, SimTime};

/// One intercepted event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Non-blocking submit (`MPI_File_iwrite_at`/`iread_at`).
    AsyncSubmit {
        /// Rank.
        rank: usize,
        /// Request tag.
        tag: u32,
        /// Payload bytes.
        bytes: f64,
        /// Write or read.
        write: bool,
    },
    /// The I/O thread finished a request.
    Complete {
        /// Rank.
        rank: usize,
        /// Request tag.
        tag: u32,
    },
    /// Rank entered the matching wait.
    WaitEnter {
        /// Rank.
        rank: usize,
        /// Request tag.
        tag: u32,
        /// Whether the request had already completed.
        already_done: bool,
    },
    /// Rank left the matching wait.
    WaitExit {
        /// Rank.
        rank: usize,
        /// Request tag.
        tag: u32,
    },
    /// Blocking call entered.
    SyncBegin {
        /// Rank.
        rank: usize,
        /// Bytes.
        bytes: f64,
        /// Write or read.
        write: bool,
    },
    /// Blocking call returned.
    SyncEnd {
        /// Rank.
        rank: usize,
    },
    /// `MPI_Test` probe.
    Test {
        /// Rank.
        rank: usize,
        /// Request tag.
        tag: u32,
        /// Completion status observed.
        done: bool,
    },
    /// Rank finished its program.
    RankDone {
        /// Rank.
        rank: usize,
    },
}

/// A timestamped trace entry.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual time of the event, seconds.
    pub t: f64,
    /// The event.
    pub event: TraceEvent,
}

/// Hook adapter that records every event and forwards to an inner observer
/// (typically [`crate::Tracer`]).
pub struct TraceLog<H: IoHooks> {
    inner: H,
    entries: Vec<TraceEntry>,
}

impl<H: IoHooks> TraceLog<H> {
    /// Wraps `inner`, recording all events that pass through.
    pub fn new(inner: H) -> Self {
        TraceLog {
            inner,
            entries: Vec::new(),
        }
    }

    /// The recorded entries in chronological order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Consumes the log, returning the inner observer and the entries.
    pub fn into_parts(self) -> (H, Vec<TraceEntry>) {
        (self.inner, self.entries)
    }

    /// Serializes the trace as JSON lines (one entry per line).
    pub fn to_jsonl(&self) -> String {
        self.entries
            .iter()
            .map(|e| serde_json::to_string(e).invariant("entry serializes"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a JSON-lines trace back into entries.
    pub fn parse_jsonl(s: &str) -> Result<Vec<TraceEntry>, serde_json::Error> {
        s.lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect()
    }

    fn push(&mut self, t: SimTime, event: TraceEvent) {
        self.entries.push(TraceEntry {
            t: t.as_secs(),
            event,
        });
    }
}

impl<H: IoHooks> IoHooks for TraceLog<H> {
    fn on_async_submit(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        bytes: f64,
        channel: Channel,
        limits: &mut Limits,
    ) -> f64 {
        self.push(
            t,
            TraceEvent::AsyncSubmit {
                rank,
                tag: tag.0,
                bytes,
                write: channel == Channel::Write,
            },
        );
        self.inner
            .on_async_submit(t, rank, tag, bytes, channel, limits)
    }

    fn on_request_complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        self.push(t, TraceEvent::Complete { rank, tag: tag.0 });
        self.inner.on_request_complete(t, rank, tag);
    }

    fn on_wait_enter(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        already_done: bool,
        limits: &mut Limits,
    ) -> f64 {
        self.push(
            t,
            TraceEvent::WaitEnter {
                rank,
                tag: tag.0,
                already_done,
            },
        );
        self.inner.on_wait_enter(t, rank, tag, already_done, limits)
    }

    fn on_wait_exit(&mut self, t: SimTime, rank: usize, tag: ReqTag, limits: &mut Limits) -> f64 {
        self.push(t, TraceEvent::WaitExit { rank, tag: tag.0 });
        self.inner.on_wait_exit(t, rank, tag, limits)
    }

    fn on_sync_begin(
        &mut self,
        t: SimTime,
        rank: usize,
        bytes: f64,
        channel: Channel,
        limits: &mut Limits,
    ) -> f64 {
        self.push(
            t,
            TraceEvent::SyncBegin {
                rank,
                bytes,
                write: channel == Channel::Write,
            },
        );
        self.inner.on_sync_begin(t, rank, bytes, channel, limits)
    }

    fn on_sync_end(
        &mut self,
        t: SimTime,
        rank: usize,
        bytes: f64,
        channel: Channel,
        limits: &mut Limits,
    ) -> f64 {
        self.push(t, TraceEvent::SyncEnd { rank });
        self.inner.on_sync_end(t, rank, bytes, channel, limits)
    }

    fn on_test(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        done: bool,
        limits: &mut Limits,
    ) -> f64 {
        self.push(
            t,
            TraceEvent::Test {
                rank,
                tag: tag.0,
                done,
            },
        );
        self.inner.on_test(t, rank, tag, done, limits)
    }

    fn on_rank_done(&mut self, t: SimTime, rank: usize) {
        self.push(t, TraceEvent::RankDone { rank });
        self.inner.on_rank_done(t, rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, TracerConfig};
    use mpisim::{FileId, Op, Program, World, WorldConfig};

    fn run_traced() -> TraceLog<Tracer> {
        let ops = vec![
            Op::IWrite {
                file: FileId(0),
                bytes: 1e6,
                tag: ReqTag(0),
            },
            Op::Compute { seconds: 0.1 },
            Op::Test { tag: ReqTag(0) },
            Op::Wait { tag: ReqTag(0) },
            Op::Write {
                file: FileId(0),
                bytes: 1e6,
            },
        ];
        let log = TraceLog::new(Tracer::new(1, TracerConfig::trace_only()));
        let mut w = World::new(WorldConfig::new(1), vec![Program::from_ops(ops)], log);
        w.create_file("f");
        w.run();
        std::mem::replace(
            w.hooks_mut(),
            TraceLog::new(Tracer::new(0, TracerConfig::trace_only())),
        )
    }

    #[test]
    fn records_all_event_kinds_in_order() {
        let log = run_traced();
        let kinds: Vec<&'static str> = log
            .entries()
            .iter()
            .map(|e| match e.event {
                TraceEvent::AsyncSubmit { .. } => "submit",
                TraceEvent::Complete { .. } => "complete",
                TraceEvent::WaitEnter { .. } => "wenter",
                TraceEvent::WaitExit { .. } => "wexit",
                TraceEvent::SyncBegin { .. } => "sbegin",
                TraceEvent::SyncEnd { .. } => "send",
                TraceEvent::Test { .. } => "test",
                TraceEvent::RankDone { .. } => "done",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["submit", "complete", "test", "wenter", "wexit", "sbegin", "send", "done"]
        );
        // Timestamps never decrease.
        for pair in log.entries().windows(2) {
            assert!(pair[1].t >= pair[0].t);
        }
    }

    #[test]
    fn inner_tracer_still_works() {
        let log = run_traced();
        let (tracer, entries) = log.into_parts();
        let report = tracer.into_report();
        assert_eq!(report.phases.len(), 1);
        assert!(!entries.is_empty());
    }

    #[test]
    fn jsonl_roundtrip() {
        let log = run_traced();
        let text = log.to_jsonl();
        let parsed = TraceLog::<Tracer>::parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.len(), log.entries().len());
        assert_eq!(parsed[0], log.entries()[0]);
    }

    #[test]
    fn test_event_records_status() {
        let log = run_traced();
        let test_events: Vec<_> = log
            .entries()
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Test { done, .. } => Some(done),
                _ => None,
            })
            .collect();
        assert_eq!(
            test_events,
            vec![true],
            "I/O done before the 0.1 s window ends"
        );
    }
}

//! The TMIO tracer: PMPI-style interception of asynchronous MPI-IO.
//!
//! Implements [`mpisim::IoHooks`]. For every rank it maintains the paper's
//! two monitoring queues (Sec. IV-A):
//!
//! * the **bandwidth queue** collects requests of the current I/O phase;
//!   the phase closes when its *first* request reaches the matching wait
//!   (`te_{i,j}`), yielding the required bandwidth `B_{i,j}` =
//!   Σ_k b_k/(te − ts_k) (sum — the paper's choice — or mean);
//! * the **throughput queue** measures `T_{i,j}`: it opens when the first
//!   request is submitted and closes when the last completes and the queue
//!   empties.
//!
//! At each phase closure the configured [`Strategy`] turns `B_{i,j}` into the
//! throughput limit for phase *j+1* and pushes it into the runtime through
//! [`mpisim::Limits`] — the boundary to the "modified MPICH".

use crate::strategy::{Strategy, StrategyState};
use mpisim::{Channel, IoHooks, Limits, ReqTag};
use serde::{Deserialize, Serialize};
use simcore::{Invariant, SimTime};
use std::collections::HashMap;

/// How per-request bandwidths combine into the rank metric `B_{i,j}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Sum of per-request bandwidths ("results in higher values", the
    /// paper's choice).
    Sum,
    /// Mean of per-request bandwidths (the TMIO alternative).
    Mean,
}

/// When the required-bandwidth window ends (Sec. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TeMode {
    /// `te` = when the *first* queued request reaches its matching wait
    /// (higher B; the paper's choice).
    FirstWait,
    /// `te` = when the *last* queued request reaches its matching wait
    /// (the TMIO option the paper mentions but does not use).
    LastWait,
}

/// Model of TMIO's post-runtime overhead (the `MPI_Finalize` gather that
/// collects per-rank records; grows with rank count — Fig. 6).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PostOverheadModel {
    /// Fixed cost (file creation, serialization), seconds.
    pub base: f64,
    /// Per-tree-level latency of the gather, seconds.
    pub latency: f64,
    /// Per-rank cost of collecting one rank's records, seconds.
    pub per_rank: f64,
}

impl Default for PostOverheadModel {
    fn default() -> Self {
        PostOverheadModel {
            base: 0.02,
            latency: 1e-4,
            per_rank: 250e-6,
        }
    }
}

impl PostOverheadModel {
    /// Post-runtime overhead for a run with `n` ranks, seconds.
    pub fn overhead(&self, n: usize) -> f64 {
        let levels = (n as f64).log2().ceil().max(1.0);
        self.base + self.latency * levels + self.per_rank * n as f64
    }
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TracerConfig {
    /// Limit strategy fed back into the runtime.
    pub strategy: Strategy,
    /// Peri-runtime overhead injected per intercepted call, seconds.
    pub peri_call_overhead: f64,
    /// Per-request aggregation into `B_{i,j}`.
    pub aggregation: Aggregation,
    /// Window-end semantics.
    pub te_mode: TeMode,
    /// Post-runtime overhead model.
    pub post_model: PostOverheadModel,
}

impl TracerConfig {
    /// Trace-only configuration (no limiting), paper-default options.
    pub fn trace_only() -> Self {
        TracerConfig {
            strategy: Strategy::None,
            peri_call_overhead: 2e-6,
            aggregation: Aggregation::Sum,
            te_mode: TeMode::FirstWait,
            post_model: PostOverheadModel::default(),
        }
    }

    /// Paper-default configuration with the given strategy.
    pub fn with_strategy(strategy: Strategy) -> Self {
        TracerConfig {
            strategy,
            ..Self::trace_only()
        }
    }
}

/// One closed I/O phase of one rank: the `B_{i,j}` record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Rank index i.
    pub rank: usize,
    /// Phase index j.
    pub phase: usize,
    /// Window start: submit time of the first request, seconds.
    pub ts: f64,
    /// Window end per the configured [`TeMode`], seconds.
    pub te: f64,
    /// Total bytes of the phase's requests.
    pub bytes: f64,
    /// Required bandwidth `B_{i,j}`, bytes/s.
    pub b_required: f64,
    /// Limit in effect *while* this phase ran (set after phase j−1).
    pub limit_during: Option<f64>,
    /// Limit emitted for the next phase (None for [`Strategy::None`]).
    pub limit_next: Option<f64>,
    /// Number of requests aggregated into this phase.
    pub n_requests: usize,
}

/// One closed throughput window: the `T_{i,j}` record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThroughputWindow {
    /// Rank index.
    pub rank: usize,
    /// First submit time, seconds.
    pub start: f64,
    /// Last completion time (queue drained), seconds.
    pub end: f64,
    /// Bytes moved inside the window.
    pub bytes: f64,
}

impl ThroughputWindow {
    /// The throughput value `T` of this window, bytes/s.
    pub fn throughput(&self) -> f64 {
        let dt = (self.end - self.start).max(1e-12);
        self.bytes / dt
    }
}

/// Lifetime of one asynchronous request, for exploit/lost accounting.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AsyncSpan {
    /// Rank index.
    pub rank: usize,
    /// Submit time, seconds.
    pub submit: f64,
    /// I/O-thread completion time, seconds.
    pub complete: f64,
    /// When the matching wait was entered, seconds.
    pub wait_enter: f64,
    /// Request payload bytes.
    pub bytes: f64,
    /// Direction.
    pub channel: ChannelKind,
}

impl AsyncSpan {
    /// Background ("exploit") time: the part of the transfer hidden behind
    /// the rank's other work.
    pub fn exploit(&self) -> f64 {
        (self.complete.min(self.wait_enter) - self.submit).max(0.0)
    }

    /// Blocking ("lost") time spent in the matching wait.
    pub fn lost(&self) -> f64 {
        (self.complete - self.wait_enter).max(0.0)
    }
}

/// Serializable channel tag (mirror of [`mpisim::Channel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Write direction.
    Write,
    /// Read direction.
    Read,
}

impl From<Channel> for ChannelKind {
    fn from(c: Channel) -> Self {
        match c {
            Channel::Write => ChannelKind::Write,
            Channel::Read => ChannelKind::Read,
        }
    }
}

/// One blocking I/O interval (sync tracing).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SyncInterval {
    /// Rank index.
    pub rank: usize,
    /// Call entry time, seconds.
    pub begin: f64,
    /// Return time, seconds.
    pub end: f64,
    /// Bytes.
    pub bytes: f64,
    /// Direction.
    pub channel: ChannelKind,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    tag: ReqTag,
    bytes: f64,
    ts: SimTime,
}

struct OpenSpan {
    submit: SimTime,
    complete: Option<SimTime>,
    wait_enter: Option<SimTime>,
    bytes: f64,
    channel: Channel,
}

struct RankTrace {
    phase: usize,
    queue: Vec<Pending>,
    waited: Vec<ReqTag>,
    tq_outstanding: usize,
    tq_start: SimTime,
    tq_bytes: f64,
    strategy: StrategyState,
    sync_begin: SimTime,
    end: Option<SimTime>,
}

impl RankTrace {
    fn new() -> Self {
        RankTrace {
            phase: 0,
            queue: Vec::new(),
            waited: Vec::new(),
            tq_outstanding: 0,
            tq_start: SimTime::ZERO,
            tq_bytes: 0.0,
            strategy: StrategyState::default(),
            sync_begin: SimTime::ZERO,
            end: None,
        }
    }
}

/// The TMIO tracer. Register as the world's hooks, run, then call
/// [`Tracer::into_report`].
pub struct Tracer {
    cfg: TracerConfig,
    ranks: Vec<RankTrace>,
    open_spans: HashMap<(usize, u32), OpenSpan>,
    phases: Vec<PhaseRecord>,
    windows: Vec<ThroughputWindow>,
    spans: Vec<AsyncSpan>,
    syncs: Vec<SyncInterval>,
    faults: Vec<crate::report::FaultEventRecord>,
    retry_time: f64,
    calls: u64,
}

impl Tracer {
    /// Creates a tracer for `n_ranks` ranks.
    pub fn new(n_ranks: usize, cfg: TracerConfig) -> Self {
        Tracer {
            cfg,
            ranks: (0..n_ranks).map(|_| RankTrace::new()).collect(),
            open_spans: HashMap::new(),
            phases: Vec::new(),
            windows: Vec::new(),
            spans: Vec::new(),
            syncs: Vec::new(),
            faults: Vec::new(),
            retry_time: 0.0,
            calls: 0,
        }
    }

    /// The configured strategy.
    pub fn config(&self) -> &TracerConfig {
        &self.cfg
    }

    fn call_overhead(&mut self) -> f64 {
        self.calls += 1;
        self.cfg.peri_call_overhead
    }

    /// Closes rank `rank`'s current phase at `te`, computing `B_{i,j}` and
    /// updating the limit.
    fn close_phase(&mut self, rank: usize, te: SimTime, limits: &mut Limits) {
        let cfg = self.cfg;
        let rt = &mut self.ranks[rank];
        if rt.queue.is_empty() {
            return;
        }
        let te_s = te.as_secs();
        let mut b_sum = 0.0;
        let mut bytes = 0.0;
        for p in &rt.queue {
            let dt = (te_s - p.ts.as_secs()).max(1e-9);
            b_sum += p.bytes / dt;
            bytes += p.bytes;
        }
        let n = rt.queue.len();
        let b = match cfg.aggregation {
            Aggregation::Sum => b_sum,
            Aggregation::Mean => b_sum / n as f64,
        };
        let limit_during = rt
            .strategy
            .current_limit()
            .filter(|_| cfg.strategy.limits());
        let limit_next = rt.strategy.next_limit(cfg.strategy, b);
        if let Some(l) = limit_next {
            limits.set(rank, Some(l));
        }
        let record = PhaseRecord {
            rank,
            phase: rt.phase,
            ts: rt.queue[0].ts.as_secs(),
            te: te_s,
            bytes,
            b_required: b,
            limit_during,
            limit_next,
            n_requests: n,
        };
        rt.phase += 1;
        rt.queue.clear();
        rt.waited.clear();
        self.phases.push(record);
    }

    /// Finalizes and returns the report. `n_ranks` post-overhead is modeled
    /// here, mirroring TMIO's `MPI_Finalize` aggregation.
    pub fn into_report(self) -> crate::report::Report {
        let n_ranks = self.ranks.len();
        let rank_end: Vec<f64> = self
            .ranks
            .iter()
            .map(|r| r.end.map(|t| t.as_secs()).unwrap_or(0.0))
            .collect();
        let peri_overhead = self.calls as f64 * self.cfg.peri_call_overhead;
        let post_overhead = self.cfg.post_model.overhead(n_ranks);
        crate::report::Report {
            n_ranks,
            strategy_name: self.cfg.strategy.name().to_string(),
            phases: self.phases,
            windows: self.windows,
            spans: self.spans,
            syncs: self.syncs,
            rank_end,
            calls: self.calls,
            peri_overhead,
            post_overhead,
            faults: self.faults,
            retry_time: self.retry_time,
        }
    }
}

impl IoHooks for Tracer {
    fn on_async_submit(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        bytes: f64,
        channel: Channel,
        _limits: &mut Limits,
    ) -> f64 {
        let rt = &mut self.ranks[rank];
        rt.queue.push(Pending { tag, bytes, ts: t });
        if rt.tq_outstanding == 0 {
            rt.tq_start = t;
            rt.tq_bytes = 0.0;
        }
        rt.tq_outstanding += 1;
        rt.tq_bytes += bytes;
        self.open_spans.insert(
            (rank, tag.0),
            OpenSpan {
                submit: t,
                complete: None,
                wait_enter: None,
                bytes,
                channel,
            },
        );
        self.call_overhead()
    }

    fn on_request_complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        if let Some(span) = self.open_spans.get_mut(&(rank, tag.0)) {
            span.complete = Some(t);
        }
        self.try_close_span(rank, tag);
        let rt = &mut self.ranks[rank];
        debug_assert!(rt.tq_outstanding > 0);
        rt.tq_outstanding -= 1;
        if rt.tq_outstanding == 0 {
            self.windows.push(ThroughputWindow {
                rank,
                start: rt.tq_start.as_secs(),
                end: t.as_secs(),
                bytes: rt.tq_bytes,
            });
        }
    }

    fn on_wait_enter(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        _already_done: bool,
        limits: &mut Limits,
    ) -> f64 {
        if let Some(span) = self.open_spans.get_mut(&(rank, tag.0)) {
            span.wait_enter = Some(t);
        }
        self.try_close_span(rank, tag);
        let rt = &mut self.ranks[rank];
        let close = match self.cfg.te_mode {
            TeMode::FirstWait => rt.queue.first().is_some_and(|p| p.tag == tag),
            TeMode::LastWait => {
                if rt.queue.iter().any(|p| p.tag == tag) {
                    rt.waited.push(tag);
                }
                !rt.queue.is_empty() && rt.queue.iter().all(|p| rt.waited.contains(&p.tag))
            }
        };
        if close {
            self.close_phase(rank, t, limits);
        }
        self.call_overhead()
    }

    fn on_wait_exit(
        &mut self,
        _t: SimTime,
        _rank: usize,
        _tag: ReqTag,
        _limits: &mut Limits,
    ) -> f64 {
        self.call_overhead()
    }

    fn on_sync_begin(
        &mut self,
        t: SimTime,
        rank: usize,
        _bytes: f64,
        _channel: Channel,
        _limits: &mut Limits,
    ) -> f64 {
        self.ranks[rank].sync_begin = t;
        self.call_overhead()
    }

    fn on_sync_end(
        &mut self,
        t: SimTime,
        rank: usize,
        bytes: f64,
        channel: Channel,
        _limits: &mut Limits,
    ) -> f64 {
        let begin = self.ranks[rank].sync_begin;
        self.syncs.push(SyncInterval {
            rank,
            begin: begin.as_secs(),
            end: t.as_secs(),
            bytes,
            channel: channel.into(),
        });
        self.call_overhead()
    }

    fn on_io_retry(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: Option<ReqTag>,
        kind: simcore::IoErrorKind,
        retry: u32,
        backoff: f64,
    ) {
        self.retry_time += backoff;
        self.faults.push(crate::report::FaultEventRecord {
            t: t.as_secs(),
            rank,
            tag: tag.map(|t| t.0),
            kind: kind.name().to_string(),
            code: kind.code(),
            retry,
            backoff,
            terminal: false,
        });
    }

    fn on_op_error(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: Option<ReqTag>,
        kind: simcore::IoErrorKind,
        attempts: u32,
    ) {
        self.faults.push(crate::report::FaultEventRecord {
            t: t.as_secs(),
            rank,
            tag: tag.map(|t| t.0),
            kind: kind.name().to_string(),
            code: kind.code(),
            retry: attempts,
            backoff: 0.0,
            terminal: true,
        });
    }

    fn on_rank_done(&mut self, t: SimTime, rank: usize) {
        self.ranks[rank].end = Some(t);
    }
}

impl Tracer {
    /// Emits the finished [`AsyncSpan`] once both completion and wait-enter
    /// are known.
    fn try_close_span(&mut self, rank: usize, tag: ReqTag) {
        let key = (rank, tag.0);
        let ready = self
            .open_spans
            .get(&key)
            .is_some_and(|s| s.complete.is_some() && s.wait_enter.is_some());
        if ready {
            let s = self.open_spans.remove(&key).invariant("span present");
            self.spans.push(AsyncSpan {
                rank,
                submit: s.submit.as_secs(),
                complete: s.complete.invariant("complete set").as_secs(),
                wait_enter: s.wait_enter.invariant("wait set").as_secs(),
                bytes: s.bytes,
                channel: s.channel.into(),
            });
        }
    }
}

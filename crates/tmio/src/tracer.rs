//! The TMIO tracer: PMPI-style interception of asynchronous MPI-IO.
//!
//! Implements [`mpisim::IoHooks`]. For every rank it maintains the paper's
//! two monitoring queues (Sec. IV-A):
//!
//! * the **bandwidth queue** collects requests of the current I/O phase;
//!   the phase closes when its *first* request reaches the matching wait
//!   (`te_{i,j}`), yielding the required bandwidth `B_{i,j}` =
//!   Σ_k b_k/(te − ts_k) (sum — the paper's choice — or mean);
//! * the **throughput queue** measures `T_{i,j}`: it opens when the first
//!   request is submitted and closes when the last completes and the queue
//!   empties.
//!
//! At each phase closure the configured [`Strategy`] turns `B_{i,j}` into the
//! throughput limit for phase *j+1* and pushes it into the runtime through
//! [`mpisim::Limits`] — the boundary to the "modified MPICH".
//!
//! # Streaming pipeline
//!
//! The tracer sits on the simulation's per-event hot path, so its matching
//! and record storage are allocation-free in steady state:
//!
//! * open request spans live in a generation-stamped slot arena
//!   ([`simcore::GenSlab`], the [`simcore::EventQueue`] bookkeeping design)
//!   indexed per rank by [`ReqTag`] — no hashing, memory bounded by the
//!   peak number of outstanding requests;
//! * closed phase/window/span/sync records land in structure-of-arrays
//!   tables pre-sized with `with_capacity`, materialized into the report's
//!   serialized row format only once at [`Tracer::into_report`];
//! * the application-level Eq. 3 aggregates (`B_r`, `B_L`, `T`) are
//!   maintained *online* by [`IncrementalSweep`]s fed at each closure, so
//!   mid-run queries and the final report reuse the same sorted-edge
//!   structure instead of re-collecting and re-sorting every interval.

use crate::regions::{IncrementalSweep, Interval};
use crate::strategy::{Strategy, StrategyState};
use mpisim::{Channel, IoHooks, Limits, ReqTag};
use serde::{Deserialize, Serialize};
use simcore::StepSeries;
use simcore::{GenKey, GenSlab, SimTime};

/// How per-request bandwidths combine into the rank metric `B_{i,j}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregation {
    /// Sum of per-request bandwidths ("results in higher values", the
    /// paper's choice).
    Sum,
    /// Mean of per-request bandwidths (the TMIO alternative).
    Mean,
}

/// When the required-bandwidth window ends (Sec. IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TeMode {
    /// `te` = when the *first* queued request reaches its matching wait
    /// (higher B; the paper's choice).
    FirstWait,
    /// `te` = when the *last* queued request reaches its matching wait
    /// (the TMIO option the paper mentions but does not use).
    LastWait,
}

/// Model of TMIO's post-runtime overhead (the `MPI_Finalize` gather that
/// collects per-rank records; grows with rank count — Fig. 6).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PostOverheadModel {
    /// Fixed cost (file creation, serialization), seconds.
    pub base: f64,
    /// Per-tree-level latency of the gather, seconds.
    pub latency: f64,
    /// Per-rank cost of collecting one rank's records, seconds.
    pub per_rank: f64,
}

impl Default for PostOverheadModel {
    fn default() -> Self {
        PostOverheadModel {
            base: 0.02,
            latency: 1e-4,
            per_rank: 250e-6,
        }
    }
}

impl PostOverheadModel {
    /// Post-runtime overhead for a run with `n` ranks, seconds.
    pub fn overhead(&self, n: usize) -> f64 {
        let levels = (n as f64).log2().ceil().max(1.0);
        self.base + self.latency * levels + self.per_rank * n as f64
    }
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TracerConfig {
    /// Limit strategy fed back into the runtime.
    pub strategy: Strategy,
    /// Peri-runtime overhead injected per intercepted call, seconds.
    pub peri_call_overhead: f64,
    /// Per-request aggregation into `B_{i,j}`.
    pub aggregation: Aggregation,
    /// Window-end semantics.
    pub te_mode: TeMode,
    /// Post-runtime overhead model.
    pub post_model: PostOverheadModel,
}

impl TracerConfig {
    /// Trace-only configuration (no limiting), paper-default options.
    pub fn trace_only() -> Self {
        TracerConfig {
            strategy: Strategy::None,
            peri_call_overhead: 2e-6,
            aggregation: Aggregation::Sum,
            te_mode: TeMode::FirstWait,
            post_model: PostOverheadModel::default(),
        }
    }

    /// Paper-default configuration with the given strategy.
    pub fn with_strategy(strategy: Strategy) -> Self {
        TracerConfig {
            strategy,
            ..Self::trace_only()
        }
    }
}

/// One closed I/O phase of one rank: the `B_{i,j}` record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Rank index i.
    pub rank: usize,
    /// Phase index j.
    pub phase: usize,
    /// Window start: submit time of the first request, seconds.
    pub ts: f64,
    /// Window end per the configured [`TeMode`], seconds.
    pub te: f64,
    /// Total bytes of the phase's requests.
    pub bytes: f64,
    /// Required bandwidth `B_{i,j}`, bytes/s.
    pub b_required: f64,
    /// Limit in effect *while* this phase ran (set after phase j−1).
    pub limit_during: Option<f64>,
    /// Limit emitted for the next phase (None for [`Strategy::None`]).
    pub limit_next: Option<f64>,
    /// Number of requests aggregated into this phase.
    pub n_requests: usize,
}

/// One closed throughput window: the `T_{i,j}` record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThroughputWindow {
    /// Rank index.
    pub rank: usize,
    /// First submit time, seconds.
    pub start: f64,
    /// Last completion time (queue drained), seconds.
    pub end: f64,
    /// Bytes moved inside the window.
    pub bytes: f64,
}

impl ThroughputWindow {
    /// The throughput value `T` of this window, bytes/s.
    pub fn throughput(&self) -> f64 {
        let dt = (self.end - self.start).max(1e-12);
        self.bytes / dt
    }
}

/// Lifetime of one asynchronous request, for exploit/lost accounting.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AsyncSpan {
    /// Rank index.
    pub rank: usize,
    /// Submit time, seconds.
    pub submit: f64,
    /// I/O-thread completion time, seconds.
    pub complete: f64,
    /// When the matching wait was entered, seconds.
    pub wait_enter: f64,
    /// Request payload bytes.
    pub bytes: f64,
    /// Direction.
    pub channel: ChannelKind,
}

impl AsyncSpan {
    /// Background ("exploit") time: the part of the transfer hidden behind
    /// the rank's other work.
    pub fn exploit(&self) -> f64 {
        (self.complete.min(self.wait_enter) - self.submit).max(0.0)
    }

    /// Blocking ("lost") time spent in the matching wait.
    pub fn lost(&self) -> f64 {
        (self.complete - self.wait_enter).max(0.0)
    }
}

/// Serializable channel tag (mirror of [`mpisim::Channel`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Write direction.
    Write,
    /// Read direction.
    Read,
}

impl From<Channel> for ChannelKind {
    fn from(c: Channel) -> Self {
        match c {
            Channel::Write => ChannelKind::Write,
            Channel::Read => ChannelKind::Read,
        }
    }
}

/// One blocking I/O interval (sync tracing).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SyncInterval {
    /// Rank index.
    pub rank: usize,
    /// Call entry time, seconds.
    pub begin: f64,
    /// Return time, seconds.
    pub end: f64,
    /// Bytes.
    pub bytes: f64,
    /// Direction.
    pub channel: ChannelKind,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    tag: ReqTag,
    bytes: f64,
    ts: SimTime,
}

/// One open async request span, kept in the slot arena until both the
/// completion and the matching wait have been observed.
struct OpenSpan {
    submit: SimTime,
    complete: Option<SimTime>,
    wait_enter: Option<SimTime>,
    bytes: f64,
    channel: Channel,
}

/// Tags below this bound resolve through a direct per-rank array probe;
/// larger (unusual) tag values fall back to a small linear-scan list so a
/// hostile tag like `u32::MAX` cannot balloon the index.
const DENSE_TAGS: u32 = 4096;

const NO_SPAN: u64 = u64::MAX;

/// Per-rank index from [`ReqTag`] to the slot-arena key of its open span.
#[derive(Default)]
struct TagIndex {
    /// `tag -> packed GenKey` for tags `< DENSE_TAGS`; grown lazily to the
    /// highest tag seen. `NO_SPAN` marks an empty cell.
    dense: Vec<u64>,
    /// Overflow entries for out-of-range tags (linear scan; rare).
    sparse: Vec<(u32, u64)>,
}

impl TagIndex {
    /// Binds `tag` to `key`, returning a displaced key if the tag was
    /// already bound (mirrors `HashMap::insert` semantics).
    fn insert(&mut self, tag: u32, key: GenKey) -> Option<GenKey> {
        let key = key.as_u64();
        if tag < DENSE_TAGS {
            let i = tag as usize;
            if i >= self.dense.len() {
                self.dense.resize(i + 1, NO_SPAN);
            }
            let old = std::mem::replace(&mut self.dense[i], key);
            (old != NO_SPAN).then(|| GenKey::from_u64(old))
        } else {
            match self.sparse.iter_mut().find(|(t, _)| *t == tag) {
                Some(e) => Some(GenKey::from_u64(std::mem::replace(&mut e.1, key))),
                None => {
                    self.sparse.push((tag, key));
                    None
                }
            }
        }
    }

    fn get(&self, tag: u32) -> Option<GenKey> {
        if tag < DENSE_TAGS {
            match self.dense.get(tag as usize) {
                Some(&k) if k != NO_SPAN => Some(GenKey::from_u64(k)),
                _ => None,
            }
        } else {
            self.sparse
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|&(_, k)| GenKey::from_u64(k))
        }
    }

    fn remove(&mut self, tag: u32) -> Option<GenKey> {
        if tag < DENSE_TAGS {
            match self.dense.get_mut(tag as usize) {
                Some(k) if *k != NO_SPAN => Some(GenKey::from_u64(std::mem::replace(k, NO_SPAN))),
                _ => None,
            }
        } else {
            let i = self.sparse.iter().position(|(t, _)| *t == tag)?;
            Some(GenKey::from_u64(self.sparse.swap_remove(i).1))
        }
    }
}

struct RankTrace {
    phase: usize,
    queue: Vec<Pending>,
    waited: Vec<ReqTag>,
    /// Open-span index of this rank's outstanding requests.
    tags: TagIndex,
    tq_outstanding: usize,
    tq_start: SimTime,
    tq_bytes: f64,
    strategy: StrategyState,
    sync_begin: SimTime,
    end: Option<SimTime>,
}

impl RankTrace {
    fn new() -> Self {
        RankTrace {
            phase: 0,
            queue: Vec::with_capacity(8),
            waited: Vec::with_capacity(8),
            tags: TagIndex::default(),
            tq_outstanding: 0,
            tq_start: SimTime::ZERO,
            tq_bytes: 0.0,
            strategy: StrategyState::default(),
            sync_begin: SimTime::ZERO,
            end: None,
        }
    }
}

// ---------------------------------------------------------------------
// Structure-of-arrays record tables. Hot-path pushes touch parallel
// column vectors (pre-sized, no per-record allocation); the serialized
// row structs are materialized once at `into_report`.

#[derive(Default)]
struct PhaseTable {
    rank: Vec<u32>,
    phase: Vec<u32>,
    ts: Vec<f64>,
    te: Vec<f64>,
    bytes: Vec<f64>,
    b_required: Vec<f64>,
    limit_during: Vec<Option<f64>>,
    limit_next: Vec<Option<f64>>,
    n_requests: Vec<u32>,
}

impl PhaseTable {
    fn with_capacity(n: usize) -> Self {
        PhaseTable {
            rank: Vec::with_capacity(n),
            phase: Vec::with_capacity(n),
            ts: Vec::with_capacity(n),
            te: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            b_required: Vec::with_capacity(n),
            limit_during: Vec::with_capacity(n),
            limit_next: Vec::with_capacity(n),
            n_requests: Vec::with_capacity(n),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        rank: usize,
        phase: usize,
        ts: f64,
        te: f64,
        bytes: f64,
        b_required: f64,
        limit_during: Option<f64>,
        limit_next: Option<f64>,
        n_requests: usize,
    ) {
        self.rank.push(rank as u32);
        self.phase.push(phase as u32);
        self.ts.push(ts);
        self.te.push(te);
        self.bytes.push(bytes);
        self.b_required.push(b_required);
        self.limit_during.push(limit_during);
        self.limit_next.push(limit_next);
        self.n_requests.push(n_requests as u32);
    }

    fn materialize(self) -> Vec<PhaseRecord> {
        (0..self.rank.len())
            .map(|i| PhaseRecord {
                rank: self.rank[i] as usize,
                phase: self.phase[i] as usize,
                ts: self.ts[i],
                te: self.te[i],
                bytes: self.bytes[i],
                b_required: self.b_required[i],
                limit_during: self.limit_during[i],
                limit_next: self.limit_next[i],
                n_requests: self.n_requests[i] as usize,
            })
            .collect()
    }
}

#[derive(Default)]
struct WindowTable {
    rank: Vec<u32>,
    start: Vec<f64>,
    end: Vec<f64>,
    bytes: Vec<f64>,
}

impl WindowTable {
    fn with_capacity(n: usize) -> Self {
        WindowTable {
            rank: Vec::with_capacity(n),
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, rank: usize, start: f64, end: f64, bytes: f64) {
        self.rank.push(rank as u32);
        self.start.push(start);
        self.end.push(end);
        self.bytes.push(bytes);
    }

    fn materialize(self) -> Vec<ThroughputWindow> {
        (0..self.rank.len())
            .map(|i| ThroughputWindow {
                rank: self.rank[i] as usize,
                start: self.start[i],
                end: self.end[i],
                bytes: self.bytes[i],
            })
            .collect()
    }
}

#[derive(Default)]
struct SpanTable {
    rank: Vec<u32>,
    submit: Vec<f64>,
    complete: Vec<f64>,
    wait_enter: Vec<f64>,
    bytes: Vec<f64>,
    channel: Vec<ChannelKind>,
}

impl SpanTable {
    fn with_capacity(n: usize) -> Self {
        SpanTable {
            rank: Vec::with_capacity(n),
            submit: Vec::with_capacity(n),
            complete: Vec::with_capacity(n),
            wait_enter: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            channel: Vec::with_capacity(n),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        rank: usize,
        submit: f64,
        complete: f64,
        wait_enter: f64,
        bytes: f64,
        channel: ChannelKind,
    ) {
        self.rank.push(rank as u32);
        self.submit.push(submit);
        self.complete.push(complete);
        self.wait_enter.push(wait_enter);
        self.bytes.push(bytes);
        self.channel.push(channel);
    }

    fn materialize(self) -> Vec<AsyncSpan> {
        (0..self.rank.len())
            .map(|i| AsyncSpan {
                rank: self.rank[i] as usize,
                submit: self.submit[i],
                complete: self.complete[i],
                wait_enter: self.wait_enter[i],
                bytes: self.bytes[i],
                channel: self.channel[i],
            })
            .collect()
    }
}

#[derive(Default)]
struct SyncTable {
    rank: Vec<u32>,
    begin: Vec<f64>,
    end: Vec<f64>,
    bytes: Vec<f64>,
    channel: Vec<ChannelKind>,
}

impl SyncTable {
    fn with_capacity(n: usize) -> Self {
        SyncTable {
            rank: Vec::with_capacity(n),
            begin: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            channel: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, rank: usize, begin: f64, end: f64, bytes: f64, channel: ChannelKind) {
        self.rank.push(rank as u32);
        self.begin.push(begin);
        self.end.push(end);
        self.bytes.push(bytes);
        self.channel.push(channel);
    }

    fn materialize(self) -> Vec<SyncInterval> {
        (0..self.rank.len())
            .map(|i| SyncInterval {
                rank: self.rank[i] as usize,
                begin: self.begin[i],
                end: self.end[i],
                bytes: self.bytes[i],
                channel: self.channel[i],
            })
            .collect()
    }
}

/// The TMIO tracer. Register as the world's hooks, run, then call
/// [`Tracer::into_report`].
pub struct Tracer {
    cfg: TracerConfig,
    ranks: Vec<RankTrace>,
    /// Open async spans, keyed through each rank's [`TagIndex`].
    open_spans: GenSlab<OpenSpan>,
    phases: PhaseTable,
    windows: WindowTable,
    spans: SpanTable,
    syncs: SyncTable,
    /// Streaming Eq. 3 aggregates, fed at every phase/window closure.
    req_sweep: IncrementalSweep,
    lim_sweep: IncrementalSweep,
    thr_sweep: IncrementalSweep,
    /// Resident per-rank end times (the finalize gather's scratch).
    rank_end: Vec<f64>,
    faults: Vec<crate::report::FaultEventRecord>,
    retry_time: f64,
    calls: u64,
}

impl Tracer {
    /// Creates a tracer for `n_ranks` ranks.
    pub fn new(n_ranks: usize, cfg: TracerConfig) -> Self {
        // Pre-size the record tables for a typical multi-phase run; the
        // columns grow geometrically past this without churn.
        let per_rank = 16;
        let cap = n_ranks * per_rank;
        Tracer {
            cfg,
            ranks: (0..n_ranks).map(|_| RankTrace::new()).collect(),
            open_spans: GenSlab::with_capacity(n_ranks * 2),
            phases: PhaseTable::with_capacity(cap),
            windows: WindowTable::with_capacity(cap),
            spans: SpanTable::with_capacity(cap),
            syncs: SyncTable::with_capacity(n_ranks * 4),
            req_sweep: IncrementalSweep::with_capacity(cap),
            lim_sweep: IncrementalSweep::new(),
            thr_sweep: IncrementalSweep::with_capacity(cap),
            rank_end: vec![0.0; n_ranks],
            faults: Vec::new(),
            retry_time: 0.0,
            calls: 0,
        }
    }

    /// The configured strategy.
    pub fn config(&self) -> &TracerConfig {
        &self.cfg
    }

    /// Live application-level required-bandwidth series `B_r` over the
    /// phases closed *so far* (the online view of Eq. 3; the report serves
    /// the same series after the run).
    pub fn live_required_series(&mut self) -> &StepSeries {
        self.req_sweep.series()
    }

    /// Live application-level limit series `B_L` (closed phases so far).
    pub fn live_limit_series(&mut self) -> &StepSeries {
        self.lim_sweep.series()
    }

    /// Live application-level throughput series `T` (closed windows so far).
    pub fn live_throughput_series(&mut self) -> &StepSeries {
        self.thr_sweep.series()
    }

    fn call_overhead(&mut self) -> f64 {
        self.calls += 1;
        self.cfg.peri_call_overhead
    }

    /// Closes rank `rank`'s current phase at `te`, computing `B_{i,j}` and
    /// updating the limit.
    fn close_phase(&mut self, rank: usize, te: SimTime, limits: &mut Limits) {
        let cfg = self.cfg;
        let rt = &mut self.ranks[rank];
        if rt.queue.is_empty() {
            return;
        }
        let te_s = te.as_secs();
        let mut b_sum = 0.0;
        let mut bytes = 0.0;
        for p in &rt.queue {
            let dt = (te_s - p.ts.as_secs()).max(1e-9);
            b_sum += p.bytes / dt;
            bytes += p.bytes;
        }
        let n = rt.queue.len();
        let b = match cfg.aggregation {
            Aggregation::Sum => b_sum,
            Aggregation::Mean => b_sum / n as f64,
        };
        let limit_during = rt
            .strategy
            .current_limit()
            .filter(|_| cfg.strategy.limits());
        let limit_next = rt.strategy.next_limit(cfg.strategy, b);
        if let Some(l) = limit_next {
            limits.set(rank, Some(l));
        }
        let ts = rt.queue[0].ts.as_secs();
        let phase = rt.phase;
        rt.phase += 1;
        rt.queue.clear();
        rt.waited.clear();
        self.phases
            .push(rank, phase, ts, te_s, bytes, b, limit_during, limit_next, n);
        self.req_sweep.push(Interval {
            ts,
            te: te_s,
            value: b,
        });
        if let Some(l) = limit_during {
            self.lim_sweep.push(Interval {
                ts,
                te: te_s,
                value: l,
            });
        }
    }

    /// Finalizes and returns the report. `n_ranks` post-overhead is modeled
    /// here, mirroring TMIO's `MPI_Finalize` aggregation.
    pub fn into_report(self) -> crate::report::Report {
        let n_ranks = self.ranks.len();
        let peri_overhead = self.calls as f64 * self.cfg.peri_call_overhead;
        let post_overhead = self.cfg.post_model.overhead(n_ranks);
        let report = crate::report::Report {
            n_ranks,
            strategy_name: self.cfg.strategy.name().to_string(),
            phases: self.phases.materialize(),
            windows: self.windows.materialize(),
            spans: self.spans.materialize(),
            syncs: self.syncs.materialize(),
            rank_end: self.rank_end,
            calls: self.calls,
            peri_overhead,
            post_overhead,
            faults: self.faults,
            retry_time: self.retry_time,
            required_cache: std::sync::OnceLock::new(),
            limit_cache: std::sync::OnceLock::new(),
            throughput_cache: std::sync::OnceLock::new(),
            decomposition_cache: std::sync::OnceLock::new(),
        };
        // Seed the report's series caches from the streaming sweeps: the
        // incremental structure is bit-identical to the from-scratch oracle
        // over the same closures (property-tested), so post-run queries skip
        // the collect-and-sort entirely.
        report.seed_series_caches(
            self.req_sweep.into_series(),
            self.lim_sweep.into_series(),
            self.thr_sweep.into_series(),
        );
        report
    }
}

impl IoHooks for Tracer {
    fn on_async_submit(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        bytes: f64,
        channel: Channel,
        _limits: &mut Limits,
    ) -> f64 {
        let rt = &mut self.ranks[rank];
        rt.queue.push(Pending { tag, bytes, ts: t });
        if rt.tq_outstanding == 0 {
            rt.tq_start = t;
            rt.tq_bytes = 0.0;
        }
        rt.tq_outstanding += 1;
        rt.tq_bytes += bytes;
        let key = self.open_spans.insert(OpenSpan {
            submit: t,
            complete: None,
            wait_enter: None,
            bytes,
            channel,
        });
        if let Some(stale) = self.ranks[rank].tags.insert(tag.0, key) {
            // A resubmitted tag displaces its forgotten predecessor, as the
            // old map-insert semantics did.
            self.open_spans.remove(stale);
        }
        self.call_overhead()
    }

    fn on_request_complete(&mut self, t: SimTime, rank: usize, tag: ReqTag) {
        if let Some(span) = self.ranks[rank]
            .tags
            .get(tag.0)
            .and_then(|k| self.open_spans.get_mut(k))
        {
            span.complete = Some(t);
        }
        self.try_close_span(rank, tag);
        let rt = &mut self.ranks[rank];
        debug_assert!(rt.tq_outstanding > 0);
        rt.tq_outstanding -= 1;
        if rt.tq_outstanding == 0 {
            let start = rt.tq_start.as_secs();
            let end = t.as_secs();
            let bytes = rt.tq_bytes;
            self.windows.push(rank, start, end, bytes);
            self.thr_sweep.push(Interval {
                ts: start,
                te: end,
                value: bytes / (end - start).max(1e-12),
            });
        }
    }

    fn on_wait_enter(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: ReqTag,
        _already_done: bool,
        limits: &mut Limits,
    ) -> f64 {
        if let Some(span) = self.ranks[rank]
            .tags
            .get(tag.0)
            .and_then(|k| self.open_spans.get_mut(k))
        {
            span.wait_enter = Some(t);
        }
        self.try_close_span(rank, tag);
        let rt = &mut self.ranks[rank];
        let close = match self.cfg.te_mode {
            TeMode::FirstWait => rt.queue.first().is_some_and(|p| p.tag == tag),
            TeMode::LastWait => {
                if rt.queue.iter().any(|p| p.tag == tag) {
                    rt.waited.push(tag);
                }
                !rt.queue.is_empty() && rt.queue.iter().all(|p| rt.waited.contains(&p.tag))
            }
        };
        if close {
            self.close_phase(rank, t, limits);
        }
        self.call_overhead()
    }

    fn on_wait_exit(
        &mut self,
        _t: SimTime,
        _rank: usize,
        _tag: ReqTag,
        _limits: &mut Limits,
    ) -> f64 {
        self.call_overhead()
    }

    fn on_sync_begin(
        &mut self,
        t: SimTime,
        rank: usize,
        _bytes: f64,
        _channel: Channel,
        _limits: &mut Limits,
    ) -> f64 {
        self.ranks[rank].sync_begin = t;
        self.call_overhead()
    }

    fn on_sync_end(
        &mut self,
        t: SimTime,
        rank: usize,
        bytes: f64,
        channel: Channel,
        _limits: &mut Limits,
    ) -> f64 {
        let begin = self.ranks[rank].sync_begin;
        self.syncs
            .push(rank, begin.as_secs(), t.as_secs(), bytes, channel.into());
        self.call_overhead()
    }

    fn on_io_retry(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: Option<ReqTag>,
        kind: simcore::IoErrorKind,
        retry: u32,
        backoff: f64,
    ) {
        self.retry_time += backoff;
        self.faults.push(crate::report::FaultEventRecord {
            t: t.as_secs(),
            rank,
            tag: tag.map(|t| t.0),
            kind: kind.name().to_string(),
            code: kind.code(),
            retry,
            backoff,
            terminal: false,
        });
    }

    fn on_op_error(
        &mut self,
        t: SimTime,
        rank: usize,
        tag: Option<ReqTag>,
        kind: simcore::IoErrorKind,
        attempts: u32,
    ) {
        self.faults.push(crate::report::FaultEventRecord {
            t: t.as_secs(),
            rank,
            tag: tag.map(|t| t.0),
            kind: kind.name().to_string(),
            code: kind.code(),
            retry: attempts,
            backoff: 0.0,
            terminal: true,
        });
    }

    fn on_rank_done(&mut self, t: SimTime, rank: usize) {
        self.ranks[rank].end = Some(t);
        self.rank_end[rank] = t.as_secs();
    }
}

impl Tracer {
    /// Emits the finished [`AsyncSpan`] once both completion and wait-enter
    /// are known.
    fn try_close_span(&mut self, rank: usize, tag: ReqTag) {
        let Some(key) = self.ranks[rank].tags.get(tag.0) else {
            return;
        };
        let ready = self
            .open_spans
            .get(key)
            .is_some_and(|s| s.complete.is_some() && s.wait_enter.is_some());
        if ready {
            self.ranks[rank].tags.remove(tag.0);
            if let Some(s) = self.open_spans.remove(key) {
                let (Some(complete), Some(wait_enter)) = (s.complete, s.wait_enter) else {
                    return;
                };
                self.spans.push(
                    rank,
                    s.submit.as_secs(),
                    complete.as_secs(),
                    wait_enter.as_secs(),
                    s.bytes,
                    s.channel.into(),
                );
            }
        }
    }
}

//! Steady-state allocation harness for the event hot loop.
//!
//! A counting global allocator wraps [`std::alloc::System`] and tallies every
//! `alloc`/`realloc` call. Two otherwise-identical runs — one with `N`
//! phases per rank, one with `2N` — are executed through the full
//! `World` + `Tracer` stack. If the hot loop allocated per event, the
//! longer run would pay thousands of additional allocator calls (each extra
//! phase produces a subrequest fan-out, PFS flow churn, queue events, tracer
//! records, and sweep edges). The assertion pins the *difference* to a small
//! constant: the only growth allowed is the logarithmic tail of geometric
//! `Vec`/heap doubling in the resident containers.
//!
//! The run is single-threaded and the harness is its own integration-test
//! binary, so no other test's allocations pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mpisim::{FileId, Op, Program, ReqTag, World, WorldConfig};
use pfsim::PfsConfig;
use tmio::{Strategy, Tracer, TracerConfig};

/// Counts `alloc` + `realloc` calls; delegates all work to [`System`].
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const MB: f64 = 1e6;

/// Periodic async-write app reusing a single request tag, so the tracer's
/// dense tag slots and the world's request table hit the recycle path on
/// every phase after the first.
fn periodic_app(phases: usize) -> Program {
    let mut ops = Vec::with_capacity(3 * phases);
    for _ in 0..phases {
        ops.push(Op::IWrite {
            file: FileId(0),
            bytes: 8.0 * MB,
            tag: ReqTag(0),
        });
        ops.push(Op::Compute { seconds: 0.25 });
        ops.push(Op::Wait { tag: ReqTag(0) });
    }
    Program::from_ops(ops)
}

/// Runs `phases` phases on 4 ranks and returns the number of allocator
/// calls made *during the event loop* (world construction and report
/// extraction are excluded; their costs scale with input/output size by
/// design).
fn alloc_calls_for_run(phases: usize) -> u64 {
    let n = 4;
    let mut wc = WorldConfig::new(n).with_limiter(true).with_seed(7);
    wc.pfs = PfsConfig {
        write_capacity: 400.0 * MB,
        read_capacity: 400.0 * MB,
    };
    wc.subreq_bytes = MB;
    // Per-flow PFS samples would legitimately grow with run length.
    wc.record_pfs = false;

    let tracer = Tracer::new(
        n,
        TracerConfig::with_strategy(Strategy::Direct { tol: 2.0 }),
    );
    let mut w = World::new(wc, vec![periodic_app(phases); n], tracer);
    w.create_file("out");

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let summary = w.run();
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert!(summary.makespan() > 0.0);

    // Sanity: the run actually did the work we think it did.
    let report =
        std::mem::replace(w.hooks_mut(), Tracer::new(0, TracerConfig::trace_only())).into_report();
    assert_eq!(report.phases.len(), phases * n);

    after - before
}

#[test]
fn event_loop_is_allocation_free_in_steady_state() {
    // Warm up once so lazy one-time allocations (thread-locals, stdio
    // buffers, lazily-initialized tables) don't land in either measurement.
    let _ = alloc_calls_for_run(8);

    let base = alloc_calls_for_run(200);
    let double = alloc_calls_for_run(400);

    // 200 extra phases x 4 ranks x (8 subrequests + queue/tracer/sweep
    // traffic) is tens of thousands of events. Per-event allocation of any
    // kind would show up here as thousands of calls; geometric container
    // growth contributes only a logarithmic handful.
    let delta = double.saturating_sub(base);
    assert!(
        delta <= 128,
        "steady-state event loop allocated: {base} calls at 200 phases, \
         {double} at 400 (delta {delta} > 128)"
    );
}

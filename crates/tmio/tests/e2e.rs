//! End-to-end tests: TMIO tracer observing and throttling a simulated run.

use mpisim::{FileId, Op, Program, ReqTag, World, WorldConfig};
use pfsim::PfsConfig;
use tmio::{Aggregation, Strategy, TeMode, Tracer, TracerConfig};

const MB: f64 = 1e6;

/// A periodic async-write app: loops of (iwrite, compute, wait).
fn periodic_app(loops: usize, bytes: f64, compute: f64) -> Program {
    let mut ops = Vec::new();
    for i in 0..loops {
        ops.push(Op::IWrite {
            file: FileId(0),
            bytes,
            tag: ReqTag(i as u32),
        });
        ops.push(Op::Compute { seconds: compute });
        ops.push(Op::Wait {
            tag: ReqTag(i as u32),
        });
    }
    Program::from_ops(ops)
}

fn run_app(
    n: usize,
    cap: f64,
    loops: usize,
    bytes: f64,
    compute: f64,
    cfg: TracerConfig,
    limiter: bool,
) -> (mpisim::RunSummary, tmio::Report) {
    let mut wc = WorldConfig::new(n).with_limiter(limiter);
    wc.pfs = PfsConfig {
        write_capacity: cap,
        read_capacity: cap,
    };
    wc.subreq_bytes = MB;
    // Zero tool overhead keeps the timing assertions exact.
    let mut tcfg = cfg;
    tcfg.peri_call_overhead = 0.0;
    let tracer = Tracer::new(n, tcfg);
    let mut w = World::new(wc, vec![periodic_app(loops, bytes, compute); n], tracer);
    w.create_file("out");
    let s = w.run();
    let report = std::mem::replace(w.hooks_mut(), Tracer::new(0, tcfg)).into_report();
    (s, report)
}

#[test]
fn required_bandwidth_matches_analytic() {
    // One rank: 10 MB hidden behind 1 s compute -> B = 10 MB/s per phase.
    let (_, report) = run_app(1, 1e9, 3, 10.0 * MB, 1.0, TracerConfig::trace_only(), false);
    assert_eq!(report.phases.len(), 3);
    for p in &report.phases {
        // Window = submit -> wait = compute duration (I/O finishes earlier).
        assert!((p.te - p.ts - 1.0).abs() < 1e-6, "window {}", p.te - p.ts);
        assert!(
            (p.b_required - 10.0 * MB).abs() < 0.01 * MB,
            "B = {}",
            p.b_required
        );
    }
}

#[test]
fn throughput_reflects_actual_speed() {
    // Unthrottled on a 100 MB/s channel: T ≈ 100 MB/s >> B = 10 MB/s.
    let (_, report) = run_app(
        1,
        100.0 * MB,
        3,
        10.0 * MB,
        1.0,
        TracerConfig::trace_only(),
        false,
    );
    assert_eq!(report.windows.len(), 3);
    for w in &report.windows {
        assert!(
            (w.throughput() - 100.0 * MB).abs() < MB,
            "T = {}",
            w.throughput()
        );
    }
}

#[test]
fn direct_strategy_throttles_next_phase() {
    let cfg = TracerConfig::with_strategy(Strategy::Direct { tol: 1.1 });
    let (s, report) = run_app(1, 100.0 * MB, 5, 10.0 * MB, 1.0, cfg, true);
    // Runtime unchanged: I/O still fits the window (10 MB at 11 MB/s < 1 s).
    assert!(
        (s.makespan() - 5.0).abs() < 0.02,
        "makespan {}",
        s.makespan()
    );
    assert!(s.accounting[0].wait_write < 1e-6, "no lost time expected");
    // Phases after the first are throttled: T ≈ limit = B·tol ≈ 11 MB/s.
    let later: Vec<_> = report.windows.iter().skip(1).collect();
    assert!(!later.is_empty());
    for w in later {
        assert!(
            w.throughput() < 15.0 * MB,
            "throttled T should be near 11 MB/s, got {}",
            w.throughput()
        );
    }
    // And the limits recorded equal B·tol.
    for p in report.phases.iter().take(4) {
        let l = p.limit_next.unwrap();
        assert!((l - p.b_required * 1.1).abs() < 0.2 * MB, "limit {l}");
    }
}

#[test]
fn limiting_flattens_burst_without_slowdown() {
    let base = run_app(
        1,
        100.0 * MB,
        6,
        20.0 * MB,
        1.0,
        TracerConfig::trace_only(),
        false,
    );
    let cfg = TracerConfig::with_strategy(Strategy::Direct { tol: 1.2 });
    let lim = run_app(1, 100.0 * MB, 6, 20.0 * MB, 1.0, cfg, true);
    // Same runtime (within 2%)…
    assert!(
        (lim.0.makespan() - base.0.makespan()).abs() / base.0.makespan() < 0.02,
        "limited {} vs base {}",
        lim.0.makespan(),
        base.0.makespan()
    );
    // …but once the limiter kicks in (after the first phase, as in the
    // paper's "limit starts" marker) the throughput bursts are flattened.
    let start = lim.1.limit_start_time().expect("limiter engaged");
    let peak_base = base.1.throughput_series().max_value();
    let peak_lim = lim
        .1
        .windows
        .iter()
        .filter(|w| w.start >= start)
        .map(|w| w.throughput())
        .fold(0.0, f64::max);
    assert!(peak_lim > 0.0);
    assert!(
        peak_lim < peak_base / 2.0,
        "peak {peak_lim} should be well below unthrottled {peak_base}"
    );
}

#[test]
fn up_only_never_lowers_limit() {
    let cfg = TracerConfig::with_strategy(Strategy::UpOnly { tol: 1.1 });
    let (_, report) = run_app(1, 1e9, 6, 10.0 * MB, 1.0, cfg, true);
    let limits: Vec<f64> = report.phases.iter().filter_map(|p| p.limit_next).collect();
    for pair in limits.windows(2) {
        assert!(pair[1] >= pair[0] - 1e-9, "up-only decreased: {pair:?}");
    }
}

#[test]
fn too_tight_limit_causes_waiting() {
    // Strategy with tol < 1 under-provisions: phase j+1's I/O cannot finish
    // inside the window -> wait time appears (the paper's "too-low value"
    // hazard of the direct strategy).
    let cfg = TracerConfig::with_strategy(Strategy::Direct { tol: 0.5 });
    let (s, _) = run_app(1, 1e9, 4, 50.0 * MB, 1.0, cfg, true);
    assert!(
        s.accounting[0].wait_write > 0.5,
        "expected waiting, got {}",
        s.accounting[0].wait_write
    );
    assert!(s.makespan() > 4.2, "runtime should grow: {}", s.makespan());
}

#[test]
fn multiple_ranks_all_report_phases() {
    let (_, report) = run_app(8, 1e9, 4, 5.0 * MB, 0.5, TracerConfig::trace_only(), false);
    assert_eq!(report.phases.len(), 8 * 4);
    for rank in 0..8 {
        let n = report.phases.iter().filter(|p| p.rank == rank).count();
        assert_eq!(n, 4);
    }
    // All ranks synchronized: app-level B = 8 × rank-level B.
    let b = report.required_bandwidth();
    assert!((b - 8.0 * 10.0 * MB).abs() < MB, "app B = {b}");
}

#[test]
fn aggregation_mean_vs_sum() {
    // Two requests per phase: sum doubles the per-request bandwidth, mean
    // keeps it.
    let mk = |agg| {
        let mut ops = Vec::new();
        for i in 0..2u32 {
            ops.push(Op::IWrite {
                file: FileId(0),
                bytes: 10.0 * MB,
                tag: ReqTag(2 * i),
            });
            ops.push(Op::IWrite {
                file: FileId(0),
                bytes: 10.0 * MB,
                tag: ReqTag(2 * i + 1),
            });
            ops.push(Op::Compute { seconds: 1.0 });
            ops.push(Op::Wait { tag: ReqTag(2 * i) });
            ops.push(Op::Wait {
                tag: ReqTag(2 * i + 1),
            });
        }
        let mut wc = WorldConfig::new(1);
        wc.pfs = PfsConfig {
            write_capacity: 1e9,
            read_capacity: 1e9,
        };
        let mut tc = TracerConfig::trace_only();
        tc.aggregation = agg;
        tc.peri_call_overhead = 0.0;
        let mut w = World::new(wc, vec![Program::from_ops(ops)], Tracer::new(1, tc));
        w.create_file("out");
        w.run();
        std::mem::replace(w.hooks_mut(), Tracer::new(0, tc)).into_report()
    };
    let sum = mk(Aggregation::Sum);
    let mean = mk(Aggregation::Mean);
    let b_sum = sum.phases[0].b_required;
    let b_mean = mean.phases[0].b_required;
    assert!(
        (b_sum / b_mean - 2.0).abs() < 1e-6,
        "sum {b_sum} vs mean {b_mean}"
    );
}

#[test]
fn te_mode_last_wait_gives_lower_b() {
    // Two requests waited at different times: FirstWait closes at the first
    // wait (shorter window -> higher B) than LastWait.
    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 10.0 * MB,
            tag: ReqTag(0),
        },
        Op::IWrite {
            file: FileId(0),
            bytes: 10.0 * MB,
            tag: ReqTag(1),
        },
        Op::Compute { seconds: 1.0 },
        Op::Wait { tag: ReqTag(0) },
        Op::Compute { seconds: 1.0 },
        Op::Wait { tag: ReqTag(1) },
    ];
    let run = |mode| {
        let mut wc = WorldConfig::new(1);
        wc.pfs = PfsConfig {
            write_capacity: 1e9,
            read_capacity: 1e9,
        };
        let mut tc = TracerConfig::trace_only();
        tc.te_mode = mode;
        tc.peri_call_overhead = 0.0;
        let mut w = World::new(wc, vec![Program::from_ops(ops.clone())], Tracer::new(1, tc));
        w.create_file("out");
        w.run();
        std::mem::replace(w.hooks_mut(), Tracer::new(0, tc)).into_report()
    };
    let first = run(TeMode::FirstWait);
    let last = run(TeMode::LastWait);
    assert_eq!(first.phases.len(), 1);
    assert_eq!(last.phases.len(), 1);
    assert!(
        first.phases[0].b_required > last.phases[0].b_required * 1.5,
        "first-wait B {} should exceed last-wait B {}",
        first.phases[0].b_required,
        last.phases[0].b_required
    );
}

#[test]
fn peri_overhead_counts_calls() {
    let mut tc = TracerConfig::trace_only();
    tc.peri_call_overhead = 2e-6;
    let mut wc = WorldConfig::new(1);
    wc.pfs = PfsConfig {
        write_capacity: 1e9,
        read_capacity: 1e9,
    };
    let tracer = Tracer::new(1, tc);
    let mut w = World::new(wc, vec![periodic_app(10, MB, 0.01)], tracer);
    w.create_file("out");
    let s = w.run();
    let report = std::mem::replace(w.hooks_mut(), Tracer::new(0, tc)).into_report();
    // 10 loops × (submit + wait_enter + wait_exit) = 30 calls.
    assert_eq!(report.calls, 30);
    assert!((report.peri_overhead - 30.0 * 2e-6).abs() < 1e-12);
    // The injected overhead is visible in world accounting too.
    assert!((s.accounting[0].overhead - report.peri_overhead).abs() < 1e-12);
    // Peri overhead below 0.1 % of runtime (paper's claim at this scale).
    assert!(report.peri_overhead / s.makespan() < 0.001);
}

#[test]
fn exploit_dominates_when_hidden() {
    let (s, report) = run_app(2, 1e9, 5, 10.0 * MB, 1.0, TracerConfig::trace_only(), false);
    let d = report.decomposition();
    assert!(d.async_write_lost < 1e-6);
    assert!(d.async_write_exploit > 0.0);
    assert!((d.total - 2.0 * s.makespan()).abs() < 1e-6);
    let p = d.percentages();
    assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
}

#[test]
fn sync_app_has_no_async_records() {
    let ops = vec![
        Op::Compute { seconds: 1.0 },
        Op::Write {
            file: FileId(0),
            bytes: 10.0 * MB,
        },
    ];
    let mut wc = WorldConfig::new(2);
    wc.pfs = PfsConfig {
        write_capacity: 100.0 * MB,
        read_capacity: 100.0 * MB,
    };
    let tc = TracerConfig::trace_only();
    let mut w = World::new(wc, vec![Program::from_ops(ops); 2], Tracer::new(2, tc));
    w.create_file("out");
    w.run();
    let report = std::mem::replace(w.hooks_mut(), Tracer::new(0, tc)).into_report();
    assert!(report.phases.is_empty());
    assert!(report.spans.is_empty());
    assert_eq!(report.syncs.len(), 2);
    let d = report.decomposition();
    assert!(d.sync_write > 0.3);
}

#[test]
fn poll_wait_closes_tracer_phase_at_first_probe() {
    use mpisim::{FileId, Op, Program, ReqTag, World};
    const MB: f64 = 1e6;

    let ops = vec![
        Op::IWrite {
            file: FileId(0),
            bytes: 100.0 * MB,
            tag: ReqTag(0),
        },
        Op::Compute { seconds: 0.5 },
        Op::PollWait {
            tag: ReqTag(0),
            interval: 0.01,
        },
    ];
    let mut tc = TracerConfig::trace_only();
    tc.peri_call_overhead = 0.0;
    let mut wc = WorldConfig::new(1);
    wc.pfs = PfsConfig {
        write_capacity: 100.0 * MB,
        read_capacity: 100.0 * MB,
    };
    let mut w = World::new(wc, vec![Program::from_ops(ops)], Tracer::new(1, tc));
    w.create_file("f");
    w.run();
    let report = std::mem::replace(w.hooks_mut(), Tracer::new(0, tc)).into_report();
    assert_eq!(report.phases.len(), 1);
    // te = first probe (end of the 0.5 s compute), not the completion at 1 s:
    // B = 100 MB / 0.5 s = 200 MB/s.
    let p = &report.phases[0];
    assert!((p.te - p.ts - 0.5).abs() < 1e-6, "window {}", p.te - p.ts);
    assert!((p.b_required - 200.0 * MB).abs() < 0.1 * MB);
}

/// FTIO-style period detection recovers the loop period of a periodic
/// async-checkpoint application from its physical PFS signal.
#[test]
fn ftio_detects_hacc_loop_period() {
    // 12 loops of (iwrite 20 MB, compute 2.0 s, wait): period ≈ 2.0 s.
    let mut wc = WorldConfig::new(4);
    wc.pfs = PfsConfig {
        write_capacity: 500.0 * MB,
        read_capacity: 500.0 * MB,
    };
    let tc = TracerConfig::trace_only();
    let mut w = World::new(
        wc,
        vec![periodic_app(12, 20.0 * MB, 2.0); 4],
        Tracer::new(4, tc),
    );
    w.create_file("out");
    let s = w.run();
    let series = w.pfs_series(mpisim::Channel::Write).clone();
    let est = tmio::ftio::detect_period(&series, 0.0, s.makespan(), 2048)
        .expect("periodic signal detected");
    assert!(
        (est.period - 2.0).abs() < 0.25,
        "detected period {} should be ≈2.0 s",
        est.period
    );
}

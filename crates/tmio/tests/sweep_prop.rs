//! Property-based equivalence of the streaming Eq. 3 sweep-line
//! ([`tmio::IncrementalSweep`]) against the from-scratch oracle
//! ([`tmio::sweep`]).
//!
//! The incremental structure claims *bit-identical* output — same edge
//! order, same summation order, same residue guard — so every comparison
//! here is on the raw `f64` bit patterns of the series points, not on
//! approximate equality. Interval sets include the degenerate shapes real
//! runs produce: zero-length phases (a request waited on at its own submit
//! time), zero-value phases (fault-degraded requests that moved no bytes),
//! tiny normalized magnitudes, and heavy same-timestamp stacking.

use proptest::prelude::*;
use simcore::StepSeries;
use tmio::{sweep, IncrementalSweep, Interval};

/// Bitwise comparison of two step series.
fn bits(s: &StepSeries) -> Vec<(u64, u64)> {
    s.points()
        .iter()
        .map(|&(t, v)| (t.to_bits(), v.to_bits()))
        .collect()
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (
        0.0f64..50.0,
        // Durations: zero-length phases must flow through unharmed.
        prop_oneof![Just(0.0f64), 0.0f64..5.0, Just(1.0f64)],
        // Values: fault-degraded zeros, tiny normalized magnitudes, and
        // bandwidth-scale numbers that stress the residue guard.
        prop_oneof![Just(0.0f64), 1e-12f64..1e-9, 0.5f64..100.0, 1e8f64..1e10],
    )
        .prop_map(|(ts, dur, value)| Interval {
            ts,
            te: ts + dur,
            value,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pushing intervals in arrival order yields the oracle's series,
    /// bit for bit.
    #[test]
    fn incremental_matches_scratch(ivs in prop::collection::vec(arb_interval(), 0..60)) {
        let oracle = sweep(&ivs);
        let mut inc = IncrementalSweep::new();
        for iv in &ivs {
            inc.push(*iv);
        }
        prop_assert_eq!(bits(inc.series()), bits(&oracle));
        prop_assert_eq!(inc.max_value().to_bits(), oracle.max_value().to_bits());
        prop_assert_eq!(inc.len(), ivs.len());
        prop_assert_eq!(bits(&inc.into_series()), bits(&oracle));
    }

    /// Arrival order is irrelevant: reversed feeding still matches the
    /// oracle over the original set.
    #[test]
    fn arrival_order_is_irrelevant(ivs in prop::collection::vec(arb_interval(), 0..60)) {
        let oracle = sweep(&ivs);
        let mut inc = IncrementalSweep::with_capacity(ivs.len());
        for iv in ivs.iter().rev() {
            inc.push(*iv);
        }
        prop_assert_eq!(bits(inc.series()), bits(&oracle));
    }

    /// Querying between pushes (forcing rebuilds of the invalidated cache)
    /// never perturbs later results, and every mid-run answer equals the
    /// oracle over the prefix pushed so far.
    #[test]
    fn interleaved_queries_match_prefix_oracles(
        ivs in prop::collection::vec(arb_interval(), 1..30),
    ) {
        let mut inc = IncrementalSweep::new();
        for (i, iv) in ivs.iter().enumerate() {
            inc.push(*iv);
            let prefix_oracle = sweep(&ivs[..=i]);
            prop_assert_eq!(bits(inc.series()), bits(&prefix_oracle));
        }
    }

    /// Same-timestamp stacking (many identical phases, the collective-I/O
    /// shape) collapses to one change point per boundary in both paths.
    #[test]
    fn identical_stacked_intervals(n in 1usize..40, value in 0.5f64..1e6) {
        let iv = Interval { ts: 1.0, te: 2.0, value };
        let ivs = vec![iv; n];
        let oracle = sweep(&ivs);
        let mut inc = IncrementalSweep::new();
        for iv in &ivs {
            inc.push(*iv);
        }
        prop_assert_eq!(bits(inc.series()), bits(&oracle));
    }
}

/// Zero-length and zero-value phases contribute nothing to the series but
/// still count toward the residue scale and the accepted-interval count,
/// exactly as the oracle computes them.
#[test]
fn degenerate_phases_match_oracle() {
    let ivs = [
        Interval {
            ts: 1.0,
            te: 1.0,
            value: 1e12,
        },
        Interval {
            ts: 0.0,
            te: 4.0,
            value: 0.0,
        },
        Interval {
            ts: 2.0,
            te: 3.0,
            value: 7.5,
        },
    ];
    let oracle = sweep(&ivs);
    let mut inc = IncrementalSweep::new();
    for iv in &ivs {
        inc.push(*iv);
    }
    assert_eq!(bits(inc.series()), bits(&oracle));
    assert_eq!(inc.len(), 3);
    assert!(!inc.is_empty());
}

//! The motivation study (paper Figs. 1–2): eight HACC-IO-like jobs on a
//! 500-node cluster share a 120 GB/s PFS. Job 4 is the only one with
//! asynchronous I/O; capping it at its required bandwidth *during
//! contention* lets almost every other job finish earlier while job 4
//! itself slows only slightly.
//!
//! Run with: `cargo run --release --example cluster_contention`

use clustersim::{motivation_scenario, Cluster};
use simcore::SimTime;

fn main() {
    let (cfg, jobs_free) = motivation_scenario(false, 1.0);
    let (_, jobs_limited) = motivation_scenario(true, 1.0);

    println!(
        "=== {} nodes × {} cores, PFS {:.0} GB/s — 8 HACC-IO-like jobs, job 4 async ===\n",
        cfg.nodes,
        cfg.cores_per_node,
        cfg.pfs.write_capacity / 1e9
    );

    let free = Cluster::new(cfg, jobs_free).run();
    let limited = Cluster::new(cfg, jobs_limited).run();

    println!(
        "{:<6} {:>6} {:>14} {:>14} {:>9}",
        "job", "nodes", "runtime w/o", "runtime w/", "delta"
    );
    let mut winners = 0;
    for (a, b) in free.jobs.iter().zip(&limited.jobs) {
        let delta = b.runtime() - a.runtime();
        if delta < -0.5 {
            winners += 1;
        }
        println!(
            "{:<6} {:>6} {:>12.1} s {:>12.1} s {:>+8.1} s",
            a.name,
            a.nodes,
            a.runtime(),
            b.runtime(),
            delta
        );
    }
    println!(
        "\n{winners} of 8 jobs finished earlier with the limit; job 4 traded a small \
         slowdown for the\nbandwidth everyone else reused (Fig. 1)."
    );

    // Fig. 2: total PFS bandwidth over time, coarse ASCII rendering.
    println!("\ntotal PFS write bandwidth (GB/s), sampled every 10 s:");
    let horizon = free.makespan.max(limited.makespan);
    println!("{:>6}  {:>12}  {:>12}", "t [s]", "w/o limit", "with limit");
    let mut t = 0.0;
    while t <= horizon {
        let a = free.total_bandwidth.value_at(SimTime::from_secs(t)) / 1e9;
        let b = limited.total_bandwidth.value_at(SimTime::from_secs(t)) / 1e9;
        println!("{t:>6.0}  {a:>12.1}  {b:>12.1}");
        t += 10.0;
    }
    println!(
        "\nmakespan: {:.1} s without limit, {:.1} s with limit",
        free.makespan, limited.makespan
    );
}

//! The modified HACC-IO benchmark (paper Sec. VI-B) under each limiting
//! strategy.
//!
//! Usage: `cargo run --release --example hacc_io [ranks] [particles] [loops]`
//! (defaults: 64 ranks, 100 000 particles/rank, 10 loops — the Fig. 11
//! configuration at a laptop-friendly rank count).

use iobts::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let particles: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let loops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let hacc = HaccConfig {
        particles_per_rank: particles,
        loops,
        ..Default::default()
    };
    println!(
        "=== HACC-IO: {ranks} ranks × {particles} particles × {loops} loops \
         ({:.1} MB per rank per loop) ===\n",
        hacc.data_bytes() / 1e6
    );

    // First prove the data kernel does what the benchmark claims: fill,
    // serialize, read back, verify.
    let ps = hpcwl::hacc::kernel::fill(1000, 0);
    let bytes = hpcwl::hacc::kernel::serialize(&ps);
    let back = hpcwl::hacc::kernel::deserialize(&bytes);
    assert_eq!(hpcwl::hacc::kernel::verify(&ps, &back), 0);
    println!("data kernel: 1000 particles round-tripped, 0 mismatches\n");

    let strategies = [
        Strategy::Direct { tol: 1.1 },
        Strategy::UpOnly { tol: 1.1 },
        Strategy::Adaptive {
            tol: 1.1,
            tol_i: 0.5,
        },
        Strategy::None,
    ];

    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>9} {:>9} {:>9}",
        "strategy", "time [s]", "B [GB/s]", "peakT[GB/s]", "exploit%", "lost%", "sync%"
    );
    for strategy in strategies {
        let out = Session::builder(ExpConfig::new(ranks, strategy))
            .workload(HaccIo::new(hacc))
            .build()
            .run();
        let d = out.report.decomposition();
        let pct = d.percentages();
        // Peak throughput after the limiter engages (whole run for "none").
        let start = out.report.limit_start_time().unwrap_or(0.0);
        let peak = out
            .report
            .windows
            .iter()
            .filter(|w| w.start >= start)
            .map(|w| w.throughput())
            .fold(0.0, f64::max);
        println!(
            "{:<10} {:>9.2} {:>10.2} {:>11.2} {:>9.1} {:>9.1} {:>9.1}",
            strategy.name(),
            out.app_time(),
            out.report.required_bandwidth() / 1e9,
            peak / 1e9,
            pct[4] + pct[5],
            pct[2] + pct[3],
            pct[0] + pct[1],
        );
    }

    println!(
        "\nLimiting strategies keep the runtime (≈ unchanged) while flattening \
         the I/O bursts;\nexploitation of the compute phases rises, visible I/O \
         shrinks — the paper's Fig. 11/13 behaviour."
    );
}

//! I/O analysis extensions beyond the paper's headline: FTIO-style period
//! detection over the recorded bandwidth signal, the burst-buffer tier for
//! synchronous I/O (the paper's future work), and the JSON trace workflow.
//!
//! Run with: `cargo run --release --example io_analysis`

use iobts::prelude::*;
use pfsim::burstbuffer::{required_drain_bandwidth, sustainable};
use pfsim::BurstBufferConfig;
use tmio::ftio;

fn main() {
    let hacc = HaccConfig {
        particles_per_rank: 500_000,
        loops: 12,
        ..Default::default()
    };

    // ------------------------------------------------------------------
    // 1. FTIO: detect the application's I/O period from the PFS signal.
    println!("=== FTIO period detection (HACC-IO, 16 ranks, 12 loops) ===");
    let out = Session::builder(ExpConfig::new(16, Strategy::None))
        .workload(HaccIo::new(hacc))
        .build()
        .run();
    let loop_period = hacc.compute_seconds() + hacc.verify_seconds() + hacc.data_bytes() / 10e9; // + memcpy
    match ftio::detect_period(&out.pfs_write, 0.0, out.app_time(), 2048) {
        Some(est) => {
            println!(
                "detected period {:.2} s (nominal loop ≈ {:.2} s), confidence {:.2}",
                est.period, loop_period, est.confidence
            );
        }
        None => println!("no periodic signal found"),
    }

    // ------------------------------------------------------------------
    // 2. Burst buffer: the future-work required-bandwidth definition for
    //    synchronous I/O.
    println!("\n=== burst-buffer tier for the synchronous HACC-IO baseline ===");
    let bb = BurstBufferConfig {
        size_bytes: 4e9,
        absorb_rate: 5e9,
        drain_rate: 1e9,
    };
    let burst = hacc.data_bytes();
    let period = hacc.compute_seconds() + hacc.verify_seconds();
    println!(
        "per-rank burst {:.1} MB every {:.2} s -> required drain bandwidth {:.1} MB/s \
         (sustainable: {})",
        burst / 1e6,
        period,
        required_drain_bandwidth(burst, period, &bb).unwrap() / 1e6,
        sustainable(burst, period, &bb),
    );
    let direct = ExpConfig::new(16, Strategy::None).with_pfs(pfsim::PfsConfig {
        write_capacity: 1e9,
        read_capacity: 1e9,
    });
    let buffered = direct.clone().with_burst_buffer(bb);
    let sync_run = |cfg| {
        Session::builder(cfg)
            .workload(HaccIo::sync(hacc))
            .build()
            .run()
    };
    let d = sync_run(direct);
    let b = sync_run(buffered);
    let dw = |o: &iobts::experiments::RunOutput| o.report.decomposition().sync_write / 16.0;
    println!(
        "sync HACC-IO on a 1 GB/s PFS: {:.2} s without the tier, {:.2} s with it \
         (visible write time {:.2} s -> {:.2} s per rank)",
        d.app_time(),
        b.app_time(),
        dw(&d),
        dw(&b),
    );

    // ------------------------------------------------------------------
    // 3. The JSON trace: what the real TMIO writes at MPI_Finalize.
    println!("\n=== JSON trace (first 400 chars) ===");
    let json = out.report.to_json();
    println!("{} …", &json[..json.len().min(400)]);
    let back = tmio::Report::from_json(&json).expect("roundtrip");
    println!(
        "roundtrip: {} phases, B = {:.1} MB/s",
        back.phases.len(),
        back.required_bandwidth() / 1e6
    );
}

//! Quickstart: the smallest end-to-end use of the public API.
//!
//! Four ranks run a periodic async-checkpoint loop (the Fig. 3 pattern)
//! through the ergonomic closure API, while TMIO traces the required
//! bandwidth and the direct strategy throttles the next phase.
//!
//! Run with: `cargo run --release --example quickstart`

use iobts::prelude::*;

fn main() {
    let n_ranks = 4;

    // 1. Configure the runtime: limiter on (the "modified MPICH") …
    let world = WorldConfig::new(n_ranks).with_limiter(true);

    // 2. … and TMIO with the direct strategy, tol = 1.1 (the paper's value).
    let tracer = Tracer::new(
        n_ranks,
        TracerConfig::with_strategy(Strategy::Direct { tol: 1.1 }),
    );

    // 3. Write the application like an MPI program: each rank overlaps a
    //    16 MB checkpoint with 50 ms of compute, ten times (Fig. 3).
    let mut tw = Threaded::new(world, tracer);
    let ckpt = tw.create_file("checkpoint.dat");
    let (summary, tracer) = tw.run(move |ctx| {
        for _ in 0..10 {
            let req = ctx.iwrite(ckpt, 16e6); // MPI_File_iwrite_at
            ctx.compute(0.050); //               …overlapped compute…
            ctx.wait(req); //                    MPI_Wait
        }
        ctx.barrier();
    });

    // 4. Pull the TMIO report.
    let report = tracer.into_report();

    println!("=== quickstart: 4 ranks × 10 async checkpoints of 16 MB ===\n");
    println!("application runtime : {:>9.3} s", summary.makespan());
    println!(
        "app-level required bandwidth B : {:>8.1} MB/s",
        report.required_bandwidth() / 1e6
    );
    println!(
        "peri-runtime overhead: {:.3} ms over {} intercepted calls",
        report.peri_overhead * 1e3,
        report.calls
    );

    println!("\nrank 0 phases (Fig. 3 view):");
    println!(
        "{:>5} {:>10} {:>10} {:>14} {:>14}",
        "phase", "ts [s]", "te [s]", "B [MB/s]", "limit [MB/s]"
    );
    for p in report.phases.iter().filter(|p| p.rank == 0) {
        println!(
            "{:>5} {:>10.4} {:>10.4} {:>14.1} {:>14}",
            p.phase,
            p.ts,
            p.te,
            p.b_required / 1e6,
            p.limit_during
                .map(|l| format!("{:.1}", l / 1e6))
                .unwrap_or_else(|| "-".into()),
        );
    }

    let d = report.decomposition();
    let pct = d.percentages();
    println!(
        "\ntime split: {:.1}% async-write exploit, {:.1}% lost in waits, {:.1}% compute (I/O free)",
        pct[4], pct[2], pct[6]
    );

    println!("\nThe throughput of phase j+1 follows the limit computed from phase j:");
    for w in report.windows.iter().filter(|w| w.rank == 0).take(4) {
        println!(
            "  window [{:.3}, {:.3}] s  T = {:>7.1} MB/s",
            w.start,
            w.end,
            w.throughput() / 1e6
        );
    }
}

//! The WaComM-like pollutant-transport workload (paper Sec. VI-A): a real
//! Lagrangian kernel plus the asynchronous per-iteration write schedule,
//! with and without bandwidth limiting.
//!
//! Usage: `cargo run --release --example wacomm [ranks] [iterations]`
//! (defaults: 96 ranks, 50 iterations — the Fig. 8/9 configuration).

use hpcwl::wacomm::kernel;
use iobts::prelude::*;
use simcore::SimTime;

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);
    let iterations: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);

    // --- The physics: advect a real (scaled-down) particle population the
    // way WaComM does each simulated hour, so the bytes written are honest.
    let mut particles = kernel::seed(20_000, (10_000.0, 5_000.0, 2.0));
    let mut trajectory = Vec::new();
    for hour in 0..6 {
        kernel::advect(&mut particles, 3600.0, 2e-6);
        trajectory.push((hour, kernel::mean_health(&particles)));
    }
    println!("=== WaComM kernel: 20k particles, 6 simulated hours ===");
    for (hour, health) in &trajectory {
        println!("  hour {hour}: mean pollutant health {health:.4}");
    }
    let bytes = kernel::serialize(&particles);
    println!(
        "  per-iteration output: {:.2} MB\n",
        bytes.len() as f64 / 1e6
    );

    // --- The I/O study (Figs. 8/9): same schedule at full particle count.
    let wc = WacommConfig {
        iterations,
        ..Default::default()
    };
    println!(
        "=== WaComM-like run: {ranks} ranks, {iterations} iterations, \
         2e6 particles total ===\n"
    );

    let run = |strategy| {
        Session::builder(ExpConfig::new(ranks, strategy))
            .workload(Wacomm::new(wc))
            .build()
            .run()
    };
    let none = run(Strategy::None);
    let uponly = run(Strategy::UpOnly { tol: 1.1 });
    let direct = run(Strategy::Direct { tol: 2.0 });

    println!(
        "{:<16} {:>9} {:>11} {:>12} {:>9}",
        "run", "time [s]", "B [MB/s]", "peak T[MB/s]", "exploit%"
    );
    for (name, out) in [
        ("no limit", &none),
        ("up-only t=1.1", &uponly),
        ("direct t=2.0", &direct),
    ] {
        let d = out.report.decomposition();
        let start = out.report.limit_start_time().unwrap_or(0.0);
        let peak = out
            .report
            .windows
            .iter()
            .filter(|w| w.start >= start)
            .map(|w| w.throughput())
            .fold(0.0, f64::max);
        println!(
            "{:<16} {:>9.2} {:>11.1} {:>12.1} {:>9.1}",
            name,
            out.app_time(),
            out.report.required_bandwidth() / 1e6,
            peak / 1e6,
            100.0 * d.exploit() / d.total.max(1e-12),
        );
    }

    // Fig. 9's headline: under up-only the throughput follows the limit of
    // the previous phase. Show the first few phases of rank 0.
    println!("\nrank 0 under up-only (T of phase j+1 tracks the limit from phase j):");
    println!("{:>5} {:>12} {:>14}", "phase", "B [MB/s]", "limit [MB/s]");
    for p in uponly.report.phases.iter().filter(|p| p.rank == 0).take(6) {
        println!(
            "{:>5} {:>12.1} {:>14}",
            p.phase,
            p.b_required / 1e6,
            p.limit_during
                .map(|l| format!("{:.1}", l / 1e6))
                .unwrap_or_else(|| "-".into())
        );
    }

    // Burst flattening visible on the physical PFS series.
    let t_end = SimTime::from_secs(none.app_time());
    println!(
        "\npeak physical PFS write rate: {:>8.1} MB/s without limit, {:>8.1} MB/s with up-only",
        none.pfs_write.max_value() / 1e6,
        uponly
            .pfs_write
            .points()
            .iter()
            .filter(|(t, _)| *t >= uponly.report.limit_start_time().unwrap_or(0.0))
            .map(|(_, v)| *v)
            .fold(0.0, f64::max)
            / 1e6
    );
    let _ = t_end;
}

//! Offline stand-in for the subset of `criterion 0.5` this workspace uses.
//!
//! Keeps the macro and builder surface (`criterion_group!`,
//! `criterion_main!`, `bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`) but replaces the statistics engine
//! with a simple calibrated-loop timer that prints mean ns/iter.

use std::fmt;
use std::time::Instant;

/// Re-export for benches that import it from criterion rather than std.
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many measured samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`group/bench` naming).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with a fixed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Benchmarks a closure under this group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Marks the group complete.
    pub fn finish(self) {}
}

/// Identifier for one benchmark inside a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<N: fmt::Display, P: fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            mean_ns: None,
        }
    }

    /// Times `f`, storing the mean over `samples` timed runs after warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and per-sample iteration calibration: aim for samples that
        // are long enough to time (≥ ~1ms) without rerunning slow workloads
        // excessively.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed().as_secs_f64();
        let iters_per_sample = if once > 1e-3 {
            1
        } else {
            ((1e-3 / once.max(1e-9)) as usize).clamp(1, 1_000_000)
        };
        let samples = if once > 0.25 {
            3.min(self.samples)
        } else {
            self.samples
        };
        let mut total = 0.0;
        let mut total_iters = 0usize;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += t0.elapsed().as_secs_f64();
            total_iters += iters_per_sample;
        }
        self.mean_ns = Some(total / total_iters as f64 * 1e9);
    }

    fn report(&self, name: &str) {
        match self.mean_ns {
            Some(ns) => println!("bench: {name:<50} {:>14.1} ns/iter", ns),
            None => println!("bench: {name:<50} (no measurement)"),
        }
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_something() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}

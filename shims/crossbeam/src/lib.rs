//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! bounded MPMC-ish channels. Implemented over `std::sync::mpsc`'s
//! `sync_channel`, which matches the blocking-send semantics the
//! virtual-time thread bridge relies on (including rendezvous at cap 0).

/// Bounded blocking channels.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel; `send` blocks when full.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is accepted or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn rendezvous_and_buffered() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);

        let (tx0, rx0) = channel::bounded::<u32>(0);
        let h = std::thread::spawn(move || tx0.send(42).unwrap());
        assert_eq!(rx0.recv().unwrap(), 42);
        h.join().unwrap();
    }
}

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate: no shrinking, no persisted failure
//! seeds. Case generation is fully deterministic — the RNG for case `k` of
//! test `t` is derived from `hash(t) ^ k` — so a failing case reproduces
//! exactly on re-run, and the printed inputs identify it.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy};

/// Runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::ProptestConfig` (cases knob only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};
    use std::fmt;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            // Finite, mixed-magnitude values; real proptest is wilder but
            // nothing in this workspace relies on NaN/inf generation.
            let m = rng.gen::<f64>() * 2.0 - 1.0;
            let e = rng.gen_range(-60i32..60) as f64;
            m * e.exp2()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// `prop::collection` strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// `None` about 25% of the time, `Some` otherwise.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            if rng.gen::<f64>() < 0.25 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Derives the deterministic RNG for one test case. Public only for the
/// `proptest!` macro expansion.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u64) -> SmallRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Declares property tests. Supports the `#![proptest_config(..)]` header
/// and `fn name(pat in strategy, ...) { body }` items, like the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::__case_rng(stringify!($name), __case as u64);
                let __vals = ( $( $crate::Strategy::generate(&($strat), &mut __rng), )+ );
                let __desc = format!("{:?}", __vals);
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ( $($pat,)+ ) = __vals;
                        $body
                    }),
                );
                if let ::std::result::Result::Err(__e) = __result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs {}",
                        stringify!($name), __case, __cfg.cases, __desc
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( ($cfg:expr) ) => {};
}

/// Asserts inside a property body (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among boxed strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_oneof(pair in (0.0f64..1.0, prop_oneof![Just(1u8), Just(2)]),
                            flag in any::<bool>()) {
            let (x, k) = pair;
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(k == 1 || k == 2);
            let _ = flag;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..10);
        let a = s.generate(&mut crate::__case_rng("t", 3));
        let b = s.generate(&mut crate::__case_rng("t", 3));
        assert_eq!(a, b);
    }
}

//! The [`Strategy`] trait and combinators for the proptest shim.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (clonable, single-threaded).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut SmallRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among strategies of a common value type (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union; panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64) plus the
//! [`Rng`], [`RngCore`] and [`SeedableRng`] traits with `gen`/`gen_range`
//! for the concrete types the simulator draws. The streams are *not*
//! bit-compatible with upstream `rand`, but they are deterministic and pass
//! the statistical checks in `simcore::rng`.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding from a single `u64`, mirroring `SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is expanded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Standard-distribution sampling for the types used in this workspace.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling over a range type; mirrors `rand::distributions::uniform`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from `rng`; panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo draw on 64 fresh bits: bias is < span/2^64, far below
                // what any statistical check in this workspace can resolve.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// Small fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `SmallRng` uses on 64-bit
    /// targets. State is expanded from the seed with SplitMix64 so that
    /// similar seeds produce uncorrelated streams.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
            let k = r.gen_range(3u32..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn int_range_covers_all_levels() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

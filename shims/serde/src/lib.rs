//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! tree model: [`Serialize`] renders a value into a [`Value`], and
//! [`Deserialize`] rebuilds a value from a `&Value`. `serde_json` (the
//! sibling shim) prints and parses `Value` trees. The derive macros in
//! `serde_derive` target exactly this trait surface.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number, carried as `f64`.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object. Insertion-ordered pairs so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error with a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the serialized tree form.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the serialized tree form.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- derive-support helpers (stable names used by generated code) ----

/// Fetches a named struct field; used by derived `Deserialize` impls.
pub fn __field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Checks that `v` is a sequence of length `n`; used by derived impls.
pub fn __seq(v: &Value, n: usize) -> Result<&[Value], Error> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error::custom(format!(
            "expected sequence of length {n}, got {}",
            items.len()
        ))),
        other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
    }
}

/// Splits an externally-tagged enum value into `(variant, payload)`.
pub fn __variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
        other => Err(Error::custom(format!("expected enum value, got {other:?}"))),
    }
}

// ---- primitive impls ----

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null (as in serde_json).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = __seq(v, N)?;
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let v: Option<f64> = Some(1.5);
        assert_eq!(
            Option::<f64>::deserialize(&v.serialize()).unwrap(),
            Some(1.5)
        );
        let n: Option<f64> = None;
        assert_eq!(Option::<f64>::deserialize(&n.serialize()).unwrap(), None);
    }

    #[test]
    fn tuple_vec_round_trip() {
        let v: Vec<(f64, f64)> = vec![(0.0, 1.0), (2.5, -3.0)];
        let tree = v.serialize();
        assert_eq!(Vec::<(f64, f64)>::deserialize(&tree).unwrap(), v);
    }

    #[test]
    fn int_rejects_fraction() {
        assert!(u32::deserialize(&Value::Num(1.5)).is_err());
        assert_eq!(u32::deserialize(&Value::Num(7.0)).unwrap(), 7);
    }
}

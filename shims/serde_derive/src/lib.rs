//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde shim.
//!
//! A hand-rolled token walker (no `syn`/`quote`) that supports exactly the
//! shapes this workspace derives on: non-generic named structs, tuple and
//! newtype structs, and externally-tagged enums with unit, tuple and struct
//! variants. `#[serde(...)]` attributes are not supported and will panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Ast {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with the given arity (1 = newtype).
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum with its variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VKind,
}

enum VKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ast = parse(input);
    gen_serialize(&ast)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ast = parse(input);
    gen_deserialize(&ast)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ----

fn parse(input: TokenStream) -> Ast {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` not supported");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(named_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_top_level_fields(g.stream()))
            }
            _ => Kind::Unit,
        },
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde shim derive: malformed enum `{name}`"),
            };
            Kind::Enum(parse_variants(body))
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Ast { name, kind }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — attribute (includes doc comments).
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

/// Splits a token stream on top-level commas. Commas inside groups are
/// invisible (groups are single trees); commas inside generic argument
/// lists are tracked with an angle-bracket depth counter.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle: i32 = 0;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn named_field_names(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            expect_ident(&chunk, &mut i)
        })
        .collect()
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = expect_ident(&chunk, &mut i);
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VKind::Named(named_field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VKind::Tuple(count_top_level_fields(g.stream()))
                }
                None => VKind::Unit,
                other => panic!("serde shim derive: unexpected token in variant: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---- code generation ----

fn gen_serialize(ast: &Ast) -> String {
    let name = &ast.name;
    let body = match &ast.kind {
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", pairs.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::serialize(__f0))]),"
                        ),
                        VKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VKind::Named(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(vec![{}]))]),",
                                fields.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(ast: &Ast) -> String {
    let name = &ast.name;
    let body = match &ast.kind {
        Kind::Unit => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             format!(\"expected null for unit struct {name}, got {{:?}}\", __other))) }}"
        ),
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::__seq(__v, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::__field(__v, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VKind::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VKind::Tuple(1) => format!(
                            "\"{vn}\" => {{ let __p = __payload.ok_or_else(|| \
                             ::serde::Error::custom(\"missing payload for variant {vn}\"))?; \
                             ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__p)?)) }}"
                        ),
                        VKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __p = __payload.ok_or_else(|| \
                                 ::serde::Error::custom(\"missing payload for variant {vn}\"))?; \
                                 let __items = ::serde::__seq(__p, {n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                        VKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(\
                                         ::serde::__field(__p, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __p = __payload.ok_or_else(|| \
                                 ::serde::Error::custom(\"missing payload for variant {vn}\"))?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = ::serde::__variant(__v)?;\n\
                 match __tag {{ {} __other => ::std::result::Result::Err(\
                 ::serde::Error::custom(format!(\"unknown variant `{{}}` of {name}\", __other))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

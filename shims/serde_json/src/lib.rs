//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str` and `Error`, built on the
//! serde shim's [`Value`] tree.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-`Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize(&v)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

// ---- writer ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, out, indent, depth),
        Value::Map(pairs) => write_map(pairs, out, indent, depth),
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a fractional part; Rust's shortest
        // f64 Display already guarantees round-tripping for the rest.
        let i = n as i64;
        out.push_str(&i.to_string());
    } else {
        out.push_str(&n.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: usize, depth: usize) {
    out.push('\n');
    for _ in 0..indent * depth {
        out.push(' ');
    }
}

fn write_seq(items: &[Value], out: &mut String, indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            newline_indent(out, ind, depth + 1);
        }
        write_value(item, out, indent, depth + 1);
    }
    if let Some(ind) = indent {
        newline_indent(out, ind, depth);
    }
    out.push(']');
}

fn write_map(pairs: &[(String, Value)], out: &mut String, indent: Option<usize>, depth: usize) {
    if pairs.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            newline_indent(out, ind, depth + 1);
        }
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(v, out, indent, depth + 1);
    }
    if let Some(ind) = indent {
        newline_indent(out, ind, depth);
    }
    out.push('}');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes first, then decode it as UTF-8.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| Error::custom(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::custom(e.to_string()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(Error::custom("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let v: Vec<f64> = vec![0.0, -1.5, 1e-9, 1e18, f64::MAX];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn round_trip_nested() {
        let v: Vec<(f64, f64)> = vec![(0.0, 1.0), (0.5, 2.25)];
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\tcafé".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&5u64).unwrap(), "5");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5 extra").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }
}

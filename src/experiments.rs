//! Canonical experiment runners shared by examples, integration tests and
//! the figure-regeneration harness.
//!
//! Each runner wires a workload ([`hpcwl`]) into a world ([`mpisim`]) under
//! the TMIO tracer ([`tmio`]) with paper-like defaults, and returns both the
//! runtime summary and the TMIO report.

use hpcwl::hacc::HaccConfig;
use hpcwl::wacomm::WacommConfig;
use mpisim::{Program, RunSummary, World, WorldConfig};
use pfsim::PfsConfig;
use simcore::{FaultPlan, Noise, StepSeries};
use tmio::{Report, Strategy, Tracer, TracerConfig};

/// Common experiment configuration (the knobs the paper varies).
///
/// Not `Copy`: the embedded [`FaultPlan`] owns its schedules. Clone
/// explicitly when deriving configs in sweeps.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// MPI ranks.
    pub n_ranks: usize,
    /// Limiting strategy ([`Strategy::None`] = trace only, limiter off).
    pub strategy: Strategy,
    /// Master seed.
    pub seed: u64,
    /// Compute-phase noise. Quantized so synchronized ranks stay in a
    /// bounded number of PFS flow groups (see DESIGN.md §4).
    pub compute_noise: Noise,
    /// PFS capacities (defaults to Lichtenberg's 106/120 GB/s).
    pub pfs: PfsConfig,
    /// ADIO sub-request size, bytes.
    pub subreq_bytes: f64,
    /// Optional PFS capacity noise (I/O variability, Fig. 14).
    pub capacity_noise: Option<mpisim::CapacityNoiseCfg>,
    /// I/O↔compute interference strength (0 = off); see
    /// [`mpisim::WorldConfig::interference_alpha`].
    pub interference_alpha: f64,
    /// Whether the limiter also paces blocking I/O (paper default: true).
    pub limit_sync_ops: bool,
    /// Optional burst-buffer write tier (future-work extension).
    pub burst_buffer: Option<pfsim::BurstBufferConfig>,
    /// Window-end semantics for `B_{i,j}` (paper default: first wait).
    pub te_mode: tmio::TeMode,
    /// Per-request aggregation into `B_{i,j}` (paper default: sum).
    pub aggregation: tmio::Aggregation,
    /// Record PFS rate series (disable in large sweeps).
    pub record_pfs: bool,
    /// Seeded fault schedule (the chaos harness); the default empty plan
    /// reproduces the fault-free run bit-for-bit.
    pub faults: FaultPlan,
}

impl ExpConfig {
    /// Paper-like defaults for `n_ranks` ranks under `strategy`.
    pub fn new(n_ranks: usize, strategy: Strategy) -> Self {
        ExpConfig {
            n_ranks,
            strategy,
            seed: 2024,
            compute_noise: Noise::QuantizedRel {
                amplitude: 0.03,
                levels: 8,
            },
            pfs: PfsConfig::default(),
            subreq_bytes: 1024.0 * 1024.0,
            capacity_noise: None,
            interference_alpha: 0.0,
            limit_sync_ops: true,
            burst_buffer: None,
            te_mode: tmio::TeMode::FirstWait,
            aggregation: tmio::Aggregation::Sum,
            record_pfs: true,
            faults: FaultPlan::default(),
        }
    }

    /// Disables compute noise (exact analytic checks in tests).
    pub fn exact(mut self) -> Self {
        self.compute_noise = Noise::None;
        self
    }

    /// Installs a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    fn world_config(&self) -> WorldConfig {
        let mut wc = WorldConfig::new(self.n_ranks)
            .with_limiter(self.strategy.limits())
            .with_compute_noise(self.compute_noise)
            .with_seed(self.seed);
        wc.pfs = self.pfs;
        wc.subreq_bytes = self.subreq_bytes;
        wc.capacity_noise = self.capacity_noise;
        wc.interference_alpha = self.interference_alpha;
        wc.limit_sync_ops = self.limit_sync_ops;
        wc.burst_buffer = self.burst_buffer;
        wc.record_pfs = self.record_pfs;
        wc.faults = self.faults.clone();
        wc
    }

    fn tracer_config(&self) -> TracerConfig {
        let mut tc = TracerConfig::with_strategy(self.strategy);
        tc.te_mode = self.te_mode;
        tc.aggregation = self.aggregation;
        tc
    }
}

/// Everything one run produces.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Runtime summary (makespan, per-rank accounting).
    pub summary: RunSummary,
    /// The TMIO report (phases, windows, decomposition, overheads).
    pub report: Report,
    /// Physical PFS write-rate series.
    pub pfs_write: StepSeries,
    /// Physical PFS read-rate series.
    pub pfs_read: StepSeries,
}

impl RunOutput {
    /// Application runtime (no post-runtime overhead), seconds.
    pub fn app_time(&self) -> f64 {
        self.summary.makespan()
    }

    /// Total runtime including TMIO's modeled post-runtime overhead.
    pub fn total_time(&self) -> f64 {
        self.app_time() + self.report.post_overhead
    }
}

/// Runs programs under the tracer and collects everything.
fn run_programs(cfg: &ExpConfig, programs: Vec<Program>, files: &[&str]) -> RunOutput {
    let tracer = Tracer::new(cfg.n_ranks, cfg.tracer_config());
    let mut world = World::new(cfg.world_config(), programs, tracer);
    for f in files {
        world.create_file(f);
    }
    let summary = world.run();
    let pfs_write = world.pfs_series(mpisim::Channel::Write).clone();
    let pfs_read = world.pfs_series(mpisim::Channel::Read).clone();
    let report = std::mem::replace(
        world.hooks_mut(),
        Tracer::new(0, TracerConfig::trace_only()),
    )
    .into_report();
    RunOutput {
        summary,
        report,
        pfs_write,
        pfs_read,
    }
}

/// Runs the modified HACC-IO benchmark (Fig. 12 structure). Each rank
/// writes to its own file, as in the paper's non-collective setting.
pub fn run_hacc(cfg: &ExpConfig, hacc: &HaccConfig) -> RunOutput {
    // One file per rank: the paper uses individual file pointers to
    // distinct files. The simulated registry only tracks byte counts, so a
    // single registered name per rank suffices.
    let programs: Vec<Program> = (0..cfg.n_ranks)
        .map(|r| hacc.program(mpisim::FileId(r as u32)))
        .collect();
    let names: Vec<String> = (0..cfg.n_ranks).map(|r| format!("hacc.{r}.dat")).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    run_programs(cfg, programs, &refs)
}

/// Runs the vanilla synchronous HACC-IO baseline.
pub fn run_hacc_sync(cfg: &ExpConfig, hacc: &HaccConfig) -> RunOutput {
    let programs: Vec<Program> = (0..cfg.n_ranks)
        .map(|r| hacc.program_sync(mpisim::FileId(r as u32)))
        .collect();
    let names: Vec<String> = (0..cfg.n_ranks).map(|r| format!("hacc.{r}.dat")).collect();
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    run_programs(cfg, programs, &refs)
}

/// Runs the WaComM-like pollutant transport workload.
pub fn run_wacomm(cfg: &ExpConfig, wc: &WacommConfig) -> RunOutput {
    let input = mpisim::FileId(0);
    let programs: Vec<Program> = (0..cfg.n_ranks)
        .map(|r| wc.program(r, cfg.n_ranks, input, mpisim::FileId(1 + r as u32)))
        .collect();
    let mut names: Vec<String> = vec!["wacomm.in".to_string()];
    names.extend((0..cfg.n_ranks).map(|r| format!("wacomm.{r}.out")));
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    run_programs(cfg, programs, &refs)
}

/// Runs the original synchronous WaComM++ baseline.
pub fn run_wacomm_sync(cfg: &ExpConfig, wc: &WacommConfig) -> RunOutput {
    let input = mpisim::FileId(0);
    let programs: Vec<Program> = (0..cfg.n_ranks)
        .map(|r| wc.program_sync(r, cfg.n_ranks, input, mpisim::FileId(1 + r as u32)))
        .collect();
    let mut names: Vec<String> = vec!["wacomm.in".to_string()];
    names.extend((0..cfg.n_ranks).map(|r| format!("wacomm.{r}.out")));
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    run_programs(cfg, programs, &refs)
}

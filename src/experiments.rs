//! Canonical experiment runners shared by examples, integration tests and
//! the figure-regeneration harness.
//!
//! This module is now a thin façade over the [`session`] crate: the
//! pipeline lives behind [`session::Session`] (config × workload × tracer
//! × fault plan), and the historical free functions re-exported here are
//! convenience wrappers over it. Prefer building a
//! [`Session`](session::Session) directly for new code — any
//! [`session::Workload`] plugs in without touching the runners.

pub use session::{run_hacc, run_hacc_sync, run_wacomm, run_wacomm_sync, ExpConfig, RunOutput};

//! # iobts — "I/O Behind the Scenes" in Rust
//!
//! A full-system reproduction of *Tarraf et al., "I/O Behind the Scenes:
//! Bandwidth Requirements of HPC Applications with Asynchronous I/O"*
//! (IEEE CLUSTER 2024) on a from-scratch simulation substrate:
//!
//! * [`tmio`] — the paper's core library: required-bandwidth tracing,
//!   limiting strategies, application-level aggregation;
//! * [`mpisim`] — the MPI-like virtual-time runtime with the ADIO-style
//!   throttling I/O thread (the "modified MPICH");
//! * [`pfsim`] — the fluid-flow parallel file system;
//! * [`hpcwl`] — the HACC-IO and WaComM-like workloads;
//! * [`clustersim`] — the batch-system simulator behind the motivation
//!   study;
//! * [`simcore`] — the discrete-event core.
//!
//! * [`session`] — the canonical run pipeline: the `Workload` trait, the
//!   `ExpConfig` builder, the `Session` entry point and streaming
//!   `MetricsSink` backends.
//!
//! [`experiments`] re-exports the session crate's standard configurations
//! and legacy runner wrappers used by the examples, the integration tests
//! and the figure-regeneration harness.

#![warn(missing_docs)]

pub use clustersim;
pub use hpcwl;
pub use mpisim;
pub use pfsim;
pub use session;
pub use simcore;
pub use tmio;

pub mod experiments;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::experiments::{run_hacc, run_wacomm, ExpConfig, RunOutput};
    pub use hpcwl::hacc::HaccConfig;
    pub use hpcwl::wacomm::WacommConfig;
    pub use mpisim::{threaded::Threaded, WatchdogCfg, WorldConfig};
    pub use session::{
        HaccIo, MemorySink, MetricsSink, RawWorkload, Session, SessionBuilder, SimError, SimResult,
        StallSnapshot, Wacomm, Workload,
    };
    pub use tmio::{Strategy, Tracer, TracerConfig};
}

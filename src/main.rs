//! `iobts` — command-line front end to the reproduction.
//!
//! ```text
//! iobts hacc    --ranks 64 --particles 100000 --loops 10 --strategy direct --tol 1.1
//! iobts wacomm  --ranks 96 --iterations 50 --strategy up-only --json trace.json
//! iobts cluster --limit
//! iobts period  --ranks 16
//! iobts help
//! ```
//!
//! Every run prints the TMIO summary (required bandwidth, time split,
//! overheads); `--json PATH` additionally writes the full trace in the
//! format the real TMIO emits at `MPI_Finalize`.

use iobts::experiments::{ExpConfig, RunOutput};
use iobts::prelude::*;
use iobts::session::JsonReportSink;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "hacc" => cmd_hacc(&opts),
        "wacomm" => cmd_wacomm(&opts),
        "cluster" => cmd_cluster(&opts),
        "period" => cmd_period(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
iobts — \"I/O Behind the Scenes\" (CLUSTER'24) reproduction

USAGE:
    iobts <COMMAND> [OPTIONS]

COMMANDS:
    hacc      run the modified HACC-IO benchmark under TMIO
    wacomm    run the WaComM-like transport workload under TMIO
    cluster   run the 8-job motivation study (Figs. 1-2)
    period    FTIO-style period detection on a HACC-IO run
    help      show this text

OPTIONS (with defaults):
    --ranks N          MPI ranks                      [64]
    --particles N      particles per rank (hacc)      [100000]
    --loops N          HACC-IO loops                  [10]
    --iterations N     WaComM iterations              [50]
    --strategy S       none|direct|up-only|adaptive|mfu  [direct]
    --tol X            tolerance factor               [1.1]
    --seed N           master seed                    [2024]
    --limit            cluster: cap job 4 during contention
    --json PATH        write the TMIO trace as JSON";

struct Opts(HashMap<String, String>);

impl Opts {
    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    fn strategy(&self) -> Result<Strategy, String> {
        let tol: f64 = self.get("tol", 1.1)?;
        match self
            .0
            .get("strategy")
            .map(|s| s.as_str())
            .unwrap_or("direct")
        {
            "none" => Ok(Strategy::None),
            "direct" => Ok(Strategy::Direct { tol }),
            "up-only" | "uponly" => Ok(Strategy::UpOnly { tol }),
            "adaptive" => Ok(Strategy::Adaptive { tol, tol_i: 0.5 }),
            "mfu" => Ok(Strategy::Mfu { tol, bins: 32 }),
            other => Err(format!("unknown strategy `{other}`")),
        }
    }
}

fn parse_opts(args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut map = HashMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        // Flags without values.
        if key == "limit" {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = args.next() else {
            return Err(format!("--{key} needs a value"));
        };
        map.insert(key.to_string(), value);
    }
    Ok(Opts(map))
}

fn print_summary(out: &RunOutput) {
    let report = &out.report;
    let d = report.decomposition();
    let pct = d.percentages();
    println!(
        "runtime            : {:>10.3} s (app) + {:.3} s post overhead",
        out.app_time(),
        report.post_overhead
    );
    println!(
        "required bandwidth : {:>10.1} MB/s (app level, max over regions)",
        report.required_bandwidth() / 1e6
    );
    if let Some(t) = report.limit_start_time() {
        println!("limiter engaged at : {t:>10.3} s");
    }
    println!("phases traced      : {:>10}", report.phases.len());
    println!(
        "intercepted calls  : {:>10}  (peri overhead {:.3} ms)",
        report.calls,
        report.peri_overhead * 1e3
    );
    println!("\ntime split (% of total rank-time):");
    let labels = [
        "sync write",
        "sync read",
        "async write lost",
        "async read lost",
        "async write exploit",
        "async read exploit",
        "compute (I/O free)",
    ];
    for (l, p) in labels.iter().zip(pct) {
        if p > 0.005 {
            println!("  {l:<20} {p:>6.1} %");
        }
    }
}

/// Runs a fully built session, streaming the TMIO trace to `--json PATH`
/// when requested, and prints the summary.
fn run_and_report(opts: &Opts, session: &Session) -> Result<(), String> {
    let out = match opts.0.get("json") {
        Some(path) => {
            let mut sink = JsonReportSink::new(path);
            let out = session.try_run_into(&mut sink).map_err(|e| e.to_string())?;
            sink.finish().map_err(|e| format!("writing {path}: {e}"))?;
            out
        }
        None => session.try_run().map_err(|e| e.to_string())?,
    };
    print_summary(&out);
    if let Some(path) = opts.0.get("json") {
        println!("\ntrace written to {path}");
    }
    Ok(())
}

fn cmd_hacc(opts: &Opts) -> Result<(), String> {
    let ranks = opts.get("ranks", 64usize)?;
    let hacc = HaccConfig {
        particles_per_rank: opts.get("particles", 100_000u64)?,
        loops: opts.get("loops", 10usize)?,
        ..Default::default()
    };
    let cfg = ExpConfig::new(ranks, opts.strategy()?).with_seed(opts.get("seed", 2024u64)?);
    println!(
        "HACC-IO: {ranks} ranks × {} particles × {} loops, strategy {}\n",
        hacc.particles_per_rank,
        hacc.loops,
        cfg.strategy.name()
    );
    let session = Session::builder(cfg)
        .workload(HaccIo::new(hacc))
        .try_build()
        .map_err(|e| e.to_string())?;
    run_and_report(opts, &session)
}

fn cmd_wacomm(opts: &Opts) -> Result<(), String> {
    let ranks = opts.get("ranks", 96usize)?;
    let wc = WacommConfig {
        iterations: opts.get("iterations", 50usize)?,
        ..Default::default()
    };
    let cfg = ExpConfig::new(ranks, opts.strategy()?).with_seed(opts.get("seed", 2024u64)?);
    println!(
        "WaComM: {ranks} ranks, {} iterations, strategy {}\n",
        wc.iterations,
        cfg.strategy.name()
    );
    let session = Session::builder(cfg)
        .workload(Wacomm::new(wc))
        .try_build()
        .map_err(|e| e.to_string())?;
    run_and_report(opts, &session)
}

fn cmd_cluster(opts: &Opts) -> Result<(), String> {
    use clustersim::{motivation_scenario, Cluster};
    let limit = opts.flag("limit");
    let (cfg, jobs) = motivation_scenario(limit, 1.0);
    println!(
        "cluster: {} nodes, PFS {:.0} GB/s, 8 jobs, job 4 async, limit {}\n",
        cfg.nodes,
        cfg.pfs.write_capacity / 1e9,
        if limit {
            "ON (during contention)"
        } else {
            "off"
        }
    );
    let r = Cluster::new(cfg, jobs).run();
    println!(
        "{:<6} {:>6} {:>10} {:>10} {:>10}",
        "job", "nodes", "start", "end", "runtime"
    );
    for j in &r.jobs {
        println!(
            "{:<6} {:>6} {:>10.1} {:>10.1} {:>10.1}",
            j.name,
            j.nodes,
            j.start,
            j.end,
            j.runtime()
        );
    }
    println!("\nmakespan {:.1} s", r.makespan);
    Ok(())
}

fn cmd_period(opts: &Opts) -> Result<(), String> {
    let ranks = opts.get("ranks", 16usize)?;
    let hacc = HaccConfig {
        particles_per_rank: opts.get("particles", 500_000u64)?,
        loops: opts.get("loops", 12usize)?,
        ..Default::default()
    };
    let cfg = ExpConfig::new(ranks, Strategy::None);
    let out = Session::builder(cfg)
        .workload(HaccIo::new(hacc))
        .try_build()
        .and_then(|s| s.try_run())
        .map_err(|e| e.to_string())?;
    println!("HACC-IO {ranks} ranks: runtime {:.2} s", out.app_time());
    match iobts::tmio::ftio::detect_period(&out.pfs_write, 0.0, out.app_time(), 2048) {
        Some(est) => {
            println!(
                "dominant I/O period {:.2} s ({:.3} Hz), confidence {:.2}",
                est.period, est.frequency, est.confidence
            );
            let nominal = hacc.compute_seconds() + hacc.verify_seconds() + hacc.data_bytes() / 10e9;
            println!("nominal loop period ≈ {nominal:.2} s");
        }
        None => println!("no periodic I/O detected"),
    }
    Ok(())
}

//! Config validation is a *total* function: any [`ExpConfig`] — however
//! hostile — either builds a session or comes back as a typed
//! [`SimError::InvalidConfig`]. Never a panic, never a run that starts
//! with NaN capacities and dies deep inside the event loop.

use iobts::prelude::*;
use mpisim::{CapacityNoiseCfg, Op, Program};
use pfsim::BurstBufferConfig;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use simcore::{ChannelFaultWindow, FaultChannel, FaultPlan, IoErrorModel, Noise};
use tmio::Strategy;

/// A trivial one-rank workload; `try_build` validates config before the
/// program count matters.
fn tiny_workload() -> RawWorkload {
    let program = Program::from_ops(vec![Op::Compute { seconds: 0.01 }]);
    RawWorkload::new("prop", vec![program], vec!["f"])
}

fn try_build(cfg: ExpConfig) -> Result<Session, SimError> {
    Session::builder(cfg).workload(tiny_workload()).try_build()
}

/// Values that break every "finite and positive" precondition, plus a few
/// innocuous ones so the property also exercises the accepting path.
fn hostile_f64() -> impl PropStrategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-1.0),
        Just(0.0),
        Just(1e-300),
        1.0..1e9,
    ]
}

/// Applies one targeted corruption to a default config.
fn corrupt(base: ExpConfig, field: u8, v: f64, w: f64) -> ExpConfig {
    let mut cfg = base;
    match field % 12 {
        0 => cfg.subreq_bytes = v,
        1 => cfg.strategy = Strategy::Direct { tol: v },
        2 => cfg.strategy = Strategy::Adaptive { tol: v, tol_i: w },
        3 => cfg.pfs.write_capacity = v,
        4 => cfg.pfs.read_capacity = v,
        5 => cfg.interference_alpha = v,
        6 => cfg.peri_call_overhead = Some(v),
        7 => {
            cfg.watchdog.max_stall = v;
        }
        8 => cfg.n_ranks = 0,
        9 => {
            cfg.capacity_noise = Some(CapacityNoiseCfg {
                period: v,
                noise: Noise::None,
            });
        }
        10 => {
            cfg.burst_buffer = Some(BurstBufferConfig {
                size_bytes: v,
                absorb_rate: w,
                drain_rate: 1e9,
            });
        }
        _ => {
            cfg.faults = FaultPlan {
                seed: 9,
                channel_faults: vec![
                    ChannelFaultWindow {
                        channel: FaultChannel::Write,
                        start: v.min(w),
                        end: v.max(w),
                        factor: v,
                    },
                    ChannelFaultWindow {
                        channel: FaultChannel::Both,
                        start: w,
                        end: v,
                        factor: w,
                    },
                ],
                io_errors: Some(IoErrorModel::with_prob(v)),
                ..FaultPlan::default()
            };
        }
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hostile configs never panic: `try_build` returns `Ok` or a typed
    /// config rejection, and rejections never come from deeper layers.
    #[test]
    fn arbitrary_configs_never_panic(
        field in any::<u8>(),
        v in hostile_f64(),
        w in hostile_f64(),
        ranks in 1usize..64,
    ) {
        let cfg = corrupt(ExpConfig::new(ranks, Strategy::None), field, v, w);
        match try_build(cfg) {
            Ok(_) => {}
            Err(SimError::InvalidConfig { field, reason }) => {
                prop_assert!(!field.is_empty() && !reason.is_empty());
            }
            Err(other) => panic!("expected InvalidConfig, got {other}"),
        }
    }

    /// NaN in any numeric knob is always rejected.
    #[test]
    fn nan_is_always_rejected(field in 0u8..8) {
        let cfg = corrupt(ExpConfig::new(4, Strategy::None), field, f64::NAN, f64::NAN);
        prop_assert!(try_build(cfg).is_err());
    }
}

#[test]
fn known_invalids_are_rejected_with_the_offending_field() {
    let cases: Vec<(ExpConfig, &str)> = vec![
        (
            ExpConfig::new(4, Strategy::None).with_subreq_bytes(f64::NAN),
            "subreq_bytes",
        ),
        (ExpConfig::new(0, Strategy::None), "n_ranks"),
        (
            ExpConfig::new(4, Strategy::Direct { tol: -2.0 }),
            "strategy.tol",
        ),
        (
            ExpConfig::new(4, Strategy::None).with_peri_call_overhead(f64::INFINITY),
            "peri_call_overhead",
        ),
    ];
    for (cfg, field) in cases {
        let Err(err) = try_build(cfg) else {
            panic!("config with bad {field} must be rejected");
        };
        let msg = err.to_string();
        assert!(msg.contains("invalid config"), "{msg}");
        assert!(msg.contains(field), "expected {field} in: {msg}");
    }
}

#[test]
fn overlapping_fault_windows_are_rejected() {
    let faults = FaultPlan {
        seed: 1,
        channel_faults: vec![
            ChannelFaultWindow {
                channel: FaultChannel::Write,
                start: 0.0,
                end: 10.0,
                factor: 0.5,
            },
            ChannelFaultWindow {
                channel: FaultChannel::Both,
                start: 5.0,
                end: 15.0,
                factor: 0.25,
            },
        ],
        ..FaultPlan::default()
    };
    let cfg = ExpConfig::new(4, Strategy::None).with_faults(faults);
    assert!(try_build(cfg).is_err());
}

#[test]
fn missing_workload_is_a_typed_error() {
    let Err(err) = Session::builder(ExpConfig::new(2, Strategy::None)).try_build() else {
        panic!("building without a workload must fail");
    };
    assert!(err.to_string().contains("no workload attached"), "{err}");
}

//! Tests of the `iobts::experiments` public API surface itself.

use iobts::experiments::{run_hacc, run_hacc_sync, run_wacomm, ExpConfig, RunOutput};
use iobts::prelude::*;

fn small_hacc() -> HaccConfig {
    HaccConfig {
        particles_per_rank: 20_000,
        loops: 4,
        ..Default::default()
    }
}

#[test]
fn exp_config_builder_round_trips() {
    let cfg = ExpConfig::new(8, Strategy::UpOnly { tol: 1.3 }).exact();
    assert_eq!(cfg.n_ranks, 8);
    assert!(cfg.strategy.limits());
    assert_eq!(cfg.compute_noise, iobts::simcore::Noise::None);
    assert_eq!(cfg.te_mode, tmio::TeMode::FirstWait);
    assert_eq!(cfg.aggregation, tmio::Aggregation::Sum);
    assert!(cfg.limit_sync_ops);
}

#[test]
fn run_output_totals_are_consistent() {
    let out = run_hacc(&ExpConfig::new(4, Strategy::None), &small_hacc());
    assert!(out.total_time() >= out.app_time());
    assert!((out.total_time() - out.app_time() - out.report.post_overhead).abs() < 1e-12);
    // The summary and the report agree on the makespan.
    assert!((out.summary.makespan() - out.report.makespan()).abs() < 1e-9);
}

#[test]
fn pfs_series_cover_both_channels() {
    let out = run_hacc(&ExpConfig::new(4, Strategy::None), &small_hacc());
    let horizon = simcore::SimTime::from_secs(out.app_time() + 1.0);
    let written = out.pfs_write.integral(simcore::SimTime::ZERO, horizon);
    let read = out.pfs_read.integral(simcore::SimTime::ZERO, horizon);
    // 4 ranks × 4 loops × (data + header) written; data read back.
    let data = 4.0 * 4.0 * small_hacc().data_bytes();
    let header = 4.0 * 4.0 * small_hacc().header_bytes;
    assert!((written - data - header).abs() < 1.0, "written {written}");
    assert!((read - data).abs() < 1.0, "read {read}");
}

#[test]
fn sync_baseline_has_no_phases() {
    let out = run_hacc_sync(&ExpConfig::new(2, Strategy::None), &small_hacc());
    assert!(out.report.phases.is_empty());
    assert!(out.report.decomposition().sync_write > 0.0 || out.app_time() > 0.0);
}

#[test]
fn record_pfs_off_yields_empty_series() {
    let cfg = ExpConfig::new(2, Strategy::None).with_record_pfs(false);
    let out = run_wacomm(
        &cfg,
        &WacommConfig {
            iterations: 4,
            ..Default::default()
        },
    );
    assert!(out.pfs_write.is_empty());
    assert!(out.report.required_bandwidth() > 0.0, "tracing still works");
}

#[test]
fn seeds_thread_through_the_pipeline() {
    let time = |seed| {
        let cfg = ExpConfig::new(4, Strategy::Direct { tol: 1.1 }).with_seed(seed);
        run_hacc(&cfg, &small_hacc()).app_time()
    };
    assert_eq!(time(1), time(1));
    assert_ne!(time(1), time(2), "different seeds must differ under noise");
}

#[test]
fn burst_buffer_passes_through_exp_config() {
    let cfg = ExpConfig::new(2, Strategy::None).with_pfs(pfsim::PfsConfig {
        write_capacity: 50e6,
        read_capacity: 1e9,
    });
    let slow: RunOutput = run_hacc_sync(&cfg, &small_hacc());
    let cfg = cfg.with_burst_buffer(pfsim::BurstBufferConfig {
        size_bytes: 1e9,
        absorb_rate: 5e9,
        drain_rate: 50e6,
    });
    let buffered = run_hacc_sync(&cfg, &small_hacc());
    assert!(
        buffered.app_time() < slow.app_time(),
        "buffered {} vs direct {}",
        buffered.app_time(),
        slow.app_time()
    );
}

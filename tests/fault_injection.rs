//! Fault-injection invariants at the `iobts::experiments` API level.
//!
//! The load-bearing property: a **zero-magnitude** fault plan — windows
//! with factor 1, an error model with probability 0, stragglers with
//! factor 1, cancellations that never match an op — must reproduce the
//! fault-free run *bit for bit*, down to the figure-CSV row derived from
//! the decomposition. This is what guarantees the figure pipeline cannot
//! drift merely because fault injection is compiled in.

use iobts::experiments::{run_hacc, ExpConfig, RunOutput};
use iobts::prelude::*;
use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use simcore::{
    CancelSpec, ChannelFaultWindow, FaultChannel, FaultPlan, IoErrorKind, IoErrorModel,
    RetryPolicy, StragglerSpec,
};
use tmio::Strategy;

fn small_hacc() -> HaccConfig {
    HaccConfig {
        particles_per_rank: 20_000,
        loops: 4,
        ..Default::default()
    }
}

fn run(cfg: &ExpConfig) -> RunOutput {
    let cfg = cfg.clone().with_record_pfs(false);
    run_hacc(&cfg, &small_hacc())
}

/// Everything the figure CSVs read off a run, at full bit precision, plus
/// the fig07/fig11-style formatted row itself.
fn fingerprint(out: &RunOutput) -> String {
    let d = out.report.decomposition();
    let p = d.percentages();
    let row = format!(
        "4,0,direct,{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.2}",
        p[0],
        p[1],
        p[2],
        p[3],
        p[4],
        p[5],
        p[6],
        out.app_time()
    );
    format!(
        "makespan={:016x} pct={:?} pct8={:?} B={:016x} retry={:016x} faults={} row={row}",
        out.app_time().to_bits(),
        p.map(f64::to_bits),
        d.percentages_with_faults().map(f64::to_bits),
        out.report.required_bandwidth().to_bits(),
        out.report.retry_time.to_bits(),
        out.report.faults.len(),
    )
}

/// A structurally non-empty plan whose every component has zero magnitude.
fn arb_zero_magnitude_plan() -> impl PropStrategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..100.0,
        0.0f64..100.0,
        1u32..6,
        1e-4f64..1e-2,
        0usize..64,
        0u64..1000,
    )
        .prop_map(
            |(seed, start, span, retries, backoff, rank, op)| FaultPlan {
                seed,
                channel_faults: vec![
                    // Neutral factor: filtered out of the active set.
                    ChannelFaultWindow {
                        channel: FaultChannel::Both,
                        start,
                        end: start + span,
                        factor: 1.0,
                    },
                    // Empty span: never active regardless of factor.
                    ChannelFaultWindow {
                        channel: FaultChannel::Write,
                        start,
                        end: start,
                        factor: 0.0,
                    },
                ],
                // Probability 0 draws nothing from the fault stream.
                io_errors: Some(IoErrorModel {
                    prob: 0.0,
                    kinds: vec![IoErrorKind::Io],
                }),
                stragglers: vec![StragglerSpec { rank, factor: 1.0 }],
                // Targets an async submit index no 4-loop program reaches.
                cancellations: vec![CancelSpec {
                    rank,
                    op_index: 10_000 + op,
                }],
                retry: RetryPolicy {
                    max_retries: retries,
                    base_backoff: backoff,
                    multiplier: 2.0,
                    max_backoff: 0.1,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn zero_magnitude_plan_is_bit_identical_to_fault_free(
        plan in arb_zero_magnitude_plan(),
    ) {
        let cfg = ExpConfig::new(4, Strategy::Direct { tol: 1.1 });
        let base = run(&cfg);
        let faulty = run(&cfg.clone().with_faults(plan));
        assert_eq!(fingerprint(&base), fingerprint(&faulty));
    }
}

#[test]
fn default_plan_equals_absent_plan_for_every_strategy() {
    for strategy in [
        Strategy::Direct { tol: 1.1 },
        Strategy::UpOnly { tol: 1.1 },
        Strategy::Adaptive {
            tol: 1.1,
            tol_i: 0.5,
        },
        Strategy::None,
    ] {
        let cfg = ExpConfig::new(4, strategy);
        let base = run(&cfg);
        let empty = run(&cfg.clone().with_faults(FaultPlan::empty()));
        assert_eq!(fingerprint(&base), fingerprint(&empty), "{strategy:?}");
    }
}

#[test]
fn retry_sequences_are_deterministic_for_a_fixed_seed() {
    let plan = FaultPlan {
        seed: 42,
        io_errors: Some(IoErrorModel {
            prob: 0.3,
            kinds: vec![IoErrorKind::Io, IoErrorKind::Timeout],
        }),
        ..FaultPlan::default()
    };
    let cfg = ExpConfig::new(4, Strategy::Direct { tol: 1.1 }).with_faults(plan);
    let a = run(&cfg);
    let b = run(&cfg);
    assert!(a.report.retry_time > 0.0, "plan should force retries");
    assert!(!a.report.faults.is_empty());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.report.faults, b.report.faults);
    assert_eq!(a.summary.op_errors, b.summary.op_errors);
    // Every retry record carries the deterministic policy backoff.
    let retry = cfg.faults.retry;
    for f in a.report.faults.iter().filter(|f| !f.terminal) {
        assert!(f.retry >= 1);
        let expected = retry.backoff(f.retry - 1);
        assert!((f.backoff - expected).abs() < 1e-15, "{f:?}");
    }
}

#[test]
fn certain_errors_surface_in_summary_and_report() {
    let plan = FaultPlan {
        seed: 1,
        io_errors: Some(IoErrorModel::with_prob(1.0)),
        ..FaultPlan::default()
    };
    let cfg = ExpConfig::new(2, Strategy::None).with_faults(plan);
    let out = run(&cfg);
    // Every async request exhausts its retries and fails; the run still
    // terminates (failed waits release their ranks).
    assert!(!out.summary.op_errors.is_empty());
    for e in &out.summary.op_errors {
        assert_eq!(e.attempts, cfg.faults.retry.max_retries + 1);
        assert_eq!(e.kind, IoErrorKind::Io);
    }
    // The tracer mirrors each terminal failure as a fault record with the
    // POSIX code, and the retry slice shows up in the 8-way decomposition.
    let terminal: Vec<_> = out.report.faults.iter().filter(|f| f.terminal).collect();
    assert_eq!(terminal.len(), out.summary.op_errors.len());
    for f in &terminal {
        assert_eq!(f.code, 5, "EIO");
        assert_eq!(f.kind, "EIO");
    }
    assert!(out.report.retry_time > 0.0);
    let p8 = out.report.decomposition().percentages_with_faults();
    assert!(p8[7] > 0.0, "retry/degraded slice must be visible");
    let sum: f64 = p8.iter().sum();
    assert!((sum - 100.0).abs() < 1e-6, "{sum}");
}

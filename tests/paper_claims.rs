//! Cross-crate integration tests: the paper's headline claims, end-to-end.

use iobts::experiments::{run_hacc, run_wacomm, run_wacomm_sync, ExpConfig};
use iobts::prelude::*;
use tmio::Report;

/// Claim (Sec. II): limiting an async app to its required bandwidth flattens
/// its I/O bursts without significantly prolonging the runtime.
#[test]
fn limiting_flattens_bursts_at_stable_runtime() {
    // 300k particles -> 11.4 MB per request = 11 sub-requests of 1 MiB, so
    // pacing genuinely spreads the bytes (a request below one sub-request is
    // "just executed" per Sec. V and cannot be flattened physically).
    let hacc = HaccConfig {
        particles_per_rank: 300_000,
        loops: 8,
        ..Default::default()
    };
    let base = run_hacc(&ExpConfig::new(16, Strategy::None), &hacc);
    let lim = run_hacc(&ExpConfig::new(16, Strategy::UpOnly { tol: 1.1 }), &hacc);

    let slowdown = (lim.app_time() - base.app_time()) / base.app_time();
    assert!(
        slowdown < 0.05,
        "runtime must stay within 5 %: {slowdown:+.3}"
    );

    // Sustained burst intensity (max bytes moved in any 100 ms window)
    // after the limiter engages drops several-fold (≈9× here). Instantaneous rates are the
    // wrong metric: every sub-request transfers at channel speed and is
    // paced by sleeping afterwards.
    let start = lim.report.limit_start_time().expect("limiter engaged");
    let sustained = |s: &simcore::StepSeries, from: f64, to: f64| -> f64 {
        let mut peak = 0.0f64;
        let mut t = from;
        while t + 0.1 <= to {
            let rate = s.integral(
                simcore::SimTime::from_secs(t),
                simcore::SimTime::from_secs(t + 0.1),
            ) / 0.1;
            peak = peak.max(rate);
            t += 0.02;
        }
        peak
    };
    let peak_lim = sustained(&lim.pfs_write, start, lim.app_time());
    let peak_base = sustained(&base.pfs_write, 0.0, base.app_time());
    assert!(
        peak_lim < peak_base / 5.0,
        "burst flattening: {peak_lim:.3e} vs {peak_base:.3e}"
    );
}

/// Claim (Figs. 7/11): exploitation of compute phases by async I/O rises
/// under every limiting strategy and is near zero without.
#[test]
fn exploitation_rises_with_limiting() {
    let hacc = HaccConfig {
        particles_per_rank: 50_000,
        loops: 6,
        ..Default::default()
    };
    let exploit = |strategy| {
        let out = run_hacc(&ExpConfig::new(8, strategy), &hacc);
        let d = out.report.decomposition();
        100.0 * d.exploit() / d.total
    };
    let none = exploit(Strategy::None);
    assert!(none < 5.0, "unthrottled exploit should be tiny: {none:.1}%");
    for strategy in [
        Strategy::Direct { tol: 1.1 },
        Strategy::UpOnly { tol: 1.1 },
        Strategy::Adaptive {
            tol: 1.1,
            tol_i: 0.5,
        },
    ] {
        let e = exploit(strategy);
        assert!(e > 40.0, "{} exploit too low: {e:.1}%", strategy.name());
    }
}

/// Claim (Sec. IV-C): for n synchronized ranks the application-level
/// required bandwidth is ≈ n × the rank-level one.
#[test]
fn app_level_b_scales_with_ranks() {
    let wc = WacommConfig {
        iterations: 10,
        ..Default::default()
    };
    let out8 = run_wacomm(&ExpConfig::new(8, Strategy::None).exact(), &wc);
    let out16 = run_wacomm(&ExpConfig::new(16, Strategy::None).exact(), &wc);
    let b8 = out8.report.required_bandwidth();
    let b16 = out16.report.required_bandwidth();
    // Halving the per-rank particle share halves per-rank B and bytes, but
    // doubling ranks roughly cancels it; with the fixed base iteration cost
    // the ratio lands near 1.3 — what matters is that B grows, not shrinks.
    assert!(
        b16 > b8,
        "app-level B should grow with ranks: {b8:.3e} vs {b16:.3e}"
    );
}

/// Claim (Fig. 9): the throughput of phase j+1 follows the limit computed
/// from phase j.
#[test]
fn throughput_follows_previous_phase_limit() {
    let wc = WacommConfig {
        iterations: 12,
        ..Default::default()
    };
    let out = run_wacomm(&ExpConfig::new(4, Strategy::UpOnly { tol: 1.1 }), &wc);
    let mut checked = 0;
    for w in &out.report.windows {
        let phase = out
            .report
            .phases
            .iter()
            .find(|p| p.rank == w.rank && p.ts <= w.start && w.start < p.te);
        if let Some(limit) = phase.and_then(|p| p.limit_during) {
            let rel = (w.throughput() - limit).abs() / limit;
            assert!(rel < 0.3, "T {:.3e} vs limit {limit:.3e}", w.throughput());
            checked += 1;
        }
    }
    assert!(
        checked >= 4 * 8,
        "enough throttled windows checked: {checked}"
    );
}

/// Claim (Secs. II–III): for a periodic checkpointing pattern, issuing the
/// I/O asynchronously hides it behind compute; synchronously it adds up.
/// The original end-writing WaComM++ stays at least as fast asynchronously.
#[test]
fn async_issue_beats_sync_issue() {
    use hpcwl::iorlike::{AccessMode, IorConfig, IssueMode};
    use mpisim::{NoHooks, World, WorldConfig};
    let mk = |issue| {
        let cfg = IorConfig {
            segments: 8,
            block_bytes: 64e6,
            compute_seconds: 0.2,
            mode: AccessMode::WriteOnly,
            issue,
        };
        let mut wc = WorldConfig::new(8);
        wc.pfs = pfsim::PfsConfig {
            write_capacity: 4e9,
            read_capacity: 4e9,
        };
        let programs = vec![cfg.program(mpisim::FileId(0)); 8];
        let mut w = World::new(wc, programs, NoHooks);
        w.create_file("f");
        w.run().makespan()
    };
    let sync = mk(IssueMode::Sync);
    let asynchronous = mk(IssueMode::Async);
    // 8 ranks × 64 MB over 4 GB/s: each burst ≈ 0.128 s on top of 0.2 s
    // compute when synchronous; fully hidden when asynchronous.
    assert!(
        asynchronous < sync * 0.75,
        "async {asynchronous} vs sync {sync}"
    );

    // And the original end-writing WaComM++ is not faster than the modified
    // async version.
    let wc = WacommConfig {
        iterations: 10,
        ..Default::default()
    };
    let sync_orig = run_wacomm_sync(&ExpConfig::new(8, Strategy::None), &wc);
    let async_none = run_wacomm(&ExpConfig::new(8, Strategy::None), &wc);
    assert!(async_none.app_time() <= sync_orig.app_time() * 1.01);
}

/// Claim (Sec. IV-D / Fig. 6): tracing overhead stays below 9 % of the
/// total runtime, with peri-runtime below 0.1 %.
#[test]
fn overhead_bounds_hold() {
    let hacc = HaccConfig {
        particles_per_rank: 100_000,
        loops: 10,
        ..Default::default()
    };
    for n in [1, 8, 32] {
        let out = run_hacc(&ExpConfig::new(n, Strategy::Direct { tol: 1.1 }), &hacc);
        let (app, peri, post, total) = out.report.overhead_split();
        assert!(peri / (app * n as f64) < 0.001, "peri > 0.1 % at {n} ranks");
        assert!(
            post / total < 0.09,
            "post overhead {post} vs total {total} at {n} ranks"
        );
    }
}

/// The JSON trace round-trips through the public API with all aggregates
/// intact (the artifact workflow of the real TMIO).
#[test]
fn report_json_roundtrip() {
    let hacc = HaccConfig {
        particles_per_rank: 20_000,
        loops: 4,
        ..Default::default()
    };
    let out = run_hacc(&ExpConfig::new(4, Strategy::Direct { tol: 1.1 }), &hacc);
    let json = out.report.to_json();
    let back = Report::from_json(&json).expect("parse");
    assert_eq!(back.phases.len(), out.report.phases.len());
    let rel = (back.required_bandwidth() - out.report.required_bandwidth()).abs()
        / out.report.required_bandwidth();
    assert!(rel < 1e-12);
    for (a, b) in back
        .decomposition()
        .percentages()
        .iter()
        .zip(out.report.decomposition().percentages())
    {
        // JSON decimal round-trip leaves ~1 ulp of noise.
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

/// Scripted programs and the threaded closure API produce identical timing
/// for the same workload (the two front ends share one virtual machine).
#[test]
fn threaded_matches_scripted() {
    use mpisim::{FileId, NoHooks, Op, Program, ReqTag, World, WorldConfig};

    let loops = 6u32;
    let bytes = 4e6;
    let compute = 0.05;

    // Scripted.
    let mut ops = Vec::new();
    for k in 0..loops {
        ops.push(Op::IWrite {
            file: FileId(0),
            bytes,
            tag: ReqTag(k),
        });
        ops.push(Op::Compute { seconds: compute });
        ops.push(Op::Wait { tag: ReqTag(k) });
        ops.push(Op::Barrier);
    }
    let mut w = World::new(
        WorldConfig::new(4),
        vec![Program::from_ops(ops); 4],
        NoHooks,
    );
    w.create_file("f");
    let scripted = w.run().makespan();

    // Threaded.
    let mut tw = Threaded::new(WorldConfig::new(4), NoHooks);
    let f = tw.create_file("f");
    let (summary, _) = tw.run(move |ctx| {
        for _ in 0..loops {
            let r = ctx.iwrite(f, bytes);
            ctx.compute(compute);
            ctx.wait(r);
            ctx.barrier();
        }
    });
    let threaded = summary.makespan();
    assert!(
        (scripted - threaded).abs() < 1e-9,
        "scripted {scripted} vs threaded {threaded}"
    );
}

/// Full-pipeline determinism: identical seeds reproduce identical reports.
#[test]
fn experiment_pipeline_is_deterministic() {
    let hacc = HaccConfig {
        particles_per_rank: 30_000,
        loops: 5,
        ..Default::default()
    };
    let run = || {
        let out = run_hacc(
            &ExpConfig::new(
                8,
                Strategy::Adaptive {
                    tol: 1.1,
                    tol_i: 0.5,
                },
            ),
            &hacc,
        );
        (out.app_time(), out.report.to_json())
    };
    let (t1, j1) = run();
    let (t2, j2) = run();
    assert_eq!(t1, t2);
    assert_eq!(j1, j2);
}

/// The motivation study (Figs. 1–2): limiting the async job during
/// contention lets the synchronous jobs finish earlier in aggregate.
#[test]
fn motivation_spares_bandwidth_for_sync_jobs() {
    use clustersim::{motivation_scenario, Cluster};
    let (cfg, jobs_free) = motivation_scenario(false, 1.0);
    let (_, jobs_limited) = motivation_scenario(true, 1.0);
    let free = Cluster::new(cfg, jobs_free).run();
    let limited = Cluster::new(cfg, jobs_limited).run();
    let sync_total = |r: &clustersim::ClusterResult| -> f64 {
        r.jobs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 4)
            .map(|(_, j)| j.runtime())
            .sum()
    };
    assert!(sync_total(&limited) < sync_total(&free) - 1.0);
    // Job 4's own runtime changes only slightly (within 5 %).
    let j4 = (limited.jobs[4].runtime() - free.jobs[4].runtime()).abs();
    assert!(j4 / free.jobs[4].runtime() < 0.05);
}

/// The rank-limit floor protects against degenerate phases even under an
/// aggressive direct strategy with a tolerance below 1.
#[test]
fn underestimating_strategy_degrades_gracefully() {
    let hacc = HaccConfig {
        particles_per_rank: 50_000,
        loops: 6,
        ..Default::default()
    };
    let base = run_hacc(&ExpConfig::new(4, Strategy::None), &hacc);
    let tight = run_hacc(&ExpConfig::new(4, Strategy::Direct { tol: 0.7 }), &hacc);
    // Waits appear (the paper's "too-low value" hazard) …
    let d = tight.report.decomposition();
    assert!(d.async_write_lost + d.async_read_lost > 0.1);
    // … but the run completes within a bounded slowdown.
    assert!(tight.app_time() < base.app_time() * 2.0);
}

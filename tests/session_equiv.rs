//! The `Session` pipeline must be a pure refactor of the legacy hand-wired
//! runner: for any configuration, running a workload through
//! `Session::builder(..)` is bit-identical to constructing the
//! `WorldConfig`/`TracerConfig`/`Tracer`/`World` by hand from the public
//! `ExpConfig` fields — the wiring `run_hacc`/`run_wacomm` used to do
//! inline. This pins every config knob the session layer translates.

use iobts::prelude::*;
use mpisim::{FileId, World};
use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use tmio::{Strategy, TracerConfig};

/// Bit-level fingerprint of everything downstream consumers read off a run.
fn fingerprint(
    summary: &mpisim::RunSummary,
    report: &tmio::Report,
    pfs_write: &simcore::StepSeries,
) -> String {
    let d = report.decomposition();
    format!(
        "makespan={:016x} pct={:?} B={:016x} peri={:016x} post={:016x} \
         phases={} calls={} pfs_peak={:016x}",
        summary.makespan().to_bits(),
        d.percentages().map(f64::to_bits),
        report.required_bandwidth().to_bits(),
        report.peri_overhead.to_bits(),
        report.post_overhead.to_bits(),
        report.phases.len(),
        report.calls,
        pfs_write.max_value().to_bits(),
    )
}

/// The legacy runner wiring, reconstructed by hand from the public
/// `ExpConfig` fields (this is what `experiments::run_*` inlined before
/// the session layer existed).
fn legacy_run(cfg: &ExpConfig, programs: Vec<mpisim::Program>, files: &[String]) -> String {
    let mut wc = WorldConfig::new(cfg.n_ranks)
        .with_limiter(cfg.strategy.limits())
        .with_compute_noise(cfg.compute_noise)
        .with_seed(cfg.seed);
    wc.pfs = cfg.pfs;
    wc.subreq_bytes = cfg.subreq_bytes;
    wc.capacity_noise = cfg.capacity_noise;
    wc.interference_alpha = cfg.interference_alpha;
    wc.limit_sync_ops = cfg.limit_sync_ops;
    wc.burst_buffer = cfg.burst_buffer;
    wc.record_pfs = cfg.record_pfs;
    wc.faults = cfg.faults.clone();
    let mut tc = TracerConfig::with_strategy(cfg.strategy);
    tc.te_mode = cfg.te_mode;
    tc.aggregation = cfg.aggregation;
    if let Some(peri) = cfg.peri_call_overhead {
        tc.peri_call_overhead = peri;
    }
    let mut world = World::new(wc, programs, Tracer::new(cfg.n_ranks, tc));
    for f in files {
        world.create_file(f);
    }
    let summary = world.run();
    let pfs_write = world.pfs_series(mpisim::Channel::Write).clone();
    let report = std::mem::replace(
        world.hooks_mut(),
        Tracer::new(0, TracerConfig::trace_only()),
    )
    .into_report();
    fingerprint(&summary, &report, &pfs_write)
}

fn session_fingerprint(cfg: &ExpConfig, workload: impl Workload + 'static) -> String {
    let out = Session::builder(cfg.clone())
        .workload(workload)
        .build()
        .run();
    fingerprint(&out.summary, &out.report, &out.pfs_write)
}

fn arb_strategy() -> impl PropStrategy<Value = Strategy> {
    prop_oneof![
        Just(Strategy::None),
        (0.9f64..1.6).prop_map(|tol| Strategy::Direct { tol }),
        (0.9f64..1.6).prop_map(|tol| Strategy::UpOnly { tol }),
        (0.9f64..1.6).prop_map(|tol| Strategy::Adaptive { tol, tol_i: 0.5 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// HACC-IO through a Session == the hand-wired legacy pipeline.
    #[test]
    fn session_matches_legacy_hacc(
        n_ranks in 1usize..6,
        strategy in arb_strategy(),
        seed in prop_oneof![Just(1u64), Just(2024), Just(0xD5EA)],
        loops in 3usize..5,
    ) {
        let hacc = HaccConfig {
            particles_per_rank: 20_000,
            loops,
            ..Default::default()
        };
        let cfg = ExpConfig::new(n_ranks, strategy).with_seed(seed);
        let programs = (0..n_ranks)
            .map(|r| hacc.program(FileId(r as u32)))
            .collect();
        let files: Vec<String> = (0..n_ranks).map(|r| format!("hacc.{r}.dat")).collect();
        prop_assert_eq!(
            session_fingerprint(&cfg, HaccIo::new(hacc)),
            legacy_run(&cfg, programs, &files)
        );
    }

    /// WaComM through a Session == the hand-wired legacy pipeline.
    #[test]
    fn session_matches_legacy_wacomm(
        n_ranks in 1usize..6,
        strategy in arb_strategy(),
        seed in prop_oneof![Just(7u64), Just(2024)],
    ) {
        let wc = WacommConfig {
            iterations: 4,
            ..Default::default()
        };
        let cfg = ExpConfig::new(n_ranks, strategy).with_seed(seed);
        let input = FileId(0);
        let programs = (0..n_ranks)
            .map(|r| wc.program(r, n_ranks, input, FileId(1 + r as u32)))
            .collect();
        let mut files = vec!["wacomm.in".to_string()];
        files.extend((0..n_ranks).map(|r| format!("wacomm.{r}.out")));
        prop_assert_eq!(
            session_fingerprint(&cfg, Wacomm::new(wc)),
            legacy_run(&cfg, programs, &files)
        );
    }
}

/// The builder surface translates every knob: a config exercising all
/// builders still matches the hand-wired run (single deterministic case —
/// capacity noise + interference + subreq + sync-limit off together).
#[test]
fn session_matches_legacy_all_knobs() {
    let hacc = HaccConfig {
        particles_per_rank: 20_000,
        loops: 3,
        ..Default::default()
    };
    let cfg = ExpConfig::new(3, Strategy::UpOnly { tol: 1.2 })
        .with_seed(42)
        .with_noise(simcore::Noise::QuantizedRel {
            amplitude: 0.05,
            levels: 4,
        })
        .with_subreq_bytes(256.0 * 1024.0)
        .with_capacity_noise(mpisim::CapacityNoiseCfg {
            period: 0.5,
            noise: simcore::Noise::Spike {
                prob: 0.1,
                factor: 0.2,
            },
        })
        .with_interference(1e3)
        .with_limit_sync(false)
        .with_record_pfs(true);
    let programs = (0..3).map(|r| hacc.program(FileId(r as u32))).collect();
    let files: Vec<String> = (0..3).map(|r| format!("hacc.{r}.dat")).collect();
    assert_eq!(
        session_fingerprint(&cfg, HaccIo::new(hacc)),
        legacy_run(&cfg, programs, &files)
    );
}
